//! Property-based tests (proptest) over the core invariants of the
//! toolchain: random SoCs, random networks, random formulas and programs.

use proptest::prelude::*;

use ftrsn::core::examples::fig2;
use ftrsn::core::{ControlExpr, NodeId};
use ftrsn::fault::{accessibility, analyze, FaultEffect, HardeningProfile};
use ftrsn::graph::{vertex_independent_paths, DiGraph};
use ftrsn::ilp::{solve_ilp, IlpError, Problem};
use ftrsn::itc02::{Module, Soc};
use ftrsn::sat::{Lit, Solver, Var};
use ftrsn::sib::generate;
use ftrsn::synth::{augment_greedy, augmented_graph, AugmentOptions, Dataflow};
use ftrsn::synth::{synthesize, SynthesisOptions};

/// Strategy: a small random SoC (1–4 modules, 1–3 chains each).
fn soc_strategy() -> impl Strategy<Value = Soc> {
    proptest::collection::vec(
        proptest::collection::vec(1u32..40, 1..4),
        1..5,
    )
    .prop_map(|modules| Soc {
        name: "prop".into(),
        modules: modules
            .into_iter()
            .enumerate()
            .map(|(i, chains)| Module::top(format!("m{i}"), chains))
            .collect(),
        top_registers: vec![8],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_sib_rsn_obeys_the_counting_contract(soc in soc_strategy()) {
        let rsn = generate(&soc).expect("generate");
        let chains = soc.total_chains();
        prop_assert_eq!(rsn.muxes().count(), soc.modules.len() + chains);
        prop_assert_eq!(
            rsn.segments().count(),
            soc.modules.len() + 2 * chains + soc.top_registers.len()
        );
        prop_assert_eq!(
            rsn.total_bits(),
            (soc.modules.len() + chains) as u64 + soc.payload_bits()
        );
    }

    #[test]
    fn every_segment_of_a_generated_rsn_is_accessible(soc in soc_strategy()) {
        let rsn = generate(&soc).expect("generate");
        for seg in rsn.segments() {
            prop_assert!(rsn.is_accessible(seg));
        }
        // And the structural engine agrees in the fault-free case.
        let acc = accessibility(&rsn, &FaultEffect::benign());
        prop_assert_eq!(acc.accessible_segments, acc.total_segments);
    }

    #[test]
    fn augmentation_invariants_on_random_socs(soc in soc_strategy()) {
        let rsn = generate(&soc).expect("generate");
        let df = Dataflow::extract(&rsn);
        let aug = augment_greedy(&df, &AugmentOptions::default());
        let g = augmented_graph(&df, &aug);
        prop_assert!(g.is_acyclic());
        prop_assert_eq!(aug.repairs, 0);
        for v in 0..df.len() {
            if v == df.root || v == df.sink {
                continue;
            }
            // Added edges respect the level requirement of E_P.
            for &(i, j) in &aug.added {
                prop_assert!(df.levels[j] >= df.levels[i]);
            }
            // Menger: two vertex-independent root and sink paths wherever
            // the degree constraint is enforceable (vertices next to the
            // root may be exempt; check only those with an added in-edge).
            if aug.added.iter().any(|&(_, j)| j == v) {
                prop_assert!(vertex_independent_paths(&g, df.root, v) >= 2);
            }
        }
    }

    #[test]
    fn synthesis_preserves_reset_path_on_random_socs(soc in soc_strategy()) {
        let rsn = generate(&soc).expect("generate");
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let orig: Vec<String> = rsn
            .trace_path(&rsn.reset_config())
            .expect("orig")
            .segments(&rsn)
            .map(|s| rsn.node(s).name().to_string())
            .collect();
        let ft: Vec<String> = result
            .rsn
            .trace_path(&result.rsn.reset_config())
            .expect("ft")
            .segments(&result.rsn)
            .map(|s| result.rsn.node(s).name().to_string())
            .collect();
        prop_assert_eq!(orig, ft);
    }

    #[test]
    fn ft_metric_dominates_original_on_random_socs(soc in soc_strategy()) {
        let rsn = generate(&soc).expect("generate");
        let before = analyze(&rsn, HardeningProfile::unhardened());
        let result = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let after = analyze(&result.rsn, HardeningProfile::hardened());
        prop_assert!(after.worst_segments >= before.worst_segments);
        prop_assert!(after.avg_segments + 1e-9 >= before.avg_segments);
        // The headline property: no single fault loses more than a couple
        // of segments in the fault-tolerant network.
        let total = result.rsn.segments().count() as f64;
        prop_assert!(
            after.worst_segments >= (total - 2.0) / total,
            "worst {} on {} segments",
            after.worst_segments,
            total
        );
    }

    #[test]
    fn random_cnf_agrees_with_brute_force(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0u32..6, any::<bool>()), 1..4),
            1..24,
        )
    ) {
        let mut solver = Solver::new();
        for _ in 0..6 {
            solver.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            let lits: Vec<Lit> = c.iter().map(|&(v, pos)| Lit::with_polarity(Var(v), pos)).collect();
            if !solver.add_clause(lits) {
                trivially_unsat = true;
            }
        }
        let brute = (0u32..64).any(|m| {
            clauses.iter().all(|c| {
                c.iter().any(|&(v, pos)| (((m >> v) & 1) == 1) == pos)
            })
        });
        let got = if trivially_unsat { false } else { solver.solve() };
        prop_assert_eq!(got, brute);
    }

    #[test]
    fn random_binary_ilp_agrees_with_brute_force(
        costs in proptest::collection::vec(-8i32..8, 3..6),
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i32..4, 6), -4i32..8, any::<bool>()),
            1..4,
        )
    ) {
        let n = costs.len();
        let mut p = Problem::new();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| p.add_binary_var(format!("x{i}"), c as f64))
            .collect();
        for (coefs, rhs, le) in &rows {
            let terms: Vec<_> = vars.iter().zip(coefs).map(|(&v, &a)| (v, a as f64)).collect();
            if *le {
                p.add_le(terms, *rhs as f64);
            } else {
                p.add_ge(terms, *rhs as f64);
            }
        }
        let mut best: Option<f64> = None;
        for m in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from((m >> j) & 1)).collect();
            if p.is_feasible(&x, 1e-9) {
                let obj = p.objective_value(&x);
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
        match (solve_ilp(&p), best) {
            (Ok(sol), Some(b)) => {
                prop_assert!((sol.objective - b).abs() < 1e-5);
                prop_assert!(p.is_feasible(&sol.values, 1e-5));
            }
            (Err(IlpError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "mismatch {got:?} vs {want:?}"),
        }
    }

    #[test]
    fn expr_simplify_is_equivalence_preserving(
        ops in proptest::collection::vec((0u8..4, 0u32..3, 0u32..3), 1..12)
    ) {
        // Build a random expression over 3 register bits of fig2's A.
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let mut stack: Vec<ControlExpr> = vec![ControlExpr::reg(a, 0)];
        for (op, x, _) in &ops {
            let e1 = stack.pop().unwrap_or(ControlExpr::TRUE);
            let leaf = if *x == 0 { ControlExpr::reg(a, 0) } else { ControlExpr::reg(a, 1) };
            let combined = match op {
                0 => e1 & leaf,
                1 => e1 | leaf,
                2 => !e1,
                _ => ControlExpr::And(vec![e1, ControlExpr::TRUE, leaf]),
            };
            stack.push(combined);
        }
        let expr = stack.pop().expect("nonempty");
        let simplified = expr.simplified();
        for m in 0u8..4 {
            let mut reg = |n: NodeId, b: u32| n == a && ((m >> b.min(1)) & 1) == 1;
            let v1 = expr.eval_with(&mut reg, &mut |_| false);
            let v2 = simplified.eval_with(&mut reg, &mut |_| false);
            prop_assert_eq!(v1, v2);
        }
    }

    #[test]
    fn engine_agrees_with_bmc_on_random_socs(
        chains in proptest::collection::vec(1u32..8, 1..3),
        fault_pick in any::<u32>(),
    ) {
        // Random single-module SoC; a randomly chosen fault; the
        // structural engine and the BMC must agree on every segment.
        let soc = Soc {
            name: "prop".into(),
            modules: vec![Module::top("m", chains.clone())],
            top_registers: vec![4],
        };
        let rsn = generate(&soc).expect("generate");
        let faults = ftrsn::fault::fault_universe(&rsn);
        let fault = faults[(fault_pick as usize) % faults.len()];
        let effect = ftrsn::fault::effect_of(&rsn, &fault, HardeningProfile::unhardened());
        let structural = accessibility(&rsn, &effect);
        for (seg, bmc_ok) in ftrsn::bmc::bmc_accessibility(&rsn, &effect, 3) {
            prop_assert_eq!(
                structural.accessible[seg.index()],
                bmc_ok,
                "fault {} segment {}",
                fault,
                rsn.node(seg).name()
            );
        }
    }

    #[test]
    fn menger_count_matches_removal_argument(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 4..24)
    ) {
        // Build an acyclic graph by orienting edges low -> high.
        let mut g = DiGraph::new(8);
        for &(a, b) in &edges {
            if a < b {
                g.add_edge(a, b);
            }
        }
        // Menger sanity: removing any single internal vertex cannot
        // disconnect s from t if there are >= 2 vertex-independent paths.
        let (s, t) = (0, 7);
        let k = vertex_independent_paths(&g, s, t);
        if k >= 2 {
            for removed in 1..7 {
                let mut h = DiGraph::new(8);
                for (a, b) in g.edges() {
                    if a != removed && b != removed {
                        h.add_edge(a, b);
                    }
                }
                prop_assert!(h.reachable_from(s)[t], "vertex {removed} was a cut");
            }
        }
    }
}
