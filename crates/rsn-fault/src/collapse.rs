//! ATPG-style fault collapsing for accessibility sweeps.
//!
//! The accessibility engine is a deterministic function of a
//! [`FaultEffect`], so two faults with identical effects always score
//! identically — evaluating both is pure waste (classic equivalence
//! collapsing). On top of that, a structural *dominance* rule merges
//! single-node data faults along series runs: if `u` dominates `v` (every
//! scan-in path to `v` passes `u`) and `v` post-dominates `u` (every path
//! from `u` to a scan-out passes `v`), then a clean path avoiding `u`
//! exists iff one avoiding `v` does — the path sets through the region are
//! equal — so corrupting `u` and corrupting `v` with the same stuck value
//! yield the same verdict for every segment outside the region, and the
//! region's own segments are inaccessible either way.
//!
//! Two restrictions keep the dominance rule *exact* (bit-identical
//! aggregates, enforced by the equivalence property tests):
//!
//! * neither `u` nor any strictly-interior region node may own control
//!   bits — a corrupt owner blocks the fixed point's clean promotion of
//!   its bits, and `u` (or an interior node) stays clean-reachable under
//!   `corrupt{v}` but not under `corrupt{u}`, so the promotions could
//!   diverge. (`v` itself may own bits: `v` is not clean-reachable under
//!   either fault, so its bits promote identically.)
//! * the stuck values must match — a dirty write path delivers the stuck
//!   value into promoted bits. Networks without any mux-referenced
//!   control bits never read the stuck value, so there both polarities
//!   merge too.
//!
//! Faults whose *effect computation* panics (malformed sites) become
//! singleton [`ClassKind::Poison`] classes, preserving the sweep's
//! quarantine accounting without re-deriving the panic per evaluation.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use rsn_core::{NodeId, NodeKind, Rsn};
use rsn_graph::{dominators, postdominators, DiGraph};

use crate::effect::{effect_of_indexed, ControlBitIndex, FaultEffect};
use crate::fault::Fault;
use crate::metric::HardeningProfile;

/// Upper bound on the interior-region size explored per dominator pair.
/// Aborting a too-large scan only forgoes a merge — never affects
/// exactness (series runs chain through adjacent pairs anyway).
const REGION_CAP: usize = 128;

/// What the representative of a class evaluates to.
#[derive(Debug, Clone)]
pub enum ClassKind {
    /// Every member is masked — accessibility is trivially perfect.
    Benign,
    /// Evaluate this effect once for all members.
    Effect(FaultEffect),
    /// Effect computation panicked; members are quarantined unevaluated.
    Poison,
}

/// One equivalence class of the fault universe.
#[derive(Debug, Clone)]
pub struct FaultClass {
    /// Indices into the original fault slice, in fault order.
    pub members: Vec<u32>,
    /// How to evaluate the class.
    pub kind: ClassKind,
}

/// A partition of a fault universe into equivalence classes, evaluated
/// one representative per class.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::{fault_universe, FaultClasses, HardeningProfile};
///
/// let rsn = fig2();
/// let faults = fault_universe(&rsn);
/// let classes = FaultClasses::build(&rsn, &faults, HardeningProfile::unhardened());
/// assert!(classes.collapse_ratio() > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultClasses {
    classes: Vec<FaultClass>,
    /// Fault index → class index.
    class_of: Vec<u32>,
}

// Compile-time guarantee: the partition stays shareable across threads
// (sweep workers and resident-service requests read one copy).
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<FaultClasses>()
};

impl FaultClasses {
    /// Partitions `faults` by effect equality plus the dominance rule.
    pub fn build(rsn: &Rsn, faults: &[Fault], profile: HardeningProfile) -> Self {
        Self::build_inner(rsn, faults, profile, true)
    }

    /// The trivial partition: one singleton class per fault, in order.
    /// Effects are still precomputed once — this is the `--no-collapse`
    /// escape hatch, not the old per-evaluation effect derivation.
    pub fn uncollapsed(rsn: &Rsn, faults: &[Fault], profile: HardeningProfile) -> Self {
        Self::build_inner(rsn, faults, profile, false)
    }

    fn build_inner(rsn: &Rsn, faults: &[Fault], profile: HardeningProfile, collapse: bool) -> Self {
        let ctl = ControlBitIndex::new(rsn);
        let (merge, port_src) = if collapse {
            (
                dominance_merge_map(rsn, &ctl),
                fanout1_port_sources(rsn, &ctl),
            )
        } else {
            (None, HashMap::new())
        };

        let mut classes: Vec<FaultClass> = Vec::new();
        let mut class_of: Vec<u32> = Vec::with_capacity(faults.len());
        let mut benign_class: Option<usize> = None;
        let mut by_key: HashMap<EffectKey, usize> = HashMap::new();
        let no_owners = ctl.owners().next().is_none();

        for (i, fault) in faults.iter().enumerate() {
            // Key construction indexes per-node tables with the effect's
            // node ids, so it must sit inside the same quarantine boundary
            // as the effect computation itself.
            let effect = catch_unwind(AssertUnwindSafe(|| {
                let e = effect_of_indexed(rsn, fault, profile, &ctl);
                let key = if collapse && !e.is_benign() {
                    Some(EffectKey::of(&e, merge.as_ref(), &port_src, no_owners))
                } else {
                    None
                };
                (e, key)
            }));
            let ci = match effect {
                Err(_) => {
                    classes.push(FaultClass {
                        members: Vec::new(),
                        kind: ClassKind::Poison,
                    });
                    classes.len() - 1
                }
                Ok((e, _)) if !collapse => {
                    // Singleton per fault — even benign ones, so the
                    // one-unit-per-fault budget prefix stays exact.
                    classes.push(FaultClass {
                        members: Vec::new(),
                        kind: if e.is_benign() {
                            ClassKind::Benign
                        } else {
                            ClassKind::Effect(e)
                        },
                    });
                    classes.len() - 1
                }
                Ok((e, _)) if e.is_benign() => *benign_class.get_or_insert_with(|| {
                    classes.push(FaultClass {
                        members: Vec::new(),
                        kind: ClassKind::Benign,
                    });
                    classes.len() - 1
                }),
                Ok((e, key)) => {
                    let key = key.expect("non-benign collapsed effect has a key");
                    *by_key.entry(key).or_insert_with(|| {
                        classes.push(FaultClass {
                            members: Vec::new(),
                            kind: ClassKind::Effect(e),
                        });
                        classes.len() - 1
                    })
                }
            };
            classes[ci].members.push(i as u32);
            class_of.push(ci as u32);
        }

        FaultClasses { classes, class_of }
    }

    /// The classes, ordered by their first member.
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the universe was empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Number of faults in the partitioned universe.
    pub fn fault_count(&self) -> usize {
        self.class_of.len()
    }

    /// Class index of fault `i`.
    pub fn class_of(&self, i: usize) -> usize {
        self.class_of[i] as usize
    }

    /// `faults / classes` — 1.0 means no collapsing opportunity; can
    /// never drop below 1.0 (every class has at least one member).
    pub fn collapse_ratio(&self) -> f64 {
        if self.classes.is_empty() {
            1.0
        } else {
            self.class_of.len() as f64 / self.classes.len() as f64
        }
    }
}

/// Canonical grouping key of a (non-benign) fault effect. Equal keys ⇒
/// equal accessibility verdicts.
#[derive(Debug, PartialEq, Eq, Hash)]
struct EffectKey {
    corrupt_nodes: Vec<NodeId>,
    corrupt_mux_inputs: Vec<(NodeId, usize)>,
    forced_bits: Vec<(NodeId, u32, bool)>,
    forced_mux: Vec<(NodeId, usize)>,
    local_loss: Vec<NodeId>,
    stuck: Option<bool>,
}

impl EffectKey {
    fn of(
        e: &FaultEffect,
        merge: Option<&Vec<usize>>,
        port_src: &HashMap<(NodeId, usize), NodeId>,
        no_owners: bool,
    ) -> Self {
        // Single-corrupt-port effects on a fanout-1 source rewrite to the
        // equivalent single-corrupt-node form (see
        // [`fanout1_port_sources`]), then join the dominance merging below.
        let mut corrupt_nodes = e.corrupt_nodes.clone();
        let mut corrupt_mux_inputs = e.corrupt_mux_inputs.clone();
        let pure_data =
            e.forced_bits.is_empty() && e.forced_mux.is_empty() && e.local_loss.is_empty();
        if pure_data && corrupt_nodes.is_empty() && corrupt_mux_inputs.len() == 1 {
            if let Some(&src) = port_src.get(&corrupt_mux_inputs[0]) {
                corrupt_mux_inputs.clear();
                corrupt_nodes.push(src);
            }
        }
        // Single-corrupt-node effects take the dominance representative.
        let single_corrupt = corrupt_nodes.len() == 1 && corrupt_mux_inputs.is_empty() && pure_data;
        if single_corrupt {
            if let Some(map) = merge {
                corrupt_nodes[0] = NodeId(map[corrupt_nodes[0].index()] as u32);
            }
        }
        let mut forced_bits: Vec<(NodeId, u32, bool)> = e
            .forced_bits
            .iter()
            .map(|(&(n, b), &v)| (n, b, v))
            .collect();
        forced_bits.sort_unstable();
        let mut forced_mux: Vec<(NodeId, usize)> =
            e.forced_mux.iter().map(|(&n, &k)| (n, k)).collect();
        forced_mux.sort_unstable();
        // The stuck value is only ever read when promoting mux-referenced
        // control bits; without owners it cannot influence the verdict.
        let stuck = if single_corrupt && no_owners {
            None
        } else {
            e.stuck
        };
        EffectKey {
            corrupt_nodes,
            corrupt_mux_inputs,
            forced_bits,
            forced_mux,
            local_loss: e.local_loss.clone(),
            stuck,
        }
    }
}

/// Maps multiplexer input ports `(mux, k)` to their source node when a
/// fault on the port is provably equivalent to a data fault on the
/// source itself, so the two collapse into one class.
///
/// Corrupting the edge `(mux, k)` removes exactly that edge from the
/// clean traversals; corrupting the source `s` removes every clean path
/// *through* `s` and additionally un-cleans `s` itself. The two verdicts
/// coincide exactly when
///
/// * `s` feeds nothing but this one port (`successors(s) == [mux]` and
///   `s` appears once across all mux input lists) — then every path
///   through `s` uses the corrupted edge anyway;
/// * `s` owns no control bits — `clean[s]` never gates a bit promotion;
/// * `s` is a plain mux node, not a segment, scan-in, or scan-out —
///   `clean[s]`, `reach_clean[s]`, and `exit_clean[s]` are then read by
///   no verdict and seed no traversal.
///
/// The equivalence property test exercises this against the cold
/// uncollapsed reference on random networks.
fn fanout1_port_sources(rsn: &Rsn, ctl: &ControlBitIndex) -> HashMap<(NodeId, usize), NodeId> {
    let owners: HashSet<NodeId> = ctl.owners().collect();
    let mut port_uses = vec![0u32; rsn.node_count()];
    for m in rsn.muxes() {
        let mux = rsn.node(m).as_mux().expect("muxes() yields mux nodes");
        for &s in &mux.inputs {
            port_uses[s.index()] += 1;
        }
    }
    let mut map = HashMap::new();
    for m in rsn.muxes() {
        let mux = rsn.node(m).as_mux().expect("muxes() yields mux nodes");
        for (k, &s) in mux.inputs.iter().enumerate() {
            if matches!(rsn.node(s).kind(), NodeKind::Mux(_))
                && rsn.successors(s).len() == 1
                && port_uses[s.index()] == 1
                && !owners.contains(&s)
            {
                map.insert((m, k), s);
            }
        }
    }
    map
}

/// Computes the dominance-merge map: `map[v]` is the series-run
/// representative of node `v` (union-find root over all eligible
/// dominator/post-dominator pairs). `None` if the dataflow graph is
/// cyclic — the path-set argument needs a DAG.
fn dominance_merge_map(rsn: &Rsn, ctl: &ControlBitIndex) -> Option<Vec<usize>> {
    let n = rsn.node_count();
    // Dataflow graph plus a virtual root (index n) fanning into every
    // scan-in and a virtual sink (n + 1) collecting every scan-out.
    let mut g = DiGraph::new(n + 2);
    for id in rsn.node_ids() {
        for &s in rsn.successors(id) {
            g.add_edge(id.index(), s.index());
        }
    }
    g.add_edge(n, rsn.scan_in().index());
    if let Some(r) = rsn.secondary_scan_in() {
        g.add_edge(n, r.index());
    }
    g.add_edge(rsn.scan_out().index(), n + 1);
    if let Some(s) = rsn.secondary_scan_out() {
        g.add_edge(s.index(), n + 1);
    }
    if !g.is_acyclic() {
        return None;
    }

    let idom = dominators(&g, n);
    let ipdom = postdominators(&g, n + 1);
    let owners: HashSet<usize> = ctl.owners().map(|o| o.index()).collect();

    // Union-find over eligible immediate pairs (u, v): u = idom(v),
    // v = ipdom(u), u and the interior region own no control bits.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut region = Vec::new();
    let mut seen = vec![false; n + 2];
    for v in 0..n {
        let u = idom[v];
        if u >= n || ipdom[u] != v || owners.contains(&u) {
            continue;
        }
        // Interior region: forward BFS from u stopping at v. In a DAG
        // where u dom v and v pdom u, every node discovered this way lies
        // on a u → v path.
        region.clear();
        seen[v] = true;
        let mut stack = vec![u];
        seen[u] = true;
        let mut ok = true;
        while let Some(x) = stack.pop() {
            for &y in g.successors(x) {
                if seen[y] {
                    continue;
                }
                seen[y] = true;
                region.push(y);
                if region.len() > REGION_CAP || owners.contains(&y) {
                    ok = false;
                    break;
                }
                stack.push(y);
            }
            if !ok {
                break;
            }
        }
        seen[u] = false;
        seen[v] = false;
        for &y in &region {
            seen[y] = false;
        }
        for &y in &stack {
            seen[y] = false;
        }
        if ok {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            // Root at the smaller index for a deterministic representative.
            let (lo, hi) = (ru.min(rv), ru.max(rv));
            parent[hi] = lo;
        }
    }
    let mut map = vec![0usize; n];
    for (v, slot) in map.iter_mut().enumerate() {
        *slot = find(&mut parent, v);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_universe;
    use rsn_core::examples::{chain, fig2};

    #[test]
    fn chain_collapses_hard() {
        // A pure chain has no control bits: every single-node data fault
        // of either polarity lands in one series class.
        let rsn = chain(3, 4);
        let faults = fault_universe(&rsn);
        let classes = FaultClasses::build(&rsn, &faults, HardeningProfile::unhardened());
        assert_eq!(classes.fault_count(), faults.len());
        assert!(
            classes.collapse_ratio() >= 2.5,
            "ratio {}",
            classes.collapse_ratio()
        );
        // The entire series run — port, data and select faults of every
        // segment, both polarities — lands in one class.
        let biggest = classes
            .classes()
            .iter()
            .map(|c| c.members.len())
            .max()
            .unwrap();
        assert!(biggest >= 13, "biggest class {biggest}");
        // Every fault maps into a class that contains it.
        for i in 0..faults.len() {
            let c = &classes.classes()[classes.class_of(i)];
            assert!(c.members.contains(&(i as u32)));
        }
    }

    #[test]
    fn uncollapsed_is_singleton_per_fault() {
        let rsn = fig2();
        let faults = fault_universe(&rsn);
        let classes = FaultClasses::uncollapsed(&rsn, &faults, HardeningProfile::unhardened());
        assert_eq!(classes.len(), faults.len());
        assert_eq!(classes.collapse_ratio(), 1.0);
        for (i, c) in classes.classes().iter().enumerate() {
            assert_eq!(c.members, vec![i as u32]);
            assert_eq!(classes.class_of(i), i);
        }
    }

    /// splitmix64 — deterministic, dependency-free randomness.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A random multi-module SIB SoC: 1–3 modules with 1–3 scan chains of
    /// 1–6 bits each (same generator family as the engine's property
    /// tests).
    fn random_sib_rsn(rng: &mut Rng) -> rsn_core::Rsn {
        use rsn_itc02::parse_soc;
        use rsn_sib::generate;
        let modules = 1 + rng.below(3);
        let mut text = String::from("SocName rand\n");
        for m in 1..=modules {
            let chains = 1 + rng.below(3);
            let lengths: Vec<String> = (0..chains)
                .map(|_| (1 + rng.below(6)).to_string())
                .collect();
            text.push_str(&format!("{m} 0 0 0 {chains} : {}\n", lengths.join(" ")));
        }
        let soc = parse_soc(&text).expect("generated SoC parses");
        generate(&soc).expect("SIB generation succeeds")
    }

    #[test]
    fn property_collapsed_warm_sweep_matches_uncollapsed_cold_reference() {
        use crate::effect::effect_of;
        use crate::engine::AccessEngine;
        use crate::metric::analyze_faults_on;

        let mut rng = Rng(0x5eed_c011_a95e);
        for round in 0..12 {
            let rsn = random_sib_rsn(&mut rng);
            let faults = fault_universe(&rsn);
            let engine = AccessEngine::new(&rsn);
            let mut scratch = engine.scratch();
            for profile in [HardeningProfile::unhardened(), HardeningProfile::hardened()] {
                let classes = FaultClasses::build(&rsn, &faults, profile);
                // Per fault: the class representative's warm-start verdict
                // must equal the fault's own cold-path verdict — the full
                // Accessibility, not just the fractions.
                let mut sum_seg = 0.0f64;
                let mut sum_bits = 0.0f64;
                let mut weight = 0u64;
                let mut worst_seg = 1.0f64;
                let mut worst_bits = 1.0f64;
                let mut worst_fault = None;
                for (i, fault) in faults.iter().enumerate() {
                    let own = effect_of(&rsn, fault, profile);
                    let (seg, bits) = match &classes.classes()[classes.class_of(i)].kind {
                        ClassKind::Poison => unreachable!("healthy universe"),
                        ClassKind::Benign => {
                            assert!(own.is_benign(), "round {round}: {fault} not benign");
                            (1.0, 1.0)
                        }
                        ClassKind::Effect(rep) => {
                            let warm = engine.accessibility(rep, &mut scratch);
                            let cold = engine.accessibility_cold(&own, &mut scratch);
                            assert_eq!(
                                warm, cold,
                                "round {round}: class rep diverges from member {fault} \
                                 (select_hardened {})",
                                profile.select_hardened
                            );
                            (cold.segment_fraction(), cold.bit_fraction())
                        }
                    };
                    let w = fault.weight as f64;
                    sum_seg += seg * w;
                    sum_bits += bits * w;
                    weight += fault.weight as u64;
                    if seg < worst_seg {
                        worst_seg = seg;
                        worst_fault = Some(*fault);
                    }
                    worst_bits = worst_bits.min(bits);
                }
                // Aggregates of the production sweep must be bit-identical
                // to this serial cold reference.
                let report = analyze_faults_on(&engine, &faults, profile, 1);
                let denom = weight.max(1) as f64;
                assert_eq!(report.total_weight, weight);
                assert_eq!(report.worst_segments, worst_seg);
                assert_eq!(report.avg_segments, sum_seg / denom);
                assert_eq!(report.worst_bits, worst_bits);
                assert_eq!(report.avg_bits, sum_bits / denom);
                assert_eq!(report.worst_fault, worst_fault);
                assert!(report.is_complete());
            }
        }
    }

    #[test]
    fn fig2_control_owner_blocks_series_merge_through_a() {
        // A owns the mux address bit, so the scan_in → A pair must NOT
        // merge with anything downstream of A's control cone — but
        // scan_in/A itself is eligible (scan_in owns nothing).
        let rsn = fig2();
        let faults = fault_universe(&rsn);
        let classes = FaultClasses::build(&rsn, &faults, HardeningProfile::unhardened());
        assert!(classes.collapse_ratio() > 1.0);
        assert!(classes.len() < faults.len());
    }
}
