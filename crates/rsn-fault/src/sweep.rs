//! Work-stealing sweep scheduler shared by every parallel fault-sweep
//! entry point (`metric`, `multi`, `diagnose`, `plan`).
//!
//! Per-item costs in a fault sweep are heavily skewed: a fault near the
//! scan-in port converges in one fixed-point round while a deep control
//! fault cascades for many. A static one-chunk-per-worker split strands
//! every other worker behind the unluckiest chunk. Here workers instead
//! claim small batches from a shared atomic cursor, so load balances at
//! batch granularity no matter how skewed the items are.
//!
//! Telemetry: `fault.steal_batches` counts claimed batches and
//! `fault.worker_utilization` reports the fraction of worker wall-time
//! spent evaluating (1.0 = perfectly balanced).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Batch size workers claim from the shared cursor. Small enough that a
/// skewed tail cannot strand more than `BATCH - 1` cheap items behind one
/// expensive one, large enough to amortize the atomic claim.
pub(crate) const BATCH: usize = 16;

/// Evaluates `eval(state, i)` for every `i in 0..len` across up to
/// `threads` workers and returns the results in index order.
///
/// Each worker owns one `state` (built by `make_state` on the worker
/// thread) and repeatedly claims [`BATCH`]-sized index ranges from a
/// shared atomic cursor until the range is exhausted. With one worker (or
/// few items) everything runs inline on the calling thread through the
/// same claiming loop, so counters behave identically.
///
/// The scheduler itself never drops or duplicates an index: every index
/// is claimed by exactly one worker. Skip/quarantine policies belong to
/// `eval` (encode them in `R`).
pub(crate) fn run_stealing<R, S>(
    len: usize,
    threads: usize,
    make_state: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize) -> R + Sync,
) -> Vec<R>
where
    R: Send,
    S: Send,
{
    let start = Instant::now();
    let cursor = AtomicUsize::new(0);
    let batches = AtomicUsize::new(0);
    let worker = |out: &mut Vec<(usize, R)>| {
        // Runs on the worker's own thread, so each worker traces onto its
        // own timeline row (`tid` = worker in the exported trace).
        let _trace = rsn_obs::TraceGuard::new("sweep_worker");
        let mut state = make_state();
        loop {
            let lo = cursor.fetch_add(BATCH, Ordering::Relaxed);
            if lo >= len {
                break;
            }
            rsn_obs::trace_instant("claim_batch");
            batches.fetch_add(1, Ordering::Relaxed);
            let hi = (lo + BATCH).min(len);
            for i in lo..hi {
                out.push((i, eval(&mut state, i)));
            }
        }
    };

    let threads = threads.clamp(1, len.div_ceil(BATCH).max(1));
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(len);
    let mut busy = 0.0f64;
    if threads == 1 {
        worker(&mut collected);
        busy = start.elapsed().as_secs_f64();
    } else {
        // Report scopes are thread-local; re-enter the caller's scopes on
        // each worker so per-request metric attribution survives fan-out.
        let scopes = rsn_obs::scope_handles();
        let per_worker: Vec<(Vec<(usize, R)>, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let _guards: Vec<_> = scopes.iter().map(|h| h.enter()).collect();
                        let t0 = Instant::now();
                        let mut out = Vec::new();
                        worker(&mut out);
                        (out, t0.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for (out, b) in per_worker {
            busy += b;
            collected.extend(out);
        }
    }

    rsn_obs::counter_add(
        "fault.steal_batches",
        batches.load(Ordering::Relaxed) as u64,
    );
    let wall = start.elapsed().as_secs_f64();
    if wall > 0.0 && len > 0 {
        rsn_obs::gauge_set(
            "fault.worker_utilization",
            (busy / (threads as f64 * wall)).min(1.0),
        );
    }

    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (i, r) in collected {
        debug_assert!(slots[i].is_none(), "index {i} evaluated twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("scheduler claimed every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_evaluated_exactly_once_in_order() {
        for threads in [1, 2, 4] {
            for len in [0, 1, BATCH - 1, BATCH, 3 * BATCH + 5] {
                let out = run_stealing(len, threads, || (), |_, i| i * 2);
                assert_eq!(out, (0..len).map(|i| i * 2).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // With one thread the single state sees every index.
        let out = run_stealing(
            40,
            1,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out.last(), Some(&40));
    }
}
