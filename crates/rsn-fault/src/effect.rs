//! Semantic effect of a stuck-at fault on an RSN.
//!
//! Translates a [`Fault`] into its impact on dataflow and control:
//!
//! * *corrupt* nodes / multiplexer input edges — scan data passing through
//!   is forced to the stuck value (the paper's adapted transition relation:
//!   a fault on the active path propagates its value to all subsequent
//!   registers),
//! * *forced* control bits — a stuck shadow cell or address net pins the
//!   driven multiplexer to one input,
//! * *local losses* — segments whose instrument interface is broken while
//!   the scan path through them stays intact.

use std::collections::HashMap;

use rsn_core::{NodeId, NodeKind, Rsn};

use crate::fault::{Fault, FaultSite};
use crate::metric::HardeningProfile;

/// The effect of one stuck-at fault, consumed by the accessibility engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultEffect {
    /// Nodes whose scan data path is corrupted.
    pub corrupt_nodes: Vec<NodeId>,
    /// Corrupted multiplexer input edges `(mux, input index)`.
    pub corrupt_mux_inputs: Vec<(NodeId, usize)>,
    /// Shadow-register bits pinned to a value: `(segment, bit) → value`.
    pub forced_bits: HashMap<(NodeId, u32), bool>,
    /// Multiplexers whose address net is pinned, forcing one input.
    pub forced_mux: HashMap<NodeId, usize>,
    /// Segments that lose instrument access without corrupting dataflow.
    pub local_loss: Vec<NodeId>,
    /// The stuck value a data-corrupting fault propagates into registers
    /// written through the fault site (the adapted transition relation).
    pub stuck: Option<bool>,
}

impl FaultEffect {
    /// The benign effect (fault fully masked by hardening).
    pub fn benign() -> Self {
        FaultEffect::default()
    }

    /// `true` if the fault has no effect on accessibility (the recorded
    /// stuck value is irrelevant when nothing is corrupted or forced).
    pub fn is_benign(&self) -> bool {
        self.corrupt_nodes.is_empty()
            && self.corrupt_mux_inputs.is_empty()
            && self.forced_bits.is_empty()
            && self.forced_mux.is_empty()
            && self.local_loss.is_empty()
    }
}

/// Returns `true` if segment `seg` drives any multiplexer address bit.
pub fn is_control_segment(rsn: &Rsn, seg: NodeId) -> bool {
    first_control_bit(rsn, seg).is_some()
}

/// The lowest bit index of `seg`'s register that drives some multiplexer
/// address, or `None` if the segment drives no address.
pub fn first_control_bit(rsn: &Rsn, seg: NodeId) -> Option<u32> {
    let mut refs = Vec::new();
    for m in rsn.muxes() {
        for e in &rsn
            .node(m)
            .as_mux()
            .expect("muxes() yields muxes")
            .addr_bits
        {
            e.collect_reg_refs(&mut refs);
        }
    }
    refs.into_iter()
        .filter(|&(n, _)| n == seg)
        .map(|(_, bit)| bit)
        .min()
}

/// Precomputed control-ownership index of a network: which segments drive
/// some multiplexer address, and the first such bit per segment.
///
/// [`first_control_bit`] rescans every multiplexer per call; sweeps that
/// derive thousands of fault effects build this once and use
/// [`effect_of_indexed`] instead.
#[derive(Debug, Clone, Default)]
pub struct ControlBitIndex {
    first_bit: HashMap<NodeId, u32>,
}

impl ControlBitIndex {
    /// Scans the network's multiplexer addresses once.
    pub fn new(rsn: &Rsn) -> Self {
        let mut refs = Vec::new();
        for m in rsn.muxes() {
            for e in &rsn
                .node(m)
                .as_mux()
                .expect("muxes() yields muxes")
                .addr_bits
            {
                e.collect_reg_refs(&mut refs);
            }
        }
        let mut first_bit = HashMap::new();
        for (n, bit) in refs {
            first_bit
                .entry(n)
                .and_modify(|b: &mut u32| *b = (*b).min(bit))
                .or_insert(bit);
        }
        ControlBitIndex { first_bit }
    }

    /// See [`first_control_bit`].
    pub fn first_control_bit(&self, seg: NodeId) -> Option<u32> {
        self.first_bit.get(&seg).copied()
    }

    /// See [`is_control_segment`].
    pub fn is_control_segment(&self, seg: NodeId) -> bool {
        self.first_bit.contains_key(&seg)
    }

    /// All segments that drive some multiplexer address.
    pub fn owners(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.first_bit.keys().copied()
    }
}

/// Computes the effect of a fault under the given hardening profile.
///
/// With `profile.select_hardened`, select-stem faults are masked (the
/// fault-tolerant synthesis provides two independent assertion paths per
/// select signal, Sec. III-E-2). With a TMR-hardened multiplexer
/// (`Mux::hardened`), address-net faults are masked (Sec. III-E-3).
pub fn effect_of(rsn: &Rsn, fault: &Fault, profile: HardeningProfile) -> FaultEffect {
    effect_impl(rsn, fault, profile, &mut |n| first_control_bit(rsn, n))
}

/// [`effect_of`] using a prebuilt [`ControlBitIndex`], so sweeps over many
/// faults resolve shadow-cell control ownership in O(1) per fault.
pub fn effect_of_indexed(
    rsn: &Rsn,
    fault: &Fault,
    profile: HardeningProfile,
    ctl: &ControlBitIndex,
) -> FaultEffect {
    effect_impl(rsn, fault, profile, &mut |n| ctl.first_control_bit(n))
}

fn effect_impl(
    rsn: &Rsn,
    fault: &Fault,
    profile: HardeningProfile,
    first_bit: &mut dyn FnMut(NodeId) -> Option<u32>,
) -> FaultEffect {
    let mut e = FaultEffect {
        stuck: Some(fault.value),
        ..FaultEffect::default()
    };
    match fault.site {
        FaultSite::SegmentData(n) => {
            e.corrupt_nodes.push(n);
        }
        FaultSite::SegmentSelect(n) => {
            if profile.select_hardened {
                // Two independent assertion stems: a single stem fault is
                // masked for stuck-at-0; stuck-at-1 keeps the segment on the
                // resulting active path (paper Sec. III-E-2).
                return FaultEffect::benign();
            }
            if !fault.value {
                // Stuck-at-0: the segment never shifts; any active path
                // through it is corrupted.
                e.corrupt_nodes.push(n);
            }
            // Stuck-at-1: the segment shifts even when deselected, which
            // does not disturb the routed dataflow: benign for
            // accessibility.
        }
        FaultSite::SegmentShadow(n) => {
            match first_bit(n) {
                Some(bit) => {
                    // The stuck cell pins the driven address source (the
                    // first mux-referenced bit of the register represents
                    // the collapsed class).
                    e.forced_bits.insert((n, bit), fault.value);
                }
                None => {
                    // Instrument write data corrupted: segment lost,
                    // dataflow intact.
                    e.local_loss.push(n);
                }
            }
        }
        FaultSite::MuxInput(n, k) => {
            e.corrupt_mux_inputs.push((n, k));
        }
        FaultSite::MuxOutput(n) => {
            e.corrupt_nodes.push(n);
        }
        FaultSite::MuxAddress(n) => {
            let mux = rsn.node(n).as_mux().expect("address fault on mux");
            if mux.hardened {
                return FaultEffect::benign();
            }
            // Pin the address net. For a binary-encoded address, pinning
            // the net pins every bit (the fault models the fanout stem).
            let mut addr = 0usize;
            if fault.value {
                for i in 0..mux.addr_bits.len() {
                    addr |= 1 << i;
                }
            }
            let addr = addr.min(mux.inputs.len() - 1);
            e.forced_mux.insert(n, addr);
        }
        FaultSite::ScanInPort(n) | FaultSite::ScanOutPort(n) => {
            e.corrupt_nodes.push(n);
        }
    }

    // A data-corrupt control segment also loses reliable control over the
    // bits it drives; the engine discovers this through the clean-write
    // fixed point, so no extra bookkeeping is needed here. However, a
    // forced control bit whose expression appears negated must be handled
    // by the engine when inverting address requirements.

    // Deduplicate for deterministic comparisons.
    e.corrupt_nodes.sort_unstable();
    e.corrupt_nodes.dedup();
    e.corrupt_mux_inputs.sort_unstable();
    e.corrupt_mux_inputs.dedup();
    e.local_loss.sort_unstable();
    e.local_loss.dedup();

    // Sanity: nodes referenced must exist and match kinds.
    debug_assert!(match fault.site {
        FaultSite::SegmentData(n) | FaultSite::SegmentSelect(n) | FaultSite::SegmentShadow(n) =>
            matches!(rsn.node(n).kind(), NodeKind::Segment(_)),
        FaultSite::MuxInput(n, _) | FaultSite::MuxOutput(n) | FaultSite::MuxAddress(n) =>
            matches!(rsn.node(n).kind(), NodeKind::Mux(_)),
        FaultSite::ScanInPort(n) => matches!(rsn.node(n).kind(), NodeKind::ScanIn),
        FaultSite::ScanOutPort(n) => matches!(rsn.node(n).kind(), NodeKind::ScanOut),
    });

    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::fig2;

    fn fig2_and_a() -> (Rsn, NodeId) {
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        (rsn, a)
    }

    #[test]
    fn segment_a_is_a_control_segment() {
        let (rsn, a) = fig2_and_a();
        assert!(is_control_segment(&rsn, a));
        let b = rsn.find("B").expect("B");
        assert!(!is_control_segment(&rsn, b));
    }

    #[test]
    fn data_fault_corrupts_node() {
        let (rsn, a) = fig2_and_a();
        let f = Fault {
            site: FaultSite::SegmentData(a),
            value: false,
            weight: 2,
        };
        let e = effect_of(&rsn, &f, HardeningProfile::unhardened());
        assert_eq!(e.corrupt_nodes, vec![a]);
        assert!(e.forced_bits.is_empty());
    }

    #[test]
    fn shadow_fault_on_control_segment_forces_bit() {
        let (rsn, a) = fig2_and_a();
        let f = Fault {
            site: FaultSite::SegmentShadow(a),
            value: true,
            weight: 1,
        };
        let e = effect_of(&rsn, &f, HardeningProfile::unhardened());
        assert_eq!(e.forced_bits.get(&(a, 0)), Some(&true));
        assert!(e.corrupt_nodes.is_empty());
    }

    #[test]
    fn shadow_fault_on_instrument_segment_is_local_loss() {
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let f = Fault {
            site: FaultSite::SegmentShadow(b),
            value: false,
            weight: 1,
        };
        let e = effect_of(&rsn, &f, HardeningProfile::unhardened());
        assert_eq!(e.local_loss, vec![b]);
        assert!(e.corrupt_nodes.is_empty());
    }

    #[test]
    fn select_sa0_corrupts_sa1_benign() {
        let (rsn, a) = fig2_and_a();
        let sa0 = Fault {
            site: FaultSite::SegmentSelect(a),
            value: false,
            weight: 1,
        };
        let sa1 = Fault {
            site: FaultSite::SegmentSelect(a),
            value: true,
            weight: 1,
        };
        let p = HardeningProfile::unhardened();
        assert_eq!(effect_of(&rsn, &sa0, p).corrupt_nodes, vec![a]);
        assert!(effect_of(&rsn, &sa1, p).is_benign());
    }

    #[test]
    fn hardened_select_masks_stem_fault() {
        let (rsn, a) = fig2_and_a();
        let sa0 = Fault {
            site: FaultSite::SegmentSelect(a),
            value: false,
            weight: 1,
        };
        let e = effect_of(&rsn, &sa0, HardeningProfile::hardened());
        assert!(e.is_benign());
    }

    #[test]
    fn mux_address_fault_forces_input() {
        let rsn = fig2();
        let m = rsn.find("M").expect("mux");
        let sa1 = Fault {
            site: FaultSite::MuxAddress(m),
            value: true,
            weight: 1,
        };
        let e = effect_of(&rsn, &sa1, HardeningProfile::unhardened());
        assert_eq!(e.forced_mux.get(&m), Some(&1));
        let sa0 = Fault {
            site: FaultSite::MuxAddress(m),
            value: false,
            weight: 1,
        };
        let e = effect_of(&rsn, &sa0, HardeningProfile::unhardened());
        assert_eq!(e.forced_mux.get(&m), Some(&0));
    }

    #[test]
    fn mux_input_fault_corrupts_one_edge_only() {
        let rsn = fig2();
        let m = rsn.find("M").expect("mux");
        let f = Fault {
            site: FaultSite::MuxInput(m, 1),
            value: false,
            weight: 1,
        };
        let e = effect_of(&rsn, &f, HardeningProfile::unhardened());
        assert_eq!(e.corrupt_mux_inputs, vec![(m, 1)]);
        assert!(e.corrupt_nodes.is_empty());
    }

    #[test]
    fn scan_port_fault_corrupts_port() {
        let rsn = fig2();
        let f = Fault {
            site: FaultSite::ScanInPort(rsn.scan_in()),
            value: false,
            weight: 1,
        };
        let e = effect_of(&rsn, &f, HardeningProfile::unhardened());
        assert_eq!(e.corrupt_nodes, vec![rsn.scan_in()]);
    }
}
