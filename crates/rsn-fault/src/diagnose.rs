//! Fault diagnosis: locating a stuck-at fault from observed access
//! behavior.
//!
//! The paper motivates fault-tolerant RSNs with post-silicon debug and
//! diagnosis; this module provides the classic *fault dictionary*
//! machinery on top of the accessibility engine:
//!
//! * [`Signature`] — the observable behavior of a (possibly faulty)
//!   network under a fixed probe schedule: which segments can be read and
//!   written correctly from reset.
//! * [`FaultDictionary`] — the predicted signature of every fault in the
//!   collapsed universe.
//! * [`FaultDictionary::diagnose`] — the faults consistent with an
//!   observed signature (the diagnosis candidate set); physical failure
//!   analysis narrows the rest.
//!
//! Equivalent faults (identical signatures) are grouped — stuck-at fault
//! equivalence classes in the diagnosis literature.

use std::collections::HashMap;

use rsn_core::{NodeId, Rsn};

use crate::effect::effect_of;
use crate::engine::{AccessEngine, Scratch};
use crate::fault::{fault_universe, Fault};
use crate::metric::HardeningProfile;
use crate::sweep::run_stealing;

/// Observable behavior under the probe schedule: per-segment access
/// success, in segment arena order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    bits: Vec<bool>,
}

impl Signature {
    /// Builds a signature from per-segment verdicts in
    /// [`Rsn::segments`] order.
    pub fn new(bits: Vec<bool>) -> Self {
        Signature { bits }
    }

    /// The predicted signature of a fault: the engine's per-segment
    /// accessibility.
    pub fn predicted(rsn: &Rsn, fault: &Fault, profile: HardeningProfile) -> Self {
        let engine = AccessEngine::new(rsn);
        let mut scratch = engine.scratch();
        Signature::predicted_on(&engine, &mut scratch, fault, profile)
    }

    /// [`Signature::predicted`] on a prebuilt [`AccessEngine`] — used by
    /// [`FaultDictionary::build`] to amortize precomputation over the
    /// whole fault universe.
    pub fn predicted_on(
        engine: &AccessEngine,
        scratch: &mut Scratch,
        fault: &Fault,
        profile: HardeningProfile,
    ) -> Self {
        let rsn = engine.rsn();
        let effect = effect_of(rsn, fault, profile);
        if effect.is_benign() {
            return Signature {
                bits: vec![true; rsn.segments().count()],
            };
        }
        let acc = engine.accessibility(&effect, scratch);
        Signature {
            bits: rsn.segments().map(|s| acc.accessible[s.index()]).collect(),
        }
    }

    /// The fault-free signature (everything accessible).
    pub fn fault_free(rsn: &Rsn) -> Self {
        Signature {
            bits: vec![true; rsn.segments().count()],
        }
    }

    /// Number of inaccessible segments in the signature.
    pub fn failures(&self) -> usize {
        self.bits.iter().filter(|&&b| !b).count()
    }

    /// Per-segment verdicts.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }
}

/// A precomputed fault dictionary of a network.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    /// Segment order of the signatures.
    segments: Vec<NodeId>,
    /// Signature → equivalence class of faults predicting it.
    classes: HashMap<Signature, Vec<Fault>>,
}

impl FaultDictionary {
    /// Builds the dictionary over the full collapsed fault universe.
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_core::examples::fig2;
    /// use rsn_fault::diagnose::FaultDictionary;
    /// use rsn_fault::HardeningProfile;
    ///
    /// let rsn = fig2();
    /// let dict = FaultDictionary::build(&rsn, HardeningProfile::unhardened());
    /// assert!(dict.class_count() > 1);
    /// ```
    pub fn build(rsn: &Rsn, profile: HardeningProfile) -> Self {
        let engine = AccessEngine::new(rsn);
        let faults = fault_universe(rsn);
        let threads = rsn_budget::default_threads().min(16);
        // Predict signatures with the shared work-stealing scheduler, then
        // group serially in fault order so each class lists its members
        // deterministically.
        let signatures = run_stealing(
            faults.len(),
            threads,
            || engine.scratch(),
            |scratch, i| Signature::predicted_on(&engine, scratch, &faults[i], profile),
        );
        let mut classes: HashMap<Signature, Vec<Fault>> = HashMap::new();
        for (fault, sig) in faults.into_iter().zip(signatures) {
            classes.entry(sig).or_default().push(fault);
        }
        FaultDictionary {
            segments: rsn.segments().collect(),
            classes,
        }
    }

    /// Number of distinct signature classes (diagnostic resolution).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The segment order used by the signatures.
    pub fn segments(&self) -> &[NodeId] {
        &self.segments
    }

    /// The faults whose predicted signature matches the observation
    /// exactly (empty if the observation matches no single stuck-at
    /// fault — e.g. multiple faults or a modeling gap).
    pub fn diagnose(&self, observed: &Signature) -> &[Fault] {
        self.classes.get(observed).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Diagnostic resolution report: for each class, its size. A class of
    /// size 1 pinpoints the fault; larger classes need physical failure
    /// analysis to discriminate.
    pub fn resolution_histogram(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.classes.values().map(Vec::len).collect();
        sizes.sort_unstable();
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSite;
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::parse_soc;
    use rsn_sib::generate;

    #[test]
    fn dictionary_separates_structurally_distinct_faults() {
        let rsn = fig2();
        let dict = FaultDictionary::build(&rsn, HardeningProfile::unhardened());
        // At least: fault-free-like (benign), kill-all, kill-B, kill-C.
        assert!(dict.class_count() >= 4, "classes: {}", dict.class_count());
    }

    #[test]
    fn diagnosis_returns_the_injected_fault_class() {
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        let dict = FaultDictionary::build(&rsn, profile);
        let b = rsn.find("B").expect("B");
        let fault = Fault {
            site: FaultSite::SegmentData(b),
            value: false,
            weight: 2,
        };
        let observed = Signature::predicted(&rsn, &fault, profile);
        let candidates = dict.diagnose(&observed);
        assert!(candidates.contains(&fault));
        // Every candidate must predict the same observation.
        for c in candidates {
            assert_eq!(Signature::predicted(&rsn, c, profile), observed);
        }
    }

    #[test]
    fn fault_free_signature_maps_to_benign_class() {
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        let dict = FaultDictionary::build(&rsn, profile);
        let observed = Signature::fault_free(&rsn);
        let candidates = dict.diagnose(&observed);
        assert!(!candidates.is_empty(), "benign faults exist (select-sa1)");
        for c in candidates {
            let sig = Signature::predicted(&rsn, c, profile);
            assert_eq!(sig.failures(), 0);
        }
    }

    #[test]
    fn chain_has_coarse_resolution() {
        // In a chain, every data fault kills everything: one big class.
        let rsn = chain(4, 2);
        let dict = FaultDictionary::build(&rsn, HardeningProfile::unhardened());
        let histogram = dict.resolution_histogram();
        assert!(histogram.last().copied().expect("nonempty") >= 8);
    }

    #[test]
    fn sib_network_resolution_improves_with_structure() {
        // Subtree faults produce distinct signatures per module.
        let soc = parse_soc("SocName d\n1 0 0 0 2 : 3 3\n2 0 0 0 2 : 3 3\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let dict = FaultDictionary::build(&rsn, HardeningProfile::unhardened());
        assert!(dict.class_count() >= 6, "classes: {}", dict.class_count());
        // The two modules' chain faults are distinguishable.
        let l1 = rsn.find("m1.c0.seg").expect("leaf");
        let l2 = rsn.find("m2.c0.seg").expect("leaf");
        let p = HardeningProfile::unhardened();
        let f1 = Fault {
            site: FaultSite::SegmentData(l1),
            value: false,
            weight: 2,
        };
        let f2 = Fault {
            site: FaultSite::SegmentData(l2),
            value: false,
            weight: 2,
        };
        assert_ne!(
            Signature::predicted(&rsn, &f1, p),
            Signature::predicted(&rsn, &f2, p)
        );
    }

    #[test]
    fn unknown_observation_yields_no_candidates() {
        let rsn = fig2();
        let dict = FaultDictionary::build(&rsn, HardeningProfile::unhardened());
        // A physically impossible pattern for single faults in fig2: only
        // A inaccessible (A is on every path, so losing A loses D too).
        let weird = Signature::new(vec![false, true, true, true]);
        assert!(dict.diagnose(&weird).is_empty());
    }
}
