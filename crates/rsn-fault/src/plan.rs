//! Access planning in faulty RSNs: computing a concrete CSU strategy that
//! reads and writes a target segment *around* a stuck-at fault — the
//! executable form of the paper's first contribution ("a formal model and
//! an algorithm to compute scan paths in faulty RSNs").
//!
//! The planner chooses a clean scan path (avoiding the fault site),
//! derives the multiplexer address values that sensitize it, and orders
//! the control-register writes so that every write travels over a clean
//! prefix. Plans are validated end to end against the bit-accurate
//! [`FaultySim`](crate::sim::FaultySim): data must actually round-trip
//! through the stuck silicon.
//!
//! The planner is deliberately restricted to *clean-write* strategies: it
//! never relies on a dirty write delivering the stuck value (the metric
//! engine does model that recovery mode, so a few engine-accessible
//! corner cases return `None` here — see DESIGN.md §4.6).

use std::collections::HashMap;

use rsn_core::{Config, ControlExpr, NodeId, NodeKind, Rsn};

use crate::effect::FaultEffect;
use crate::engine::AccessEngine;
use crate::sweep::run_stealing;

/// A concrete faulty-access plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyAccessPlan {
    /// The target segment.
    pub target: NodeId,
    /// Configurations after each setup CSU, in order.
    pub steps: Vec<Config>,
    /// The final clean scan path (scan-in … scan-out), containing the
    /// target and avoiding the fault site.
    pub path: Vec<NodeId>,
}

impl FaultyAccessPlan {
    /// Number of setup CSU operations before the data access.
    pub fn csu_count(&self) -> usize {
        self.steps.len()
    }
}

/// Evaluates a mux address under a configuration with forced bits applied.
fn decode_addr(rsn: &Rsn, cfg: &Config, effect: &FaultEffect, mux: NodeId) -> Option<usize> {
    if let Some(&k) = effect.forced_mux.get(&mux) {
        return Some(k);
    }
    let m = rsn.node(mux).as_mux()?;
    let mut addr = 0usize;
    for (i, e) in m.addr_bits.iter().enumerate() {
        let v = eval_forced(rsn, cfg, effect, e)?;
        if v {
            addr |= 1 << i;
        }
    }
    (addr < m.inputs.len()).then_some(addr)
}

fn eval_forced(rsn: &Rsn, cfg: &Config, effect: &FaultEffect, e: &ControlExpr) -> Option<bool> {
    Some(match e {
        ControlExpr::Const(b) => *b,
        ControlExpr::Reg(n, bit) => match effect.forced_bits.get(&(*n, *bit)) {
            Some(&v) => v,
            None => {
                let off = rsn.shadow_offset(*n)?;
                cfg.bit((off + *bit) as usize)
            }
        },
        ControlExpr::Input(_) => false, // planner drives inputs low
        ControlExpr::Not(inner) => !eval_forced(rsn, cfg, effect, inner)?,
        ControlExpr::And(es) => {
            let mut acc = true;
            for x in es {
                acc &= eval_forced(rsn, cfg, effect, x)?;
            }
            acc
        }
        ControlExpr::Or(es) => {
            let mut acc = false;
            for x in es {
                acc |= eval_forced(rsn, cfg, effect, x)?;
            }
            acc
        }
    })
}

/// Traces the structural path under the fault and configuration.
pub fn trace_faulty(rsn: &Rsn, cfg: &Config, effect: &FaultEffect) -> Option<Vec<NodeId>> {
    let mut rev = vec![rsn.scan_out()];
    let mut cur = rsn.scan_out();
    let limit = rsn.node_count() + 1;
    while !matches!(rsn.node(cur).kind(), NodeKind::ScanIn) {
        let prev = match rsn.node(cur).kind() {
            NodeKind::Mux(m) => {
                let k = decode_addr(rsn, cfg, effect, cur)?;
                m.inputs[k]
            }
            _ => rsn.node(cur).source()?,
        };
        rev.push(prev);
        cur = prev;
        if rev.len() > limit {
            return None;
        }
    }
    rev.reverse();
    Some(rev)
}

/// Chooses a register assignment that makes `expr` evaluate to `want`,
/// avoiding bits pinned to the opposite value.
fn choose(
    rsn: &Rsn,
    reset: &Config,
    effect: &FaultEffect,
    expr: &ControlExpr,
    want: bool,
    out: &mut Vec<(NodeId, u32, bool)>,
) -> bool {
    match expr {
        ControlExpr::Const(b) => *b == want,
        ControlExpr::Reg(n, bit) => {
            match effect.forced_bits.get(&(*n, *bit)) {
                Some(&v) => v == want,
                None => {
                    // A corrupt register cannot be cleanly written; its
                    // reset value may still satisfy the requirement.
                    if effect.corrupt_nodes.contains(n) {
                        let off = match rsn.shadow_offset(*n) {
                            Some(o) => o,
                            None => return false,
                        };
                        return reset.bit((off + *bit) as usize) == want;
                    }
                    out.push((*n, *bit, want));
                    true
                }
            }
        }
        ControlExpr::Input(_) => !want, // inputs held low by the planner
        ControlExpr::Not(e) => choose(rsn, reset, effect, e, !want, out),
        ControlExpr::And(es) if want => es.iter().all(|e| choose(rsn, reset, effect, e, true, out)),
        ControlExpr::Or(es) if !want => {
            es.iter().all(|e| choose(rsn, reset, effect, e, false, out))
        }
        ControlExpr::And(es) | ControlExpr::Or(es) => {
            for e in es {
                let mut tmp = Vec::new();
                if choose(rsn, reset, effect, e, want, &mut tmp) {
                    out.extend(tmp);
                    return true;
                }
            }
            false
        }
    }
}

/// Computes a clean scan path through `target` avoiding corrupt elements,
/// using BFS over edges that *could* be configured (ignoring current
/// register values — configurability is resolved by `choose`).
fn clean_path(engine: &AccessEngine, effect: &FaultEffect, target: NodeId) -> Option<Vec<NodeId>> {
    let rsn = engine.rsn();
    let reset = engine.reset_config();
    let n = rsn.node_count();
    let corrupt = |id: NodeId| effect.corrupt_nodes.contains(&id);
    let corrupt_edge = |m: NodeId, k: usize| effect.corrupt_mux_inputs.contains(&(m, k));
    let usable = |m: NodeId, k: usize| match effect.forced_mux.get(&m) {
        Some(&f) => f == k,
        None => {
            let mux = rsn.node(m).as_mux().expect("mux");
            let mut tmp = Vec::new();
            mux.addr_bits.iter().enumerate().all(|(i, e)| {
                let want = (k >> i) & 1 == 1;
                choose(rsn, reset, effect, e, want, &mut tmp)
            })
        }
    };

    // Forward BFS to the target.
    let mut parent_f: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &r in engine.roots() {
        if !corrupt(r) {
            seen[r.index()] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in rsn.successors(u) {
            if seen[v.index()] || corrupt(v) {
                continue;
            }
            let ok = match rsn.node(v).kind() {
                NodeKind::Mux(m) => m
                    .inputs
                    .iter()
                    .enumerate()
                    .any(|(k, &inp)| inp == u && usable(v, k) && !corrupt_edge(v, k)),
                _ => true,
            };
            if ok {
                seen[v.index()] = true;
                parent_f[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    if !seen[target.index()] {
        return None;
    }

    // Backward BFS from the sinks to the target over clean usable edges.
    let mut parent_b: Vec<Option<NodeId>> = vec![None; n];
    let mut seen_b = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in engine.sinks() {
        if !corrupt(s) {
            seen_b[s.index()] = true;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let preds: Vec<(NodeId, Option<usize>)> = match rsn.node(v).kind() {
            NodeKind::Mux(m) => m
                .inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, Some(k)))
                .collect(),
            _ => rsn
                .node(v)
                .source()
                .map(|s| (s, None))
                .into_iter()
                .collect(),
        };
        for (u, edge) in preds {
            if seen_b[u.index()] || corrupt(u) {
                continue;
            }
            let ok = match edge {
                Some(k) => usable(v, k) && !corrupt_edge(v, k),
                None => true,
            };
            if ok {
                seen_b[u.index()] = true;
                parent_b[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    if !seen_b[target.index()] {
        return None;
    }

    // Stitch prefix + suffix.
    let mut prefix = vec![target];
    let mut cur = target;
    while let Some(p) = parent_f[cur.index()] {
        prefix.push(p);
        cur = p;
    }
    prefix.reverse();
    let mut cur = target;
    let mut suffix = Vec::new();
    while let Some(nx) = parent_b[cur.index()] {
        suffix.push(nx);
        cur = nx;
    }
    prefix.extend(suffix);
    Some(prefix)
}

/// Plans a clean-write access to `target` in the faulty network.
///
/// Returns `None` when the target is not accessible with a clean-write
/// strategy (in particular when recovery would require exploiting dirty
/// writes, which the planner deliberately avoids).
pub fn plan_faulty_access(
    rsn: &Rsn,
    effect: &FaultEffect,
    target: NodeId,
) -> Option<FaultyAccessPlan> {
    let engine = AccessEngine::new(rsn);
    plan_faulty_access_on(&engine, effect, target)
}

/// [`plan_faulty_access`] on a prebuilt [`AccessEngine`], reusing its
/// cached reset configuration and root/sink lists across many planning
/// calls (one per fault × segment in repair sweeps).
pub fn plan_faulty_access_on(
    engine: &AccessEngine,
    effect: &FaultEffect,
    target: NodeId,
) -> Option<FaultyAccessPlan> {
    let rsn = engine.rsn();
    let reset = engine.reset_config();
    if effect.corrupt_nodes.contains(&target) || effect.local_loss.contains(&target) {
        return None;
    }
    let path = clean_path(engine, effect, target)?;

    // Address requirements of the path's muxes.
    let mut required: HashMap<(NodeId, u32), bool> = HashMap::new();
    for w in path.windows(2) {
        let (u, v) = (w[0], w[1]);
        if let NodeKind::Mux(m) = rsn.node(v).kind() {
            let k = m.inputs.iter().position(|&i| i == u)?;
            if effect.forced_mux.contains_key(&v) {
                continue; // forced to this input already (clean_path checked)
            }
            let mut assignment = Vec::new();
            for (i, e) in m.addr_bits.iter().enumerate() {
                let want = (k >> i) & 1 == 1;
                if !choose(rsn, reset, effect, e, want, &mut assignment) {
                    return None;
                }
            }
            for (n, b, v2) in assignment {
                if let Some(&prev) = required.get(&(n, b)) {
                    if prev != v2 {
                        return None; // conflicting requirements
                    }
                }
                required.insert((n, b), v2);
            }
        }
    }

    // Order the writes: repeatedly trace the current faulty path and write
    // every still-wrong bit whose owner sits on the clean prefix (before
    // any corrupt element on the path).
    let mut cfg = reset.clone();
    let mut steps = Vec::new();
    for _round in 0..=rsn.node_count() {
        let cur_path = trace_faulty(rsn, &cfg, effect)?;
        let satisfied = required.iter().all(|(&(n, b), &v)| {
            rsn.shadow_offset(n)
                .map(|off| cfg.bit((off + b) as usize) == v)
                .unwrap_or(false)
        });
        if satisfied {
            // Final check: the planned path must now be the traced one in
            // the target's vicinity — trace and confirm the target is on a
            // clean path.
            let fin = trace_faulty(rsn, &cfg, effect)?;
            if !fin.contains(&target) {
                return None;
            }
            if fin.iter().any(|n| effect.corrupt_nodes.contains(n)) {
                return None;
            }
            return Some(FaultyAccessPlan {
                target,
                steps,
                path: fin,
            });
        }
        // Clean prefix of the current path: up to the first corrupt node.
        let taint_at = cur_path
            .iter()
            .position(|n| effect.corrupt_nodes.contains(n))
            .unwrap_or(cur_path.len());
        let clean_prefix = &cur_path[..taint_at];
        let mut progressed = false;
        let mut next = cfg.clone();
        for (&(n, b), &v) in &required {
            let off = rsn.shadow_offset(n)?;
            if next.bit((off + b) as usize) == v {
                continue;
            }
            if clean_prefix.contains(&n) {
                next.set_bit((off + b) as usize, v);
                progressed = true;
            }
        }
        if !progressed {
            return None;
        }
        cfg = next;
        steps.push(cfg.clone());
    }
    None
}

/// Plans accesses to every target segment under one fault effect,
/// fanning [`plan_faulty_access_on`] over the work-stealing scheduler.
/// Results come back in target order (`None` where no clean-write plan
/// exists), identical to calling the planner serially — planning is a
/// pure function of `(effect, target)`.
pub fn plan_targets_on(
    engine: &AccessEngine,
    effect: &FaultEffect,
    targets: &[NodeId],
) -> Vec<Option<FaultyAccessPlan>> {
    let threads = rsn_budget::default_threads().min(16);
    run_stealing(
        targets.len(),
        threads,
        || (),
        |_, i| plan_faulty_access_on(engine, effect, targets[i]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::effect_of;
    use crate::fault::{fault_universe, Fault, FaultSite};
    use crate::metric::HardeningProfile;
    use crate::sim::FaultySim;
    use rsn_core::examples::fig2;
    use rsn_itc02::parse_soc;
    use rsn_sib::generate;

    /// Executes a plan on the bit-accurate faulty simulator and verifies
    /// a full write+read round trip of the target.
    fn execute_and_verify(rsn: &Rsn, fault: Fault, plan: &FaultyAccessPlan) -> bool {
        let mut sim = FaultySim::new(rsn, fault);
        // Apply each setup step: write the next configuration values into
        // every writable register on the current faulty path.
        for step in &plan.steps {
            let path = match sim.trace_faulty_path() {
                Ok(p) => p,
                Err(_) => return false,
            };
            let segs: Vec<NodeId> = path
                .iter()
                .copied()
                .filter(|&n| matches!(rsn.node(n).kind(), NodeKind::Segment(_)))
                .collect();
            let total: usize = segs
                .iter()
                .map(|&s| sim.state.shift_register(s).len())
                .sum();
            let mut stream = vec![false; total];
            let mut pos = 0usize;
            for &s in &segs {
                let len = sim.state.shift_register(s).len();
                for i in 0..len {
                    let bit = match rsn.shadow_offset(s) {
                        Some(off) => step.bit((off + i as u32) as usize),
                        None => false,
                    };
                    stream[total - 1 - (pos + i)] = bit;
                }
                pos += len;
            }
            if sim.csu(&stream).is_err() {
                return false;
            }
        }
        // Data round trip. Control registers get a routing-neutral pattern
        // (their value steers multiplexers; writing 1 into a SIB register
        // would reroute the path, possibly into the faulty region).
        let len = rsn.node(plan.target).as_segment().expect("segment").length as usize;
        let pattern: Vec<bool> = if crate::effect::is_control_segment(rsn, plan.target) {
            vec![false; len]
        } else {
            (0..len).map(|i| i % 2 == 0).collect()
        };
        match sim.write_and_verify(plan.target, &pattern) {
            Ok(true) => {}
            _ => return false,
        }
        matches!(sim.read(plan.target, &pattern), Ok(Some(got)) if got == pattern)
    }

    #[test]
    fn fig2_reroutes_around_b() {
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let c = rsn.find("C").expect("C");
        let fault = Fault {
            site: FaultSite::SegmentData(b),
            value: false,
            weight: 2,
        };
        let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
        let plan = plan_faulty_access(&rsn, &effect, c).expect("C reachable via its branch");
        assert!(!plan.path.contains(&b), "plan must avoid the fault site");
        assert!(execute_and_verify(&rsn, fault, &plan), "sim round trip");
    }

    #[test]
    fn plans_match_engine_verdicts_on_sib_network() {
        // For every fault in a small SIB RSN, a clean-write plan exists
        // whenever the engine calls the segment accessible, and every plan
        // round-trips data through the faulty simulator.
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 3 2\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let profile = HardeningProfile::unhardened();
        let engine = AccessEngine::new(&rsn);
        let mut scratch = engine.scratch();
        let mut planned = 0usize;
        let mut verified = 0usize;
        for fault in fault_universe(&rsn) {
            if matches!(fault.site, FaultSite::SegmentSelect(_)) {
                continue; // not simulatable at bit level
            }
            let effect = effect_of(&rsn, &fault, profile);
            let acc = engine.accessibility(&effect, &mut scratch);
            for seg in rsn.segments() {
                let plan = plan_faulty_access_on(&engine, &effect, seg);
                if acc.accessible[seg.index()] {
                    // Clean-write plans cover the SIB networks entirely
                    // (no dirty-write recovery needed there).
                    let plan = plan.unwrap_or_else(|| {
                        panic!("engine-accessible {seg} must be plannable under {fault}")
                    });
                    planned += 1;
                    if execute_and_verify(&rsn, fault, &plan) {
                        verified += 1;
                    } else {
                        panic!(
                            "plan for {} under {fault} failed simulation",
                            rsn.node(seg).name()
                        );
                    }
                } else {
                    assert!(plan.is_none(), "inaccessible {seg} planned under {fault}");
                }
            }
        }
        assert!(planned > 100, "nontrivial coverage: {planned}");
        assert_eq!(planned, verified, "every plan must survive simulation");
    }

    #[test]
    fn plan_avoids_forced_mux_branch() {
        let rsn = fig2();
        let m = rsn.find("M").expect("M");
        let b = rsn.find("B").expect("B");
        let fault = Fault {
            site: FaultSite::MuxAddress(m),
            value: false,
            weight: 1,
        };
        let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
        // Address stuck at 0: B stays reachable, C does not.
        let plan = plan_faulty_access(&rsn, &effect, b).expect("B plannable");
        assert!(plan.path.contains(&b));
        let c = rsn.find("C").expect("C");
        assert!(plan_faulty_access(&rsn, &effect, c).is_none());
    }

    #[test]
    fn fault_free_effect_plans_everything() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 3 2\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        for seg in rsn.segments() {
            let plan = plan_faulty_access(&rsn, &FaultEffect::benign(), seg);
            assert!(plan.is_some(), "{} must be plannable", rsn.node(seg).name());
        }
    }

    #[test]
    fn plan_sweep_matches_serial_planner() {
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let fault = Fault {
            site: FaultSite::SegmentData(b),
            value: false,
            weight: 2,
        };
        let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
        let engine = AccessEngine::new(&rsn);
        let targets: Vec<NodeId> = rsn.segments().collect();
        let swept = plan_targets_on(&engine, &effect, &targets);
        assert_eq!(swept.len(), targets.len());
        for (seg, plan) in targets.iter().zip(&swept) {
            assert_eq!(plan, &plan_faulty_access_on(&engine, &effect, *seg));
        }
    }
}
