//! The fault-tolerance metric: worst-case and average accessibility over
//! all single stuck-at faults (paper Sec. III-A, Table I).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use rsn_budget::Budget;
use rsn_core::Rsn;

use crate::effect::effect_of;
use crate::engine::{AccessEngine, Scratch};
use crate::fault::{fault_universe_weighted, Fault, WeightModel};

/// Which hardening measures of the fault-tolerant synthesis apply when
/// interpreting fault effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardeningProfile {
    /// Select signals synthesized with two independent assertion paths
    /// (Sec. III-E-2): single select-stem faults are masked.
    pub select_hardened: bool,
}

impl HardeningProfile {
    /// Profile of an original (unhardened) RSN.
    pub fn unhardened() -> Self {
        HardeningProfile {
            select_hardened: false,
        }
    }

    /// Profile of a synthesized fault-tolerant RSN.
    pub fn hardened() -> Self {
        HardeningProfile {
            select_hardened: true,
        }
    }
}

/// Aggregated fault-tolerance metric of an RSN: the Table I accessibility
/// columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceReport {
    /// Number of collapsed fault classes analyzed (both polarities).
    pub fault_count: usize,
    /// Sum of fault weights (port-level site count).
    pub total_weight: u64,
    /// Worst-case fraction of accessible segments over all faults.
    pub worst_segments: f64,
    /// Weighted average fraction of accessible segments.
    pub avg_segments: f64,
    /// Worst-case fraction of accessible scan bits.
    pub worst_bits: f64,
    /// Weighted average fraction of accessible scan bits.
    pub avg_bits: f64,
    /// A fault achieving the worst segment accessibility.
    pub worst_fault: Option<Fault>,
    /// Faults whose evaluation panicked and was isolated; their weight is
    /// excluded from every aggregate.
    pub quarantined: usize,
    /// Faults left unevaluated because the [`Budget`] ran out; their
    /// weight is excluded from every aggregate.
    pub skipped: usize,
}

impl FaultToleranceReport {
    /// `true` if every fault in the universe was actually evaluated
    /// (nothing quarantined, nothing budget-skipped).
    pub fn is_complete(&self) -> bool {
        self.quarantined == 0 && self.skipped == 0
    }
}

impl fmt::Display for FaultToleranceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments worst {:.3} avg {:.3} | bits worst {:.3} avg {:.3} ({} faults)",
            self.worst_segments,
            self.avg_segments,
            self.worst_bits,
            self.avg_bits,
            self.fault_count
        )?;
        if !self.is_complete() {
            write!(
                f,
                " [incomplete: {} quarantined, {} skipped]",
                self.quarantined, self.skipped
            )?;
        }
        Ok(())
    }
}

/// Computes the fault-tolerance metric of a network: for every single
/// stuck-at fault in the collapsed universe, the fraction of scan segments
/// and scan bits that remain accessible; aggregated as worst case and
/// weighted average.
///
/// # Example
///
/// ```
/// use rsn_core::examples::chain;
/// use rsn_fault::{analyze, HardeningProfile};
///
/// // A flat chain has no redundancy: any data fault kills everything
/// // downstream and upstream (single path), so the worst case is 0.
/// let report = analyze(&chain(4, 8), HardeningProfile::unhardened());
/// assert_eq!(report.worst_segments, 0.0);
/// ```
pub fn analyze(rsn: &Rsn, profile: HardeningProfile) -> FaultToleranceReport {
    analyze_with(rsn, profile, WeightModel::Ports)
}

/// [`analyze`] with an explicit fault-class [`WeightModel`].
pub fn analyze_with(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
) -> FaultToleranceReport {
    let _span = rsn_obs::Span::enter("analyze");
    let faults = fault_universe_weighted(rsn, model);
    let engine = AccessEngine::new(rsn);
    analyze_faults_on(&engine, &faults, profile, 1)
}

/// Computes the metric over an explicit fault list on a prebuilt engine
/// with `threads` workers sharing it (one [`Scratch`] each). Exposed so
/// callers that already hold an [`AccessEngine`] — hardening selection,
/// benchmarks — skip the per-call precomputation entirely.
pub fn analyze_faults_on(
    engine: &AccessEngine<'_>,
    faults: &[Fault],
    profile: HardeningProfile,
    threads: usize,
) -> FaultToleranceReport {
    analyze_faults_on_budget(engine, faults, profile, threads, &Budget::unlimited())
}

/// [`analyze_faults_on`] bounded by a [`Budget`] shared across all
/// workers (their combined work counts against one limit; one work unit
/// per fault).
///
/// Degradation is fail-soft on two axes:
///
/// * **Budget exhaustion** — remaining faults are skipped; the report's
///   aggregates cover the evaluated prefix and
///   [`FaultToleranceReport::skipped`] counts what was left out (also
///   counted into `budget.exhausted`).
/// * **Panic isolation** — a fault whose evaluation panics is caught via
///   `catch_unwind`, quarantined ([`FaultToleranceReport::quarantined`],
///   counter `fault.quarantined`) and the worker continues with a fresh
///   [`Scratch`] instead of poisoning the whole run.
pub fn analyze_faults_on_budget(
    engine: &AccessEngine<'_>,
    faults: &[Fault],
    profile: HardeningProfile,
    threads: usize,
    budget: &Budget,
) -> FaultToleranceReport {
    rsn_obs::counter_add("fault.faults_simulated", faults.len() as u64);
    let start = Instant::now();

    // One chunk per worker; a single chunk (serial case, small universes)
    // runs inline on the calling thread — same code path either way.
    let chunk = faults.len().div_ceil(threads.max(1)).max(1);
    let chunks_spawned = faults.chunks(chunk).count().max(1);
    rsn_obs::counter_add("fault.parallel_chunks", chunks_spawned as u64);
    // Fraction of the available worker slots actually filled this call.
    rsn_obs::gauge_set(
        "fault.parallel_utilization",
        chunks_spawned as f64 / threads.max(1) as f64,
    );

    let partials: Vec<Partial> = if chunks_spawned == 1 {
        vec![partial_over(engine, faults, profile, budget)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|slice| scope.spawn(move || partial_over(engine, slice, profile, budget)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let mut out = Partial::default();
    for p in partials {
        out.sum_segments += p.sum_segments;
        out.sum_bits += p.sum_bits;
        out.total_weight += p.total_weight;
        if p.worst_segments < out.worst_segments {
            out.worst_segments = p.worst_segments;
            out.worst_fault = p.worst_fault;
        }
        out.worst_bits = out.worst_bits.min(p.worst_bits);
        out.quarantined += p.quarantined;
        out.skipped += p.skipped;
    }

    if out.quarantined > 0 {
        rsn_obs::counter_add("fault.quarantined", out.quarantined as u64);
    }
    if out.skipped > 0 {
        rsn_obs::counter_add("fault.skipped", out.skipped as u64);
        rsn_obs::counter_add("budget.exhausted", 1);
    }

    let secs = start.elapsed().as_secs_f64();
    if secs > 0.0 {
        rsn_obs::gauge_set("fault.faults_per_sec", faults.len() as f64 / secs);
    }

    let denom = out.total_weight.max(1) as f64;
    FaultToleranceReport {
        fault_count: faults.len(),
        total_weight: out.total_weight,
        worst_segments: out.worst_segments,
        avg_segments: out.sum_segments / denom,
        worst_bits: out.worst_bits,
        avg_bits: out.sum_bits / denom,
        worst_fault: out.worst_fault,
        quarantined: out.quarantined,
        skipped: out.skipped,
    }
}

/// Folds one fault slice into a [`Partial`] — the single accumulation
/// loop shared by the serial and parallel paths.
fn partial_over(
    engine: &AccessEngine<'_>,
    faults: &[Fault],
    profile: HardeningProfile,
    budget: &Budget,
) -> Partial {
    let rsn = engine.rsn();
    let mut scratch: Scratch = engine.scratch();
    let mut p = Partial::default();
    for (i, fault) in faults.iter().enumerate() {
        if budget.check().is_err() {
            p.skipped += faults.len() - i;
            break;
        }
        let evaluated = catch_unwind(AssertUnwindSafe(|| {
            let effect = effect_of(rsn, fault, profile);
            if effect.is_benign() {
                (1.0, 1.0)
            } else {
                let acc = engine.accessibility(&effect, &mut scratch);
                (acc.segment_fraction(), acc.bit_fraction())
            }
        }));
        let (seg_frac, bit_frac) = match evaluated {
            Ok(fracs) => fracs,
            Err(_) => {
                // The fixed-point may have been left half-done; start the
                // next fault from a clean scratch.
                scratch = engine.scratch();
                p.quarantined += 1;
                continue;
            }
        };
        let w = fault.weight as f64;
        p.sum_segments += seg_frac * w;
        p.sum_bits += bit_frac * w;
        p.total_weight += fault.weight as u64;
        if seg_frac < p.worst_segments {
            p.worst_segments = seg_frac;
            p.worst_fault = Some(*fault);
        }
        p.worst_bits = p.worst_bits.min(bit_frac);
    }
    p
}

/// Multi-threaded version of [`analyze`]: the fault universe is split
/// across `std::thread::available_parallelism` workers sharing one
/// [`AccessEngine`] (one [`Scratch`] per worker). Results are identical
/// to the sequential version (the aggregation is order-insensitive up to
/// the choice of witness `worst_fault`).
pub fn analyze_parallel(rsn: &Rsn, profile: HardeningProfile) -> FaultToleranceReport {
    analyze_parallel_with(rsn, profile, WeightModel::Ports)
}

/// [`analyze_parallel`] with an explicit fault-class [`WeightModel`].
pub fn analyze_parallel_with(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
) -> FaultToleranceReport {
    analyze_parallel_budgeted(rsn, profile, model, &Budget::unlimited())
}

/// [`analyze_parallel_with`] bounded by a [`Budget`] (see
/// [`analyze_faults_on_budget`] for the degradation semantics).
pub fn analyze_parallel_budgeted(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
    budget: &Budget,
) -> FaultToleranceReport {
    let _span = rsn_obs::Span::enter("analyze_parallel");
    let faults = fault_universe_weighted(rsn, model);
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16)
        // No point spawning for universes smaller than a chunk's worth.
        .min(faults.len().div_ceil(64).max(1));
    let engine = AccessEngine::new(rsn);
    analyze_faults_on_budget(&engine, &faults, profile, threads, budget)
}

#[derive(Debug, Clone, Copy)]
struct Partial {
    sum_segments: f64,
    sum_bits: f64,
    total_weight: u64,
    worst_segments: f64,
    worst_bits: f64,
    worst_fault: Option<Fault>,
    quarantined: usize,
    skipped: usize,
}

impl Default for Partial {
    fn default() -> Self {
        Partial {
            sum_segments: 0.0,
            sum_bits: 0.0,
            total_weight: 0,
            worst_segments: 1.0,
            worst_bits: 1.0,
            worst_fault: None,
            quarantined: 0,
            skipped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::by_name;
    use rsn_sib::generate;

    #[test]
    fn chain_worst_case_is_zero() {
        let report = analyze(&chain(3, 4), HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0);
        assert_eq!(report.worst_bits, 0.0);
        assert!(report.worst_fault.is_some());
        assert!(report.avg_segments < 1.0);
        assert!(report.avg_segments > 0.0, "select-sa1 faults are benign");
    }

    #[test]
    fn fig2_average_reflects_partial_redundancy() {
        let report = analyze(&fig2(), HardeningProfile::unhardened());
        // B and C are each avoidable; A and D are single points of failure.
        assert_eq!(report.worst_segments, 0.0);
        assert!(report.avg_segments > 0.3, "{report}");
        assert!(report.avg_segments < 1.0, "{report}");
    }

    #[test]
    fn report_display_mentions_fault_count() {
        let report = analyze(&chain(2, 2), HardeningProfile::unhardened());
        let s = report.to_string();
        assert!(s.contains("faults"), "{s}");
    }

    #[test]
    fn sib_rsn_matches_paper_shape() {
        // Small embedded benchmark: worst case must be a total
        // disconnection (0.00, as in Table I), average in a plausible band.
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let report = analyze(&rsn, HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0, "{report}");
        assert_eq!(report.worst_bits, 0.0);
        assert!(
            report.avg_segments > 0.5 && report.avg_segments < 0.98,
            "{report}"
        );
    }

    #[test]
    fn hardened_profile_improves_average() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let plain = analyze(&rsn, HardeningProfile::unhardened());
        let hard = analyze(&rsn, HardeningProfile::hardened());
        assert!(hard.avg_segments >= plain.avg_segments);
    }

    /// Runs `f` with the default panic hook silenced, so intentional
    /// panics don't spam test output. Serialized: the hook is global.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn zero_budget_skips_all_faults() {
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        let budget = Budget::unlimited().with_work_limit(0);
        let report =
            analyze_faults_on_budget(&engine, &faults, HardeningProfile::unhardened(), 1, &budget);
        assert_eq!(report.skipped, faults.len());
        assert_eq!(report.total_weight, 0, "nothing evaluated");
        assert!(!report.is_complete());
        assert!(report.to_string().contains("incomplete"), "{report}");
    }

    #[test]
    fn partial_budget_keeps_evaluated_prefix() {
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        assert!(faults.len() > 4);
        let engine = AccessEngine::new(&rsn);
        let budget = Budget::unlimited().with_work_limit(4);
        let report =
            analyze_faults_on_budget(&engine, &faults, HardeningProfile::unhardened(), 1, &budget);
        // 4 admitted checks → 4 evaluated, rest skipped; the evaluated
        // prefix aggregates match a run over just that prefix.
        assert_eq!(report.skipped, faults.len() - 4);
        let prefix = analyze_faults_on(&engine, &faults[..4], HardeningProfile::unhardened(), 1);
        assert_eq!(report.total_weight, prefix.total_weight);
        assert_eq!(report.worst_segments, prefix.worst_segments);
        assert_eq!(report.avg_bits, prefix.avg_bits);
    }

    #[test]
    fn panicking_fault_is_quarantined_not_fatal() {
        use rsn_core::NodeId;
        let rsn = fig2();
        let mut faults = crate::fault::fault_universe(&rsn);
        let clean = analyze(&rsn, HardeningProfile::unhardened());
        // A fault pointing at a nonexistent node makes effect_of index out
        // of bounds — exactly the class of bug quarantine must contain.
        let poison = Fault {
            site: crate::fault::FaultSite::SegmentData(NodeId(9999)),
            value: false,
            weight: 1,
        };
        faults.insert(faults.len() / 2, poison);
        let engine = AccessEngine::new(&rsn);
        let report = with_quiet_panics(|| {
            analyze_faults_on_budget(
                &engine,
                &faults,
                HardeningProfile::unhardened(),
                1,
                &Budget::unlimited(),
            )
        });
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.skipped, 0);
        // Every healthy fault was still evaluated; aggregates match the
        // clean run exactly (the poison fault contributes no weight).
        assert_eq!(report.total_weight, clean.total_weight);
        assert_eq!(report.worst_segments, clean.worst_segments);
        assert_eq!(report.avg_segments, clean.avg_segments);
    }

    #[test]
    fn quarantine_works_across_parallel_workers() {
        use rsn_core::NodeId;
        let rsn = fig2();
        let mut faults = crate::fault::fault_universe(&rsn);
        for pos in [0, faults.len() / 2, faults.len()] {
            faults.insert(
                pos,
                Fault {
                    site: crate::fault::FaultSite::SegmentData(NodeId(9999)),
                    value: true,
                    weight: 1,
                },
            );
        }
        let engine = AccessEngine::new(&rsn);
        let report = with_quiet_panics(|| {
            analyze_faults_on_budget(
                &engine,
                &faults,
                HardeningProfile::unhardened(),
                4,
                &Budget::unlimited(),
            )
        });
        assert_eq!(report.quarantined, 3);
        let clean = analyze(&rsn, HardeningProfile::unhardened());
        assert_eq!(report.total_weight, clean.total_weight);
    }

    #[test]
    fn unlimited_budget_report_is_identical_to_unbudgeted() {
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        let plain = analyze_faults_on(&engine, &faults, HardeningProfile::unhardened(), 2);
        let budgeted = analyze_faults_on_budget(
            &engine,
            &faults,
            HardeningProfile::unhardened(),
            2,
            &Budget::unlimited(),
        );
        assert_eq!(plain, budgeted);
        assert!(plain.is_complete());
    }

    #[test]
    fn weights_sum_matches_universe() {
        let rsn = fig2();
        let report = analyze(&rsn, HardeningProfile::unhardened());
        let expected: u64 = crate::fault::fault_universe(&rsn)
            .iter()
            .map(|f| f.weight as u64)
            .sum();
        assert_eq!(report.total_weight, expected);
    }
}
