//! The fault-tolerance metric: worst-case and average accessibility over
//! all single stuck-at faults (paper Sec. III-A, Table I).

use std::fmt;
use std::time::Instant;

use rsn_core::Rsn;

use crate::effect::effect_of;
use crate::engine::{AccessEngine, Scratch};
use crate::fault::{fault_universe_weighted, Fault, WeightModel};

/// Which hardening measures of the fault-tolerant synthesis apply when
/// interpreting fault effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardeningProfile {
    /// Select signals synthesized with two independent assertion paths
    /// (Sec. III-E-2): single select-stem faults are masked.
    pub select_hardened: bool,
}

impl HardeningProfile {
    /// Profile of an original (unhardened) RSN.
    pub fn unhardened() -> Self {
        HardeningProfile {
            select_hardened: false,
        }
    }

    /// Profile of a synthesized fault-tolerant RSN.
    pub fn hardened() -> Self {
        HardeningProfile {
            select_hardened: true,
        }
    }
}

/// Aggregated fault-tolerance metric of an RSN: the Table I accessibility
/// columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceReport {
    /// Number of collapsed fault classes analyzed (both polarities).
    pub fault_count: usize,
    /// Sum of fault weights (port-level site count).
    pub total_weight: u64,
    /// Worst-case fraction of accessible segments over all faults.
    pub worst_segments: f64,
    /// Weighted average fraction of accessible segments.
    pub avg_segments: f64,
    /// Worst-case fraction of accessible scan bits.
    pub worst_bits: f64,
    /// Weighted average fraction of accessible scan bits.
    pub avg_bits: f64,
    /// A fault achieving the worst segment accessibility.
    pub worst_fault: Option<Fault>,
}

impl fmt::Display for FaultToleranceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments worst {:.3} avg {:.3} | bits worst {:.3} avg {:.3} ({} faults)",
            self.worst_segments,
            self.avg_segments,
            self.worst_bits,
            self.avg_bits,
            self.fault_count
        )
    }
}

/// Computes the fault-tolerance metric of a network: for every single
/// stuck-at fault in the collapsed universe, the fraction of scan segments
/// and scan bits that remain accessible; aggregated as worst case and
/// weighted average.
///
/// # Example
///
/// ```
/// use rsn_core::examples::chain;
/// use rsn_fault::{analyze, HardeningProfile};
///
/// // A flat chain has no redundancy: any data fault kills everything
/// // downstream and upstream (single path), so the worst case is 0.
/// let report = analyze(&chain(4, 8), HardeningProfile::unhardened());
/// assert_eq!(report.worst_segments, 0.0);
/// ```
pub fn analyze(rsn: &Rsn, profile: HardeningProfile) -> FaultToleranceReport {
    analyze_with(rsn, profile, WeightModel::Ports)
}

/// [`analyze`] with an explicit fault-class [`WeightModel`].
pub fn analyze_with(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
) -> FaultToleranceReport {
    let _span = rsn_obs::Span::enter("analyze");
    let faults = fault_universe_weighted(rsn, model);
    let engine = AccessEngine::new(rsn);
    analyze_faults_on(&engine, &faults, profile, 1)
}

/// Computes the metric over an explicit fault list on a prebuilt engine
/// with `threads` workers sharing it (one [`Scratch`] each). Exposed so
/// callers that already hold an [`AccessEngine`] — hardening selection,
/// benchmarks — skip the per-call precomputation entirely.
pub fn analyze_faults_on(
    engine: &AccessEngine<'_>,
    faults: &[Fault],
    profile: HardeningProfile,
    threads: usize,
) -> FaultToleranceReport {
    rsn_obs::counter_add("fault.faults_simulated", faults.len() as u64);
    let start = Instant::now();

    // One chunk per worker; a single chunk (serial case, small universes)
    // runs inline on the calling thread — same code path either way.
    let chunk = faults.len().div_ceil(threads.max(1)).max(1);
    let chunks_spawned = faults.chunks(chunk).count().max(1);
    rsn_obs::counter_add("fault.parallel_chunks", chunks_spawned as u64);
    // Fraction of the available worker slots actually filled this call.
    rsn_obs::gauge_set(
        "fault.parallel_utilization",
        chunks_spawned as f64 / threads.max(1) as f64,
    );

    let partials: Vec<Partial> = if chunks_spawned == 1 {
        vec![partial_over(engine, faults, profile)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|slice| scope.spawn(move || partial_over(engine, slice, profile)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let mut out = Partial::default();
    for p in partials {
        out.sum_segments += p.sum_segments;
        out.sum_bits += p.sum_bits;
        out.total_weight += p.total_weight;
        if p.worst_segments < out.worst_segments {
            out.worst_segments = p.worst_segments;
            out.worst_fault = p.worst_fault;
        }
        out.worst_bits = out.worst_bits.min(p.worst_bits);
    }

    let secs = start.elapsed().as_secs_f64();
    if secs > 0.0 {
        rsn_obs::gauge_set("fault.faults_per_sec", faults.len() as f64 / secs);
    }

    let denom = out.total_weight.max(1) as f64;
    FaultToleranceReport {
        fault_count: faults.len(),
        total_weight: out.total_weight,
        worst_segments: out.worst_segments,
        avg_segments: out.sum_segments / denom,
        worst_bits: out.worst_bits,
        avg_bits: out.sum_bits / denom,
        worst_fault: out.worst_fault,
    }
}

/// Folds one fault slice into a [`Partial`] — the single accumulation
/// loop shared by the serial and parallel paths.
fn partial_over(engine: &AccessEngine<'_>, faults: &[Fault], profile: HardeningProfile) -> Partial {
    let rsn = engine.rsn();
    let mut scratch: Scratch = engine.scratch();
    let mut p = Partial::default();
    for fault in faults {
        let effect = effect_of(rsn, fault, profile);
        let (seg_frac, bit_frac) = if effect.is_benign() {
            (1.0, 1.0)
        } else {
            let acc = engine.accessibility(&effect, &mut scratch);
            (acc.segment_fraction(), acc.bit_fraction())
        };
        let w = fault.weight as f64;
        p.sum_segments += seg_frac * w;
        p.sum_bits += bit_frac * w;
        p.total_weight += fault.weight as u64;
        if seg_frac < p.worst_segments {
            p.worst_segments = seg_frac;
            p.worst_fault = Some(*fault);
        }
        p.worst_bits = p.worst_bits.min(bit_frac);
    }
    p
}

/// Multi-threaded version of [`analyze`]: the fault universe is split
/// across `std::thread::available_parallelism` workers sharing one
/// [`AccessEngine`] (one [`Scratch`] per worker). Results are identical
/// to the sequential version (the aggregation is order-insensitive up to
/// the choice of witness `worst_fault`).
pub fn analyze_parallel(rsn: &Rsn, profile: HardeningProfile) -> FaultToleranceReport {
    analyze_parallel_with(rsn, profile, WeightModel::Ports)
}

/// [`analyze_parallel`] with an explicit fault-class [`WeightModel`].
pub fn analyze_parallel_with(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
) -> FaultToleranceReport {
    let _span = rsn_obs::Span::enter("analyze_parallel");
    let faults = fault_universe_weighted(rsn, model);
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16)
        // No point spawning for universes smaller than a chunk's worth.
        .min(faults.len().div_ceil(64).max(1));
    let engine = AccessEngine::new(rsn);
    analyze_faults_on(&engine, &faults, profile, threads)
}

#[derive(Debug, Clone, Copy)]
struct Partial {
    sum_segments: f64,
    sum_bits: f64,
    total_weight: u64,
    worst_segments: f64,
    worst_bits: f64,
    worst_fault: Option<Fault>,
}

impl Default for Partial {
    fn default() -> Self {
        Partial {
            sum_segments: 0.0,
            sum_bits: 0.0,
            total_weight: 0,
            worst_segments: 1.0,
            worst_bits: 1.0,
            worst_fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::by_name;
    use rsn_sib::generate;

    #[test]
    fn chain_worst_case_is_zero() {
        let report = analyze(&chain(3, 4), HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0);
        assert_eq!(report.worst_bits, 0.0);
        assert!(report.worst_fault.is_some());
        assert!(report.avg_segments < 1.0);
        assert!(report.avg_segments > 0.0, "select-sa1 faults are benign");
    }

    #[test]
    fn fig2_average_reflects_partial_redundancy() {
        let report = analyze(&fig2(), HardeningProfile::unhardened());
        // B and C are each avoidable; A and D are single points of failure.
        assert_eq!(report.worst_segments, 0.0);
        assert!(report.avg_segments > 0.3, "{report}");
        assert!(report.avg_segments < 1.0, "{report}");
    }

    #[test]
    fn report_display_mentions_fault_count() {
        let report = analyze(&chain(2, 2), HardeningProfile::unhardened());
        let s = report.to_string();
        assert!(s.contains("faults"), "{s}");
    }

    #[test]
    fn sib_rsn_matches_paper_shape() {
        // Small embedded benchmark: worst case must be a total
        // disconnection (0.00, as in Table I), average in a plausible band.
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let report = analyze(&rsn, HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0, "{report}");
        assert_eq!(report.worst_bits, 0.0);
        assert!(
            report.avg_segments > 0.5 && report.avg_segments < 0.98,
            "{report}"
        );
    }

    #[test]
    fn hardened_profile_improves_average() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let plain = analyze(&rsn, HardeningProfile::unhardened());
        let hard = analyze(&rsn, HardeningProfile::hardened());
        assert!(hard.avg_segments >= plain.avg_segments);
    }

    #[test]
    fn weights_sum_matches_universe() {
        let rsn = fig2();
        let report = analyze(&rsn, HardeningProfile::unhardened());
        let expected: u64 = crate::fault::fault_universe(&rsn)
            .iter()
            .map(|f| f.weight as u64)
            .sum();
        assert_eq!(report.total_weight, expected);
    }
}
