//! The fault-tolerance metric: worst-case and average accessibility over
//! all single stuck-at faults (paper Sec. III-A, Table I).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use rsn_budget::Budget;
use rsn_core::Rsn;

use crate::collapse::{ClassKind, FaultClasses};
use crate::engine::AccessEngine;
use crate::fault::{fault_universe_weighted, Fault, WeightModel};
use crate::sweep::run_stealing;

/// Which hardening measures of the fault-tolerant synthesis apply when
/// interpreting fault effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardeningProfile {
    /// Select signals synthesized with two independent assertion paths
    /// (Sec. III-E-2): single select-stem faults are masked.
    pub select_hardened: bool,
}

impl HardeningProfile {
    /// Profile of an original (unhardened) RSN.
    pub fn unhardened() -> Self {
        HardeningProfile {
            select_hardened: false,
        }
    }

    /// Profile of a synthesized fault-tolerant RSN.
    pub fn hardened() -> Self {
        HardeningProfile {
            select_hardened: true,
        }
    }
}

/// Aggregated fault-tolerance metric of an RSN: the Table I accessibility
/// columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceReport {
    /// Number of faults in the analyzed universe (both polarities).
    pub fault_count: usize,
    /// Number of equivalence classes actually evaluated (one
    /// representative each; equals `fault_count` with collapsing off).
    pub classes: usize,
    /// `fault_count / classes` — never below 1.0.
    pub collapse_ratio: f64,
    /// Sum of fault weights (port-level site count).
    pub total_weight: u64,
    /// Worst-case fraction of accessible segments over all faults.
    pub worst_segments: f64,
    /// Weighted average fraction of accessible segments.
    pub avg_segments: f64,
    /// Worst-case fraction of accessible scan bits.
    pub worst_bits: f64,
    /// Weighted average fraction of accessible scan bits.
    pub avg_bits: f64,
    /// A fault achieving the worst segment accessibility.
    pub worst_fault: Option<Fault>,
    /// Faults whose evaluation panicked and was isolated; their weight is
    /// excluded from every aggregate.
    pub quarantined: usize,
    /// Faults left unevaluated because the [`Budget`] ran out; their
    /// weight is excluded from every aggregate.
    pub skipped: usize,
}

impl FaultToleranceReport {
    /// `true` if every fault in the universe was actually evaluated
    /// (nothing quarantined, nothing budget-skipped).
    pub fn is_complete(&self) -> bool {
        self.quarantined == 0 && self.skipped == 0
    }
}

impl fmt::Display for FaultToleranceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments worst {:.3} avg {:.3} | bits worst {:.3} avg {:.3} ({} faults)",
            self.worst_segments,
            self.avg_segments,
            self.worst_bits,
            self.avg_bits,
            self.fault_count
        )?;
        if !self.is_complete() {
            write!(
                f,
                " [incomplete: {} quarantined, {} skipped]",
                self.quarantined, self.skipped
            )?;
        }
        Ok(())
    }
}

/// Computes the fault-tolerance metric of a network: for every single
/// stuck-at fault in the collapsed universe, the fraction of scan segments
/// and scan bits that remain accessible; aggregated as worst case and
/// weighted average.
///
/// # Example
///
/// ```
/// use rsn_core::examples::chain;
/// use rsn_fault::{analyze, HardeningProfile};
///
/// // A flat chain has no redundancy: any data fault kills everything
/// // downstream and upstream (single path), so the worst case is 0.
/// let report = analyze(&chain(4, 8), HardeningProfile::unhardened());
/// assert_eq!(report.worst_segments, 0.0);
/// ```
pub fn analyze(rsn: &Rsn, profile: HardeningProfile) -> FaultToleranceReport {
    analyze_with(rsn, profile, WeightModel::Ports)
}

/// [`analyze`] with an explicit fault-class [`WeightModel`].
pub fn analyze_with(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
) -> FaultToleranceReport {
    let _span = rsn_obs::Span::enter("analyze");
    let faults = fault_universe_weighted(rsn, model);
    let engine = AccessEngine::new(rsn);
    analyze_faults_on(&engine, &faults, profile, 1)
}

/// Computes the metric over an explicit fault list on a prebuilt engine
/// with `threads` workers sharing it (one [`Scratch`](crate::Scratch)
/// each). Exposed so
/// callers that already hold an [`AccessEngine`] — hardening selection,
/// benchmarks — skip the per-call precomputation entirely.
pub fn analyze_faults_on(
    engine: &AccessEngine,
    faults: &[Fault],
    profile: HardeningProfile,
    threads: usize,
) -> FaultToleranceReport {
    analyze_faults_on_budget(engine, faults, profile, threads, &Budget::unlimited())
}

/// [`analyze_faults_on`] bounded by a [`Budget`] shared across all
/// workers (their combined work counts against one limit; one work unit
/// per fault, charged per class before its representative runs).
///
/// The universe is first partitioned into equivalence classes
/// ([`FaultClasses::build`]) and one representative per class is
/// evaluated by a work-stealing scheduler (workers claim small batches
/// from a shared cursor — the crate-private `sweep` module). Results are
/// then
/// expanded back over class members *serially in original fault order*,
/// which makes every aggregate — including the f64 summation order and
/// the `worst_fault` witness — bit-identical to an uncollapsed
/// single-threaded sweep, independent of thread count.
///
/// Degradation is fail-soft on two axes:
///
/// * **Budget exhaustion** — classes whose charge is refused are skipped
///   whole (no half-evaluated class); every member counts into
///   [`FaultToleranceReport::skipped`] (also counted into
///   `budget.exhausted`). Aggregates cover the evaluated classes only.
/// * **Panic isolation** — a class whose evaluation panics is caught via
///   `catch_unwind`, all members are quarantined
///   ([`FaultToleranceReport::quarantined`], counter
///   `fault.quarantined`) and the worker continues with a fresh
///   [`crate::Scratch`] instead of poisoning the whole run.
pub fn analyze_faults_on_budget(
    engine: &AccessEngine,
    faults: &[Fault],
    profile: HardeningProfile,
    threads: usize,
    budget: &Budget,
) -> FaultToleranceReport {
    let classes = FaultClasses::build(engine.rsn(), faults, profile);
    analyze_classes_on_budget(engine, faults, &classes, threads, budget)
}

/// [`analyze_faults_on_budget`] without fault collapsing: one singleton
/// class per fault, preserving the legacy one-unit-per-fault budget
/// prefix semantics exactly. The `--no-collapse` escape hatch.
pub fn analyze_faults_on_budget_uncollapsed(
    engine: &AccessEngine,
    faults: &[Fault],
    profile: HardeningProfile,
    threads: usize,
    budget: &Budget,
) -> FaultToleranceReport {
    let classes = FaultClasses::uncollapsed(engine.rsn(), faults, profile);
    analyze_classes_on_budget(engine, faults, &classes, threads, budget)
}

/// Per-class sweep outcome, expanded over members during aggregation.
#[derive(Debug, Clone, Copy)]
enum Outcome {
    Evaluated(f64, f64),
    Quarantined,
    Skipped,
}

/// Evaluates a prebuilt class partition over `faults` and aggregates.
pub fn analyze_classes_on_budget(
    engine: &AccessEngine,
    faults: &[Fault],
    classes: &FaultClasses,
    threads: usize,
    budget: &Budget,
) -> FaultToleranceReport {
    assert_eq!(
        classes.fault_count(),
        faults.len(),
        "class partition must cover the fault slice"
    );
    // Chaos failpoint: injected errors / budget exhaustion cancel the
    // budget up front, so every class reports as skipped and the report
    // comes back incomplete — degraded, never silently wrong.
    if rsn_fail::eval("fault.sweep").is_some() {
        budget.cancel();
    }
    rsn_obs::counter_add("fault.faults_simulated", faults.len() as u64);
    rsn_obs::counter_add("fault.classes_evaluated", classes.len() as u64);
    rsn_obs::gauge_set("fault.collapse_ratio", classes.collapse_ratio());
    let start = Instant::now();

    let outcomes: Vec<Outcome> = run_stealing(
        classes.len(),
        threads,
        || engine.scratch(),
        |scratch, ci| {
            let class = &classes.classes()[ci];
            // One budget unit per member: a skipped class accounts for
            // exactly the faults it represents, never a partial class.
            if budget.spend(class.members.len() as u64).is_err() {
                return Outcome::Skipped;
            }
            match &class.kind {
                ClassKind::Benign => Outcome::Evaluated(1.0, 1.0),
                ClassKind::Poison => {
                    rsn_obs::trace_instant("quarantine");
                    Outcome::Quarantined
                }
                ClassKind::Effect(effect) => {
                    let eval_start = Instant::now();
                    let evaluated = catch_unwind(AssertUnwindSafe(|| {
                        let acc = engine.accessibility(effect, scratch);
                        (acc.segment_fraction(), acc.bit_fraction())
                    }));
                    rsn_obs::hist_record(
                        "fault.class_eval_ns",
                        eval_start.elapsed().as_nanos() as u64,
                    );
                    match evaluated {
                        Ok((seg, bits)) => Outcome::Evaluated(seg, bits),
                        Err(_) => {
                            // The fixed point may have been left half-done;
                            // start the next class from a clean scratch.
                            *scratch = engine.scratch();
                            rsn_obs::trace_instant("quarantine");
                            Outcome::Quarantined
                        }
                    }
                }
            }
        },
    );

    // Serial expansion in original fault order: f64 sums and the worst
    // witness are deterministic and thread-count independent.
    let mut p = Partial::default();
    for (i, fault) in faults.iter().enumerate() {
        match outcomes[classes.class_of(i)] {
            Outcome::Skipped => p.skipped += 1,
            Outcome::Quarantined => p.quarantined += 1,
            Outcome::Evaluated(seg_frac, bit_frac) => {
                let w = fault.weight as f64;
                p.sum_segments += seg_frac * w;
                p.sum_bits += bit_frac * w;
                p.total_weight += fault.weight as u64;
                if seg_frac < p.worst_segments {
                    p.worst_segments = seg_frac;
                    p.worst_fault = Some(*fault);
                }
                p.worst_bits = p.worst_bits.min(bit_frac);
            }
        }
    }

    if p.quarantined > 0 {
        rsn_obs::counter_add("fault.quarantined", p.quarantined as u64);
    }
    // Attribution mirrors the worker-side accounting: one budget unit
    // per fault actually charged (skipped classes never spent theirs).
    rsn_obs::counter_add(
        "budget.spent{engine=fault}",
        (faults.len() - p.skipped) as u64,
    );
    if p.skipped > 0 {
        rsn_obs::counter_add("fault.skipped", p.skipped as u64);
        rsn_obs::counter_add("budget.exhausted", 1);
        let reason = budget.exhausted().map_or("work_limit", |r| r.as_str());
        rsn_obs::record_budget_trip("fault", reason);
    }

    let secs = start.elapsed().as_secs_f64();
    if secs > 0.0 {
        rsn_obs::gauge_set("fault.faults_per_sec", faults.len() as f64 / secs);
    }

    let denom = p.total_weight.max(1) as f64;
    FaultToleranceReport {
        fault_count: faults.len(),
        classes: classes.len(),
        collapse_ratio: classes.collapse_ratio(),
        total_weight: p.total_weight,
        worst_segments: p.worst_segments,
        avg_segments: p.sum_segments / denom,
        worst_bits: p.worst_bits,
        avg_bits: p.sum_bits / denom,
        worst_fault: p.worst_fault,
        quarantined: p.quarantined,
        skipped: p.skipped,
    }
}

/// Multi-threaded version of [`analyze`]: up to
/// [`rsn_budget::default_threads`] (the `RSN_THREADS` env knob) workers
/// share one
/// [`AccessEngine`] (one [`crate::Scratch`] per worker) and steal class
/// batches from a shared cursor. Reports are bit-identical to the
/// sequential version, including the `worst_fault` witness.
pub fn analyze_parallel(rsn: &Rsn, profile: HardeningProfile) -> FaultToleranceReport {
    analyze_parallel_with(rsn, profile, WeightModel::Ports)
}

/// [`analyze_parallel`] with an explicit fault-class [`WeightModel`].
pub fn analyze_parallel_with(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
) -> FaultToleranceReport {
    analyze_parallel_budgeted(rsn, profile, model, &Budget::unlimited())
}

/// [`analyze_parallel_with`] bounded by a [`Budget`] (see
/// [`analyze_faults_on_budget`] for the degradation semantics).
pub fn analyze_parallel_budgeted(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
    budget: &Budget,
) -> FaultToleranceReport {
    analyze_parallel_impl(rsn, profile, model, budget, true)
}

/// [`analyze_parallel_budgeted`] with fault collapsing switched off —
/// every fault evaluated individually (`--no-collapse` escape hatch).
pub fn analyze_parallel_budgeted_uncollapsed(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
    budget: &Budget,
) -> FaultToleranceReport {
    analyze_parallel_impl(rsn, profile, model, budget, false)
}

fn analyze_parallel_impl(
    rsn: &Rsn,
    profile: HardeningProfile,
    model: WeightModel,
    budget: &Budget,
    collapse: bool,
) -> FaultToleranceReport {
    let _span = rsn_obs::Span::enter("analyze_parallel");
    let faults = fault_universe_weighted(rsn, model);
    let threads = rsn_budget::default_threads().min(16);
    let engine = AccessEngine::new(rsn);
    if collapse {
        analyze_faults_on_budget(&engine, &faults, profile, threads, budget)
    } else {
        analyze_faults_on_budget_uncollapsed(&engine, &faults, profile, threads, budget)
    }
}

#[derive(Debug, Clone, Copy)]
struct Partial {
    sum_segments: f64,
    sum_bits: f64,
    total_weight: u64,
    worst_segments: f64,
    worst_bits: f64,
    worst_fault: Option<Fault>,
    quarantined: usize,
    skipped: usize,
}

impl Default for Partial {
    fn default() -> Self {
        Partial {
            sum_segments: 0.0,
            sum_bits: 0.0,
            total_weight: 0,
            worst_segments: 1.0,
            worst_bits: 1.0,
            worst_fault: None,
            quarantined: 0,
            skipped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};
    use rsn_itc02::by_name;
    use rsn_sib::generate;

    #[test]
    fn chain_worst_case_is_zero() {
        let report = analyze(&chain(3, 4), HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0);
        assert_eq!(report.worst_bits, 0.0);
        assert!(report.worst_fault.is_some());
        assert!(report.avg_segments < 1.0);
        assert!(report.avg_segments > 0.0, "select-sa1 faults are benign");
    }

    #[test]
    fn fig2_average_reflects_partial_redundancy() {
        let report = analyze(&fig2(), HardeningProfile::unhardened());
        // B and C are each avoidable; A and D are single points of failure.
        assert_eq!(report.worst_segments, 0.0);
        assert!(report.avg_segments > 0.3, "{report}");
        assert!(report.avg_segments < 1.0, "{report}");
    }

    #[test]
    fn report_display_mentions_fault_count() {
        let report = analyze(&chain(2, 2), HardeningProfile::unhardened());
        let s = report.to_string();
        assert!(s.contains("faults"), "{s}");
    }

    #[test]
    fn sib_rsn_matches_paper_shape() {
        // Small embedded benchmark: worst case must be a total
        // disconnection (0.00, as in Table I), average in a plausible band.
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let report = analyze(&rsn, HardeningProfile::unhardened());
        assert_eq!(report.worst_segments, 0.0, "{report}");
        assert_eq!(report.worst_bits, 0.0);
        assert!(
            report.avg_segments > 0.5 && report.avg_segments < 0.98,
            "{report}"
        );
    }

    #[test]
    fn hardened_profile_improves_average() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let plain = analyze(&rsn, HardeningProfile::unhardened());
        let hard = analyze(&rsn, HardeningProfile::hardened());
        assert!(hard.avg_segments >= plain.avg_segments);
    }

    /// Runs `f` with the default panic hook silenced, so intentional
    /// panics don't spam test output. Serialized: the hook is global.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn zero_budget_skips_all_faults() {
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        let budget = Budget::unlimited().with_work_limit(0);
        let report =
            analyze_faults_on_budget(&engine, &faults, HardeningProfile::unhardened(), 1, &budget);
        assert_eq!(report.skipped, faults.len());
        assert_eq!(report.total_weight, 0, "nothing evaluated");
        assert!(!report.is_complete());
        assert!(report.to_string().contains("incomplete"), "{report}");
    }

    #[test]
    fn partial_budget_keeps_evaluated_prefix() {
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        assert!(faults.len() > 4);
        let engine = AccessEngine::new(&rsn);
        let budget = Budget::unlimited().with_work_limit(4);
        // Uncollapsed: one unit per fault, so exactly the first 4 faults
        // are admitted and the rest skipped.
        let report = analyze_faults_on_budget_uncollapsed(
            &engine,
            &faults,
            HardeningProfile::unhardened(),
            1,
            &budget,
        );
        // 4 admitted checks → 4 evaluated, rest skipped; the evaluated
        // prefix aggregates match a run over just that prefix.
        assert_eq!(report.skipped, faults.len() - 4);
        let prefix = analyze_faults_on(&engine, &faults[..4], HardeningProfile::unhardened(), 1);
        assert_eq!(report.total_weight, prefix.total_weight);
        assert_eq!(report.worst_segments, prefix.worst_segments);
        assert_eq!(report.avg_bits, prefix.avg_bits);
    }

    #[test]
    fn one_unit_budget_mid_sweep_counts_skips_per_class() {
        // With collapsing on, budget is charged per class (all members at
        // once). Simulate the charge sequence in class-index order — the
        // single-threaded scheduler claims classes in exactly that order —
        // and check the report's skip count matches to the fault.
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        let classes = FaultClasses::build(&rsn, &faults, HardeningProfile::unhardened());
        assert!(classes.len() > 1);
        let mut left: i64 = 1;
        let mut expect_skipped = 0usize;
        let mut expect_weight = 0u64;
        for class in classes.classes() {
            let cost = class.members.len() as i64;
            if left >= cost {
                left -= cost;
                for &m in &class.members {
                    expect_weight += faults[m as usize].weight as u64;
                }
            } else {
                left = 0; // a refused charge latches the budget
                expect_skipped += class.members.len();
            }
        }
        let budget = Budget::unlimited().with_work_limit(1);
        let report =
            analyze_faults_on_budget(&engine, &faults, HardeningProfile::unhardened(), 1, &budget);
        assert_eq!(report.skipped, expect_skipped);
        assert!(report.skipped > 0, "1 unit cannot cover fig2");
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.total_weight, expect_weight);
    }

    #[test]
    fn thread_count_does_not_change_any_report_bit() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        let serial = analyze_faults_on(&engine, &faults, HardeningProfile::unhardened(), 1);
        let parallel = analyze_faults_on(&engine, &faults, HardeningProfile::unhardened(), 4);
        // PartialEq compares every f64 exactly: serial re-aggregation in
        // fault order makes the sweep bit-identical at any thread count.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn collapse_matches_uncollapsed_exactly() {
        let soc = by_name("q12710").expect("embedded");
        let rsn = generate(&soc).expect("generate");
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        for profile in [HardeningProfile::unhardened(), HardeningProfile::hardened()] {
            let collapsed = analyze_faults_on(&engine, &faults, profile, 1);
            let reference = analyze_faults_on_budget_uncollapsed(
                &engine,
                &faults,
                profile,
                1,
                &Budget::unlimited(),
            );
            assert!(collapsed.collapse_ratio > 1.0, "{collapsed:?}");
            assert!(collapsed.classes < faults.len());
            // Everything except the class bookkeeping must be bitwise
            // identical.
            assert_eq!(collapsed.worst_segments, reference.worst_segments);
            assert_eq!(collapsed.avg_segments, reference.avg_segments);
            assert_eq!(collapsed.worst_bits, reference.worst_bits);
            assert_eq!(collapsed.avg_bits, reference.avg_bits);
            assert_eq!(collapsed.total_weight, reference.total_weight);
            assert_eq!(collapsed.worst_fault, reference.worst_fault);
        }
    }

    #[test]
    fn panicking_fault_is_quarantined_not_fatal() {
        use rsn_core::NodeId;
        let rsn = fig2();
        let mut faults = crate::fault::fault_universe(&rsn);
        let clean = analyze(&rsn, HardeningProfile::unhardened());
        // A fault pointing at a nonexistent node makes effect_of index out
        // of bounds — exactly the class of bug quarantine must contain.
        let poison = Fault {
            site: crate::fault::FaultSite::SegmentData(NodeId(9999)),
            value: false,
            weight: 1,
        };
        faults.insert(faults.len() / 2, poison);
        let engine = AccessEngine::new(&rsn);
        let report = with_quiet_panics(|| {
            analyze_faults_on_budget(
                &engine,
                &faults,
                HardeningProfile::unhardened(),
                1,
                &Budget::unlimited(),
            )
        });
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.skipped, 0);
        // Every healthy fault was still evaluated; aggregates match the
        // clean run exactly (the poison fault contributes no weight).
        assert_eq!(report.total_weight, clean.total_weight);
        assert_eq!(report.worst_segments, clean.worst_segments);
        assert_eq!(report.avg_segments, clean.avg_segments);
    }

    #[test]
    fn quarantine_works_across_parallel_workers() {
        use rsn_core::NodeId;
        let rsn = fig2();
        let mut faults = crate::fault::fault_universe(&rsn);
        for pos in [0, faults.len() / 2, faults.len()] {
            faults.insert(
                pos,
                Fault {
                    site: crate::fault::FaultSite::SegmentData(NodeId(9999)),
                    value: true,
                    weight: 1,
                },
            );
        }
        let engine = AccessEngine::new(&rsn);
        let report = with_quiet_panics(|| {
            analyze_faults_on_budget(
                &engine,
                &faults,
                HardeningProfile::unhardened(),
                4,
                &Budget::unlimited(),
            )
        });
        assert_eq!(report.quarantined, 3);
        let clean = analyze(&rsn, HardeningProfile::unhardened());
        assert_eq!(report.total_weight, clean.total_weight);
    }

    #[test]
    fn unlimited_budget_report_is_identical_to_unbudgeted() {
        let rsn = fig2();
        let faults = crate::fault::fault_universe(&rsn);
        let engine = AccessEngine::new(&rsn);
        let plain = analyze_faults_on(&engine, &faults, HardeningProfile::unhardened(), 2);
        let budgeted = analyze_faults_on_budget(
            &engine,
            &faults,
            HardeningProfile::unhardened(),
            2,
            &Budget::unlimited(),
        );
        assert_eq!(plain, budgeted);
        assert!(plain.is_complete());
    }

    #[test]
    fn weights_sum_matches_universe() {
        let rsn = fig2();
        let report = analyze(&rsn, HardeningProfile::unhardened());
        let expected: u64 = crate::fault::fault_universe(&rsn)
            .iter()
            .map(|f| f.weight as u64)
            .sum();
        assert_eq!(report.total_weight, expected);
    }
}
