//! The single stuck-at fault universe of an RSN.
//!
//! Following the paper (Sec. III-A), faults are considered "at all scan
//! segment, register and multiplexer ports and at all logic gates that fan
//! out into multiple ports". Physical fault sites with identical effect on
//! scan-segment accessibility are collapsed into one representative per
//! site class and stuck value; the per-class `weight` records how many
//! port-level sites the class represents so averages can reproduce the
//! paper's per-fault weighting.

use std::fmt;

use rsn_core::{NodeId, NodeKind, Rsn};

/// A physical location class where a stuck-at fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The scan data path through a segment: its scan-in/scan-out ports and
    /// shift register cells. Any such fault corrupts all data shifted
    /// through the segment.
    SegmentData(NodeId),
    /// The select port / select net stem of a segment.
    SegmentSelect(NodeId),
    /// A shadow register cell (or its data-output port) of a segment. For
    /// control segments this forces the driven multiplexer address; for
    /// instrument segments it makes reliable write access impossible.
    SegmentShadow(NodeId),
    /// A data input port of a multiplexer (port index given).
    MuxInput(NodeId, usize),
    /// The data output port of a multiplexer.
    MuxOutput(NodeId),
    /// The (possibly TMR-hardened) address net of a multiplexer.
    MuxAddress(NodeId),
    /// A primary or secondary scan-in port.
    ScanInPort(NodeId),
    /// A primary or secondary scan-out port.
    ScanOutPort(NodeId),
}

impl FaultSite {
    /// The network node the fault is attached to.
    pub fn node(self) -> NodeId {
        match self {
            FaultSite::SegmentData(n)
            | FaultSite::SegmentSelect(n)
            | FaultSite::SegmentShadow(n)
            | FaultSite::MuxInput(n, _)
            | FaultSite::MuxOutput(n)
            | FaultSite::MuxAddress(n)
            | FaultSite::ScanInPort(n)
            | FaultSite::ScanOutPort(n) => n,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::SegmentData(n) => write!(f, "data({n})"),
            FaultSite::SegmentSelect(n) => write!(f, "select({n})"),
            FaultSite::SegmentShadow(n) => write!(f, "shadow({n})"),
            FaultSite::MuxInput(n, k) => write!(f, "mux_in({n},{k})"),
            FaultSite::MuxOutput(n) => write!(f, "mux_out({n})"),
            FaultSite::MuxAddress(n) => write!(f, "mux_addr({n})"),
            FaultSite::ScanInPort(n) => write!(f, "scan_in({n})"),
            FaultSite::ScanOutPort(n) => write!(f, "scan_out({n})"),
        }
    }
}

/// A single stuck-at fault: a site class stuck at `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The stuck value (stuck-at-0 or stuck-at-1).
    pub value: bool,
    /// Number of port-level fault sites this class represents (used as the
    /// weight in metric averages).
    pub weight: u32,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.site, u8::from(self.value))
    }
}

/// How collapsed fault classes are weighted in metric averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightModel {
    /// One unit per *port-level* site: a segment's data class counts its
    /// scan-in and scan-out ports (weight 2), registers one port each.
    #[default]
    Ports,
    /// One unit per *cell-level* site: a segment's data class counts every
    /// shift-register cell plus the two scan ports; shadow classes count
    /// every shadow cell. Large registers then dominate the average, as
    /// they do physically.
    Cells,
}

/// Enumerates the collapsed stuck-at fault universe of a network.
///
/// Per segment: data path, select stem and, if present, shadow register.
/// Per multiplexer: each data input, the output, and the address net. Per
/// scan port: the port itself. Each site appears twice (stuck-at 0 and 1);
/// class weights follow the [`WeightModel`].
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::fault_universe;
///
/// let rsn = fig2();
/// let faults = fault_universe(&rsn);
/// // 4 segments × 3 sites + 1 mux × 4 sites + 2 ports, each sa0+sa1.
/// assert_eq!(faults.len(), 2 * (4 * 3 + 4 + 2));
/// ```
pub fn fault_universe(rsn: &Rsn) -> Vec<Fault> {
    fault_universe_weighted(rsn, WeightModel::Ports)
}

/// [`fault_universe`] with an explicit weight model.
pub fn fault_universe_weighted(rsn: &Rsn, model: WeightModel) -> Vec<Fault> {
    let mut out = Vec::new();
    let mut push = |site: FaultSite, weight: u32| {
        out.push(Fault {
            site,
            value: false,
            weight,
        });
        out.push(Fault {
            site,
            value: true,
            weight,
        });
    };
    for id in rsn.node_ids() {
        match rsn.node(id).kind() {
            NodeKind::Segment(s) => {
                let data_w = match model {
                    WeightModel::Ports => 2,
                    WeightModel::Cells => s.length + 2,
                };
                let shadow_w = match model {
                    WeightModel::Ports => 1,
                    WeightModel::Cells => s.length,
                };
                push(FaultSite::SegmentData(id), data_w);
                push(FaultSite::SegmentSelect(id), 1);
                if s.has_shadow {
                    push(FaultSite::SegmentShadow(id), shadow_w);
                }
            }
            NodeKind::Mux(m) => {
                for k in 0..m.inputs.len() {
                    push(FaultSite::MuxInput(id, k), 1);
                }
                push(FaultSite::MuxOutput(id), 1);
                push(FaultSite::MuxAddress(id), 1);
            }
            NodeKind::ScanIn => push(FaultSite::ScanInPort(id), 1),
            NodeKind::ScanOut => push(FaultSite::ScanOutPort(id), 1),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};

    #[test]
    fn universe_counts_for_fig2() {
        let rsn = fig2();
        let faults = fault_universe(&rsn);
        assert_eq!(faults.len(), 2 * (4 * 3 + 4 + 2));
        // Every fault appears in both polarities.
        let sa0 = faults.iter().filter(|f| !f.value).count();
        assert_eq!(sa0 * 2, faults.len());
    }

    #[test]
    fn chain_universe_has_no_mux_faults() {
        let rsn = chain(3, 4);
        let faults = fault_universe(&rsn);
        assert!(faults
            .iter()
            .all(|f| !matches!(f.site, FaultSite::MuxInput(..) | FaultSite::MuxOutput(_))));
        // 3 segments × 3 sites + 2 ports, both polarities.
        assert_eq!(faults.len(), 2 * (3 * 3 + 2));
    }

    #[test]
    fn weights_reflect_port_multiplicity() {
        let rsn = fig2();
        for f in fault_universe(&rsn) {
            match f.site {
                FaultSite::SegmentData(_) => assert_eq!(f.weight, 2),
                _ => assert_eq!(f.weight, 1),
            }
        }
    }

    #[test]
    fn display_formats() {
        let f = Fault {
            site: FaultSite::MuxInput(NodeId(3), 1),
            value: true,
            weight: 1,
        };
        assert_eq!(f.to_string(), "mux_in(n3,1)/sa1");
    }
}
