//! Multiple-fault analysis: accessibility under *pairs* of stuck-at
//! faults.
//!
//! The paper scopes its metric to single stuck-at faults; the synthesized
//! networks guarantee at most one lost segment per fault. A natural
//! extension question — posed but not evaluated in the paper — is how
//! gracefully the fault-tolerant structure degrades under a *second*
//! fault. This module combines two fault effects and evaluates the same
//! accessibility engine, with deterministic sampling to keep the O(F²)
//! pair space tractable.

use rsn_core::Rsn;

use crate::effect::{effect_of, FaultEffect};
use crate::engine::AccessEngine;
use crate::fault::{fault_universe, Fault};
use crate::metric::HardeningProfile;
use crate::sweep::run_stealing;

/// Combines two fault effects into one (union of corruptions and
/// forcings; the first fault's stuck value wins for dirty-write modeling —
/// a documented approximation, pessimistic for mixed-polarity pairs).
pub fn combine_effects(a: &FaultEffect, b: &FaultEffect) -> FaultEffect {
    let mut out = a.clone();
    out.corrupt_nodes.extend(b.corrupt_nodes.iter().copied());
    out.corrupt_nodes.sort_unstable();
    out.corrupt_nodes.dedup();
    out.corrupt_mux_inputs
        .extend(b.corrupt_mux_inputs.iter().copied());
    out.corrupt_mux_inputs.sort_unstable();
    out.corrupt_mux_inputs.dedup();
    for (&k, &v) in &b.forced_bits {
        out.forced_bits.entry(k).or_insert(v);
    }
    for (&k, &v) in &b.forced_mux {
        out.forced_mux.entry(k).or_insert(v);
    }
    out.local_loss.extend(b.local_loss.iter().copied());
    out.local_loss.sort_unstable();
    out.local_loss.dedup();
    if out.stuck.is_none() {
        out.stuck = b.stuck;
    }
    out
}

/// Result of a sampled double-fault study.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleFaultReport {
    /// Number of fault pairs evaluated.
    pub pairs: usize,
    /// Worst-case fraction of accessible segments over the sample.
    pub worst_segments: f64,
    /// Mean fraction of accessible segments over the sample.
    pub avg_segments: f64,
    /// The worst-case pair, if any pair was evaluated.
    pub worst_pair: Option<(Fault, Fault)>,
    /// Histogram of lost-segment counts (index = segments lost, capped).
    pub lost_histogram: Vec<usize>,
}

/// Evaluates a deterministic sample of fault pairs: every `stride`-th pair
/// of the cross product in a fixed interleaving.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::multi::analyze_double_sampled;
/// use rsn_fault::HardeningProfile;
///
/// let report = analyze_double_sampled(&fig2(), HardeningProfile::unhardened(), 7);
/// assert!(report.pairs > 0);
/// assert!(report.worst_segments <= report.avg_segments);
/// ```
pub fn analyze_double_sampled(
    rsn: &Rsn,
    profile: HardeningProfile,
    stride: usize,
) -> DoubleFaultReport {
    let engine = AccessEngine::new(rsn);
    analyze_double_sampled_on(&engine, profile, stride)
}

/// [`analyze_double_sampled`] on a prebuilt [`AccessEngine`] — the pair
/// sweep is quadratic in the fault universe, so reusing the engine's
/// precomputation matters more here than anywhere else.
///
/// The sampled pairs are evaluated by the shared work-stealing scheduler
/// (one [`crate::Scratch`] per worker) and aggregated serially in sample
/// order, so the report is bit-identical at any worker count.
pub fn analyze_double_sampled_on(
    engine: &AccessEngine,
    profile: HardeningProfile,
    stride: usize,
) -> DoubleFaultReport {
    let rsn = engine.rsn();
    let faults = fault_universe(rsn);
    let effects: Vec<FaultEffect> = faults.iter().map(|f| effect_of(rsn, f, profile)).collect();
    let total_segments = rsn.segments().count();

    // Materialize the deterministic sample: every `stride`-th entry of
    // the cross product, keeping each unordered pair once.
    let n = faults.len();
    let stride = stride.max(1);
    let mut sampled: Vec<(usize, usize)> = Vec::new();
    let mut idx = 0usize;
    while idx < n * n {
        let (i, j) = (idx / n, idx % n);
        idx += stride;
        if j > i {
            sampled.push((i, j));
        }
    }

    let threads = rsn_budget::default_threads().min(16);
    let fracs: Vec<f64> = run_stealing(
        sampled.len(),
        threads,
        || engine.scratch(),
        |scratch, k| {
            let (i, j) = sampled[k];
            let combined = combine_effects(&effects[i], &effects[j]);
            if combined.is_benign() {
                1.0
            } else {
                engine.accessibility(&combined, scratch).segment_fraction()
            }
        },
    );

    let mut worst = 1.0f64;
    let mut sum = 0.0f64;
    let mut worst_pair = None;
    let mut hist = vec![0usize; 9];
    for (&(i, j), &frac) in sampled.iter().zip(&fracs) {
        sum += frac;
        if frac < worst {
            worst = frac;
            worst_pair = Some((faults[i], faults[j]));
        }
        let lost = ((1.0 - frac) * total_segments as f64).round() as usize;
        let bucket = lost.min(hist.len() - 1);
        hist[bucket] += 1;
    }

    let pairs = sampled.len();
    DoubleFaultReport {
        pairs,
        worst_segments: worst,
        avg_segments: if pairs == 0 { 1.0 } else { sum / pairs as f64 },
        worst_pair,
        lost_histogram: hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::accessibility;
    use rsn_core::examples::fig2;
    use rsn_itc02::parse_soc;
    use rsn_sib::generate;
    use rsn_synth::{synthesize, SynthesisOptions};

    #[test]
    fn combining_with_benign_is_identity_on_corruption() {
        let rsn = fig2();
        let f = fault_universe(&rsn)[0];
        let e = effect_of(&rsn, &f, HardeningProfile::unhardened());
        let combined = combine_effects(&e, &FaultEffect::benign());
        assert_eq!(combined.corrupt_nodes, e.corrupt_nodes);
        assert_eq!(combined.forced_bits, e.forced_bits);
    }

    #[test]
    fn double_fault_never_beats_single_fault() {
        // Adding a second fault cannot increase accessibility.
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        let faults = fault_universe(&rsn);
        for i in (0..faults.len()).step_by(5) {
            for j in ((i + 1)..faults.len()).step_by(7) {
                let a = effect_of(&rsn, &faults[i], profile);
                let b = effect_of(&rsn, &faults[j], profile);
                let single = accessibility(&rsn, &a).segment_fraction();
                let combined = combine_effects(&a, &b);
                let double = accessibility(&rsn, &combined).segment_fraction();
                assert!(
                    double <= single + 1e-12,
                    "pair ({}, {}) improved accessibility",
                    faults[i],
                    faults[j]
                );
            }
        }
    }

    #[test]
    fn ft_network_degrades_gracefully_under_double_faults() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let ft = synthesize(&rsn, &SynthesisOptions::new()).expect("synthesize");
        let orig = analyze_double_sampled(&rsn, HardeningProfile::unhardened(), 11);
        let hard = analyze_double_sampled(&ft.rsn, HardeningProfile::hardened(), 11);
        // The FT network's double-fault average beats the original's.
        assert!(
            hard.avg_segments > orig.avg_segments,
            "ft {} <= orig {}",
            hard.avg_segments,
            orig.avg_segments
        );
        // Most sampled pairs lose only a couple of segments.
        let small_losses: usize = hard.lost_histogram[..3].iter().sum();
        assert!(
            small_losses * 2 > hard.pairs,
            "histogram {:?} of {} pairs",
            hard.lost_histogram,
            hard.pairs
        );
    }

    #[test]
    fn fig2_data_faults_on_both_branches_block_everything() {
        // B and C are each avoidable alone, but corrupting both leaves the
        // mux with no clean input: no segment has a clean path.
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        let b = rsn.find("B").expect("B");
        let c = rsn.find("C").expect("C");
        let eb = effect_of(
            &rsn,
            &Fault {
                site: crate::fault::FaultSite::SegmentData(b),
                value: false,
                weight: 2,
            },
            profile,
        );
        let ec = effect_of(
            &rsn,
            &Fault {
                site: crate::fault::FaultSite::SegmentData(c),
                value: false,
                weight: 2,
            },
            profile,
        );
        let engine = AccessEngine::new(&rsn);
        let mut scratch = engine.scratch();
        let acc = engine.accessibility(&combine_effects(&eb, &ec), &mut scratch);
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn fig2_double_local_loss_spares_dataflow() {
        // Shadow faults on B and C break only their instrument interfaces:
        // the scan path stays intact, so exactly A and D stay accessible.
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        let b = rsn.find("B").expect("B");
        let c = rsn.find("C").expect("C");
        let eb = effect_of(
            &rsn,
            &Fault {
                site: crate::fault::FaultSite::SegmentShadow(b),
                value: false,
                weight: 1,
            },
            profile,
        );
        let ec = effect_of(
            &rsn,
            &Fault {
                site: crate::fault::FaultSite::SegmentShadow(c),
                value: false,
                weight: 1,
            },
            profile,
        );
        let engine = AccessEngine::new(&rsn);
        let mut scratch = engine.scratch();
        let acc = engine.accessibility(&combine_effects(&eb, &ec), &mut scratch);
        assert_eq!(acc.accessible_segments, 2);
        for (name, expect) in [("A", true), ("B", false), ("C", false), ("D", true)] {
            let id = rsn.find(name).expect("exists");
            assert_eq!(acc.accessible[id.index()], expect, "segment {name}");
        }
    }

    #[test]
    fn fig2_dense_double_fault_sweep_golden() {
        let rsn = fig2();
        let report = analyze_double_sampled(&rsn, HardeningProfile::unhardened(), 1);
        let n = fault_universe(&rsn).len();
        assert_eq!(report.pairs, n * (n - 1) / 2);
        // Any pair involving a data fault on A disconnects everything.
        assert_eq!(report.worst_segments, 0.0);
        assert!(report.worst_pair.is_some());
        assert!(report.avg_segments > 0.0 && report.avg_segments < 1.0);
        let hist_total: usize = report.lost_histogram.iter().sum();
        assert_eq!(hist_total, report.pairs);
        // The histogram tail (all 4 segments lost) must be populated: A's
        // data fault alone already loses the full network.
        assert!(report.lost_histogram[4] > 0, "{:?}", report.lost_histogram);
    }

    #[test]
    fn engine_reuse_matches_one_shot_sweep() {
        let rsn = fig2();
        let engine = AccessEngine::new(&rsn);
        let via_engine = analyze_double_sampled_on(&engine, HardeningProfile::unhardened(), 3);
        let one_shot = analyze_double_sampled(&rsn, HardeningProfile::unhardened(), 3);
        assert_eq!(via_engine, one_shot);
    }

    #[test]
    fn stride_controls_sample_size() {
        let rsn = fig2();
        let dense = analyze_double_sampled(&rsn, HardeningProfile::unhardened(), 1);
        let sparse = analyze_double_sampled(&rsn, HardeningProfile::unhardened(), 13);
        assert!(dense.pairs > sparse.pairs);
        let n = fault_universe(&rsn).len();
        assert_eq!(dense.pairs, n * (n - 1) / 2);
    }
}
