//! Stuck-at fault model, faulty scan-path computation and the RSN
//! fault-tolerance metric (paper Sec. III-A and IV-B).
//!
//! The crate provides:
//!
//! * [`Fault`] / [`FaultSite`] — the single stuck-at 0/1 fault universe over
//!   segment ports, register cells, select stems, multiplexer data ports
//!   and multiplexer address nets ([`fault`]).
//! * [`FaultEffect`] — the semantic effect of a fault on the network:
//!   corrupted dataflow elements, forced control values, locally lost
//!   segments ([`effect`]).
//! * The structural accessibility engine ([`engine`]): a fixed-point
//!   computation of which scan segments still have a *configurable, clean*
//!   scan path from a scan-in port through the segment to a scan-out port
//!   that avoids the fault site — the paper's "algorithm to compute scan
//!   paths in faulty RSNs", specialized to the structured networks built by
//!   this toolchain (exact for SIB-based and synthesized fault-tolerant
//!   RSNs; the BMC engine in `rsn-bmc` provides the general reference
//!   semantics).
//! * The fault-tolerance metric ([`metric`]): worst-case and average
//!   fraction of accessible segments and scan bits over all single
//!   stuck-at faults — the accessibility columns of the paper's Table I.
//!
//! # Example
//!
//! ```
//! use rsn_core::examples::fig2;
//! use rsn_fault::{analyze, HardeningProfile};
//!
//! let rsn = fig2();
//! let report = analyze(&rsn, HardeningProfile::unhardened());
//! // Some fault disconnects everything in the unhardened Fig. 2 network.
//! assert_eq!(report.worst_segments, 0.0);
//! assert!(report.avg_segments > 0.0 && report.avg_segments < 1.0);
//! ```

pub mod collapse;
pub mod diagnose;
pub mod effect;
pub mod engine;
pub mod fault;
pub mod metric;
pub mod multi;
pub mod plan;
pub mod sim;
pub(crate) mod sweep;

pub use collapse::{ClassKind, FaultClass, FaultClasses};
pub use diagnose::{FaultDictionary, Signature};
pub use effect::{effect_of, effect_of_indexed, is_control_segment, ControlBitIndex, FaultEffect};
pub use engine::{accessibility, AccessEngine, Accessibility, Scratch};
pub use fault::{fault_universe, fault_universe_weighted, Fault, FaultSite, WeightModel};
pub use metric::{
    analyze, analyze_classes_on_budget, analyze_faults_on, analyze_faults_on_budget,
    analyze_faults_on_budget_uncollapsed, analyze_parallel, analyze_parallel_budgeted,
    analyze_parallel_budgeted_uncollapsed, analyze_parallel_with, analyze_with,
    FaultToleranceReport, HardeningProfile,
};
pub use multi::{analyze_double_sampled, analyze_double_sampled_on, DoubleFaultReport};
pub use plan::{plan_faulty_access, plan_faulty_access_on, plan_targets_on, FaultyAccessPlan};
pub use sim::FaultySim;
