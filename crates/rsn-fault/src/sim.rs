//! Bit-accurate simulation of a *faulty* RSN.
//!
//! Wraps the CSU simulator of `rsn-core` and applies stuck-at fault
//! semantics at the shift-chain level:
//!
//! * a **segment data fault** forces the segment's first shift cell to the
//!   stuck value after every shift cycle — data passing through the
//!   segment is corrupted exactly as a stuck scan cell corrupts it,
//! * a **shadow/control fault** pins the faulty register bit after every
//!   update,
//! * a **multiplexer address fault** pins the multiplexer's decoded input
//!   (simulated by rewriting the traced path),
//! * **scan port faults** force the injected/observed stream.
//!
//! The simulator is the executable ground truth used to validate faulty
//! access plans (`plan` module): a plan is only as good as the data that
//! actually round-trips through the stuck silicon.

use rsn_core::csu::SimState;
use rsn_core::{NodeId, NodeKind, Result, Rsn};

use crate::fault::{Fault, FaultSite};

/// A faulty-network simulator: an [`Rsn`], one injected [`Fault`], and the
/// dynamic [`SimState`].
#[derive(Debug, Clone)]
pub struct FaultySim<'a> {
    rsn: &'a Rsn,
    fault: Fault,
    /// Dynamic state (shift registers + configuration).
    pub state: SimState,
}

impl<'a> FaultySim<'a> {
    /// Creates a simulator in the reset state with the fault injected.
    ///
    /// # Panics
    ///
    /// Panics if the fault site class is not simulatable
    /// ([`FaultSite::SegmentSelect`] is approximated at the metric level
    /// only).
    pub fn new(rsn: &'a Rsn, fault: Fault) -> Self {
        assert!(
            !matches!(fault.site, FaultSite::SegmentSelect(_)),
            "select-stem faults are not simulated at bit level"
        );
        let mut sim = FaultySim {
            rsn,
            fault,
            state: SimState::reset(rsn),
        };
        sim.apply_state_fault();
        sim
    }

    /// The injected fault.
    pub fn fault(&self) -> Fault {
        self.fault
    }

    /// Applies persistent state corruption (stuck cells, pinned shadow
    /// bits) to the current state.
    fn apply_state_fault(&mut self) {
        match self.fault.site {
            FaultSite::SegmentData(s) => {
                // First shift cell stuck.
                let mut bits = self.state.shift_register(s).to_vec();
                if let Some(first) = bits.first_mut() {
                    *first = self.fault.value;
                }
                self.state.set_shift_register(s, &bits);
            }
            FaultSite::SegmentShadow(s) => {
                if let Some(off) = self.rsn.shadow_offset(s) {
                    // Pin the first mux-referenced bit (the collapsed
                    // class), or bit 0 for instrument registers.
                    let bit = crate::effect::first_control_bit(self.rsn, s).unwrap_or(0);
                    self.state
                        .config
                        .set_bit((off + bit) as usize, self.fault.value);
                }
            }
            _ => {}
        }
    }

    /// Performs one CSU operation under the fault.
    ///
    /// The shift phase is simulated cycle by cycle so the stuck cell
    /// corrupts pass-through data; state faults are re-applied after the
    /// update phase.
    ///
    /// # Errors
    ///
    /// Propagates path tracing errors. Under `MuxAddress` faults the
    /// forced address may produce paths the select logic contradicts; the
    /// simulator traces structurally (no validity check), mirroring the
    /// silicon.
    pub fn csu(&mut self, scan_in_data: &[bool]) -> Result<Vec<bool>> {
        // Trace the path with forced-address semantics.
        let path = self.trace_faulty_path()?;
        let segs: Vec<NodeId> = path
            .iter()
            .copied()
            .filter(|&n| matches!(self.rsn.node(n).kind(), NodeKind::Segment(_)))
            .collect();

        // Build the chain and locate stuck cells / port faults.
        let mut chain: Vec<bool> = Vec::new();
        let mut stuck_pos: Option<(usize, bool)> = None;
        for &seg in &segs {
            if let FaultSite::SegmentData(s) = self.fault.site {
                if s == seg {
                    stuck_pos = Some((chain.len(), self.fault.value));
                }
            }
            chain.extend_from_slice(self.state.shift_register(seg));
        }

        let in_forced =
            matches!(self.fault.site, FaultSite::ScanInPort(p) if p == self.rsn.scan_in());
        let out_forced =
            matches!(self.fault.site, FaultSite::ScanOutPort(p) if p == self.rsn.scan_out());

        let mut out = Vec::with_capacity(scan_in_data.len());
        for &in_bit in scan_in_data {
            let in_bit = if in_forced { self.fault.value } else { in_bit };
            if chain.is_empty() {
                out.push(if out_forced { self.fault.value } else { in_bit });
                continue;
            }
            let emitted = *chain.last().expect("nonempty");
            out.push(if out_forced {
                self.fault.value
            } else {
                emitted
            });
            for i in (1..chain.len()).rev() {
                chain[i] = chain[i - 1];
            }
            chain[0] = in_bit;
            if let Some((pos, v)) = stuck_pos {
                chain[pos] = v;
            }
        }

        // Write back, update shadows, re-apply state faults.
        let mut pos = 0;
        for &seg in &segs {
            let len = self.state.shift_register(seg).len();
            let slice = chain[pos..pos + len].to_vec();
            self.state.set_shift_register(seg, &slice);
            pos += len;
        }
        for &seg in &segs {
            let s = self.rsn.node(seg).as_segment().expect("segment");
            if !s.has_shadow {
                continue;
            }
            if self.rsn.eval(&s.update_disable, &self.state.config)? {
                continue;
            }
            let off = self.rsn.shadow_offset(seg).expect("has shadow") as usize;
            let bits = self.state.shift_register(seg).to_vec();
            for (i, b) in bits.iter().enumerate() {
                self.state.config.set_bit(off + i, *b);
            }
        }
        self.apply_state_fault();
        Ok(out)
    }

    /// Traces the active path under forced-address semantics (no validity
    /// check — faulty silicon routes whatever the addresses decode to).
    pub fn trace_faulty_path(&self) -> Result<Vec<NodeId>> {
        let rsn = self.rsn;
        let mut rev = vec![rsn.scan_out()];
        let mut cur = rsn.scan_out();
        let limit = rsn.node_count() + 1;
        while !matches!(rsn.node(cur).kind(), NodeKind::ScanIn) {
            let prev = match rsn.node(cur).kind() {
                NodeKind::Mux(m) => match self.fault.site {
                    FaultSite::MuxAddress(f) if f == cur => {
                        let idx = if self.fault.value {
                            m.inputs.len() - 1
                        } else {
                            0
                        };
                        m.inputs[idx.min(1)]
                    }
                    _ => rsn.mux_selected_input(cur, &self.state.config)?,
                },
                _ => rsn
                    .node(cur)
                    .source()
                    .ok_or(rsn_core::Error::NodeUnconnected(cur))?,
            };
            rev.push(prev);
            cur = prev;
            if rev.len() > limit {
                return Err(rsn_core::Error::SensitizedCycle);
            }
        }
        rev.reverse();
        Ok(rev)
    }

    /// Writes `value` into `target`'s shift register through the faulty
    /// network (target must be on the current faulty path) and returns
    /// whether the register then holds exactly `value`.
    ///
    /// # Errors
    ///
    /// Propagates CSU errors; returns `Ok(false)` when the fault corrupted
    /// the written data.
    pub fn write_and_verify(&mut self, target: NodeId, value: &[bool]) -> Result<bool> {
        let path = self.trace_faulty_path()?;
        if !path.contains(&target) {
            return Ok(false);
        }
        let segs: Vec<NodeId> = path
            .iter()
            .copied()
            .filter(|&n| matches!(self.rsn.node(n).kind(), NodeKind::Segment(_)))
            .collect();
        let total: usize = segs
            .iter()
            .map(|&s| self.state.shift_register(s).len())
            .sum();
        let mut offset = 0usize;
        for &s in &segs {
            if s == target {
                break;
            }
            offset += self.state.shift_register(s).len();
        }
        let mut stream = vec![false; total];
        for (i, &v) in value.iter().enumerate() {
            let p = offset + i;
            stream[total - 1 - p] = v;
        }
        // Preserve current control values for on-path registers so the
        // write does not tear down the configuration.
        for (ci, &s) in segs.iter().enumerate() {
            if s == target {
                continue;
            }
            let mut p0 = 0usize;
            for &q in segs.iter().take(ci) {
                p0 += self.state.shift_register(q).len();
            }
            for (i, &b) in self.state.shift_register(s).to_vec().iter().enumerate() {
                stream[total - 1 - (p0 + i)] = b;
            }
        }
        self.csu(&stream)?;
        Ok(self.state.shift_register(target) == value)
    }

    /// Captures-and-reads `target` through the faulty network: loads
    /// `data` as the captured instrument value and returns the bits
    /// observed at the scan-out port for `target`'s chain positions.
    ///
    /// # Errors
    ///
    /// Propagates CSU errors; `Ok(None)` when the target is off-path.
    pub fn read(&mut self, target: NodeId, data: &[bool]) -> Result<Option<Vec<bool>>> {
        let path = self.trace_faulty_path()?;
        if !path.contains(&target) {
            return Ok(None);
        }
        self.state.set_shift_register(target, data);
        // Stuck cell inside the target corrupts even the capture.
        if let FaultSite::SegmentData(s) = self.fault.site {
            if s == target {
                let mut bits = self.state.shift_register(target).to_vec();
                if let Some(first) = bits.first_mut() {
                    *first = self.fault.value;
                }
                self.state.set_shift_register(target, &bits);
            }
        }
        let segs: Vec<NodeId> = path
            .iter()
            .copied()
            .filter(|&n| matches!(self.rsn.node(n).kind(), NodeKind::Segment(_)))
            .collect();
        let total: usize = segs
            .iter()
            .map(|&s| self.state.shift_register(s).len())
            .sum();
        let mut offset = 0usize;
        for &s in &segs {
            if s == target {
                break;
            }
            offset += self.state.shift_register(s).len();
        }
        let out = self.csu(&vec![false; total])?;
        let mut bits = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            bits.push(out[total - 1 - (offset + i)]);
        }
        Ok(Some(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2};

    #[test]
    fn stuck_cell_corrupts_pass_through_data() {
        let rsn = chain(3, 4);
        let s1 = rsn.find("S1").expect("middle segment");
        let fault = Fault {
            site: FaultSite::SegmentData(s1),
            value: false,
            weight: 2,
        };
        let mut sim = FaultySim::new(&rsn, fault);
        // Shift an all-ones pattern through the whole chain (12 bits) and
        // keep shifting another 12 to observe it at scan-out.
        let mut observed = Vec::new();
        for _ in 0..2 {
            let out = sim.csu(&[true; 12]).expect("csu");
            observed.extend(out);
        }
        // Bits that passed the stuck cell must be 0 somewhere.
        assert!(observed[12..].iter().any(|&b| !b), "corruption visible");
    }

    #[test]
    fn fault_free_positions_survive() {
        // Data written into S0 (before the fault site) is intact.
        let rsn = chain(3, 4);
        let s0 = rsn.find("S0").expect("first segment");
        let s2 = rsn.find("S2").expect("last segment");
        let fault = Fault {
            site: FaultSite::SegmentData(s2),
            value: true,
            weight: 2,
        };
        let mut sim = FaultySim::new(&rsn, fault);
        let ok = sim
            .write_and_verify(s0, &[true, false, true, false])
            .expect("csu");
        assert!(ok, "write before the fault site must land");
    }

    #[test]
    fn write_through_fault_site_fails_verification() {
        let rsn = chain(3, 4);
        let s0 = rsn.find("S0").expect("first");
        let s2 = rsn.find("S2").expect("last");
        let fault = Fault {
            site: FaultSite::SegmentData(s0),
            value: false,
            weight: 2,
        };
        let mut sim = FaultySim::new(&rsn, fault);
        // Writing 1s into s2 requires passing the stuck-0 cell in s0.
        let ok = sim
            .write_and_verify(s2, &[true, true, true, true])
            .expect("csu");
        assert!(!ok, "data through the stuck cell must corrupt");
    }

    #[test]
    fn read_before_fault_is_clean_after_fault_corrupt() {
        let rsn = chain(3, 2);
        let s0 = rsn.find("S0").expect("s0");
        let s2 = rsn.find("S2").expect("s2");
        let s1 = rsn.find("S1").expect("s1");
        let fault = Fault {
            site: FaultSite::SegmentData(s1),
            value: false,
            weight: 2,
        };
        // Read of s2 (downstream of fault): clean; read of s0: corrupted.
        let mut sim = FaultySim::new(&rsn, fault);
        let got = sim.read(s2, &[true, true]).expect("csu").expect("on path");
        assert_eq!(got, vec![true, true], "suffix after fault is clean");
        let mut sim = FaultySim::new(&rsn, fault);
        let got = sim.read(s0, &[true, true]).expect("csu").expect("on path");
        assert_ne!(got, vec![true, true], "data must pass the stuck cell");
    }

    #[test]
    fn pinned_shadow_bit_stays_pinned() {
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let fault = Fault {
            site: FaultSite::SegmentShadow(a),
            value: true,
            weight: 1,
        };
        let mut sim = FaultySim::new(&rsn, fault);
        let off = rsn.shadow_offset(a).expect("shadow") as usize;
        assert!(sim.state.config.bit(off), "pinned at 1 from the start");
        // A CSU writing zeros does not unpin it.
        let path = sim.trace_faulty_path().expect("trace");
        let bits: usize = path
            .iter()
            .filter_map(|&n| rsn.node(n).as_segment().map(|s| s.length as usize))
            .sum();
        sim.csu(&vec![false; bits]).expect("csu");
        assert!(sim.state.config.bit(off), "still pinned after update");
    }

    #[test]
    fn mux_address_fault_reroutes_structurally() {
        let rsn = fig2();
        let m = rsn.find("M").expect("mux");
        let c = rsn.find("C").expect("C");
        let fault = Fault {
            site: FaultSite::MuxAddress(m),
            value: true,
            weight: 1,
        };
        let sim = FaultySim::new(&rsn, fault);
        let path = sim.trace_faulty_path().expect("trace");
        assert!(path.contains(&c), "stuck-1 address forces the C branch");
    }

    #[test]
    fn scan_out_port_fault_forces_observation() {
        let rsn = chain(2, 2);
        let fault = Fault {
            site: FaultSite::ScanOutPort(rsn.scan_out()),
            value: true,
            weight: 1,
        };
        let mut sim = FaultySim::new(&rsn, fault);
        let out = sim.csu(&[false, false, false, false]).expect("csu");
        assert!(out.iter().all(|&b| b), "observed stream pinned to 1");
    }
}
