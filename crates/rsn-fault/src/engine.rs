//! Structural accessibility engine for faulty RSNs.
//!
//! For a given [`FaultEffect`], the engine decides for every scan segment
//! whether an *activatable, clean* scan path exists from a scan-in port
//! through the segment to a scan-out port:
//!
//! * **clean** — avoiding all corrupted nodes and multiplexer input edges
//!   (the paper's first access condition: a secondary path that does not
//!   use the faulty scan element),
//! * **activatable** — every multiplexer on the path can be set to the
//!   required input: its address is either free (the controlling register
//!   is itself writable through a clean prefix) or pinned to the required
//!   value (the paper's second access condition: the path must be
//!   configurable by CSU operations).
//!
//! Control writability is a fixed point: a register is writable only via a
//! clean path whose multiplexers are configurable, which may depend on
//! other registers' writability. The fixed point bootstraps from the
//! reset configuration and monotonically *promotes* control bits to fully
//! controllable once their owner is proven writable — starting pessimistic
//! keeps the verdict sound (no circular self-justification).

use std::collections::HashMap;

use rsn_core::{Config, ControlExpr, NodeId, NodeKind, Rsn};

use crate::effect::FaultEffect;

/// Per-segment accessibility under one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accessibility {
    /// `accessible[node.index()]` for segment nodes; `false` elsewhere.
    pub accessible: Vec<bool>,
    /// Number of accessible segments.
    pub accessible_segments: usize,
    /// Total number of segments.
    pub total_segments: usize,
    /// Scan bits in accessible segments.
    pub accessible_bits: u64,
    /// Total scan bits.
    pub total_bits: u64,
}

impl Accessibility {
    /// Fraction of accessible segments (1.0 for an empty network).
    pub fn segment_fraction(&self) -> f64 {
        if self.total_segments == 0 {
            1.0
        } else {
            self.accessible_segments as f64 / self.total_segments as f64
        }
    }

    /// Fraction of accessible scan bits (1.0 for an empty network).
    pub fn bit_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            1.0
        } else {
            self.accessible_bits as f64 / self.total_bits as f64
        }
    }
}

/// Attainable-value lattice of one control bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BitState {
    /// The bit can hold 0 in some reachable configuration.
    can0: bool,
    /// The bit can hold 1 in some reachable configuration.
    can1: bool,
    /// Pinned by the fault (stuck cell): never promoted.
    pinned: bool,
}

impl BitState {
    fn pinned(v: bool) -> Self {
        BitState {
            can0: !v,
            can1: v,
            pinned: true,
        }
    }

    fn known(v: bool) -> Self {
        BitState {
            can0: !v,
            can1: v,
            pinned: false,
        }
    }

    fn both(self) -> Self {
        BitState {
            can0: true,
            can1: true,
            pinned: self.pinned,
        }
    }

    fn with_value(self, v: bool) -> Self {
        BitState {
            can0: self.can0 || !v,
            can1: self.can1 || v,
            pinned: self.pinned,
        }
    }

    fn is_both(self) -> bool {
        self.can0 && self.can1
    }
}

/// Decides whether `expr` can be made to evaluate to `want` given the
/// current control-bit states. Unknown references are conservatively
/// unsatisfiable.
fn can_set(expr: &ControlExpr, want: bool, states: &HashMap<(NodeId, u32), BitState>) -> bool {
    match expr {
        ControlExpr::Const(b) => *b == want,
        ControlExpr::Reg(n, bit) => match states.get(&(*n, *bit)) {
            Some(s) => {
                if want {
                    s.can1
                } else {
                    s.can0
                }
            }
            None => false,
        },
        ControlExpr::Input(_) => true, // primary inputs are always drivable
        ControlExpr::Not(e) => can_set(e, !want, states),
        ControlExpr::And(es) => {
            if want {
                es.iter().all(|e| can_set(e, true, states))
            } else {
                es.iter().any(|e| can_set(e, false, states))
            }
        }
        ControlExpr::Or(es) => {
            if want {
                es.iter().any(|e| can_set(e, true, states))
            } else {
                es.iter().all(|e| can_set(e, false, states))
            }
        }
    }
}

struct EngineCtx<'a> {
    rsn: &'a Rsn,
    clean: Vec<bool>,
    /// corrupt input edges per mux node index.
    corrupt_inputs: HashMap<(NodeId, usize), ()>,
    forced_mux: &'a HashMap<NodeId, usize>,
    states: HashMap<(NodeId, u32), BitState>,
    roots: Vec<NodeId>,
    sinks: Vec<NodeId>,
}

impl<'a> EngineCtx<'a> {
    /// `true` if mux input `k` of `m` can be selected under the current
    /// control states.
    fn configurable(&self, m: NodeId, k: usize) -> bool {
        if let Some(&forced) = self.forced_mux.get(&m) {
            return forced == k;
        }
        let mux = self.rsn.node(m).as_mux().expect("mux");
        mux.addr_bits.iter().enumerate().all(|(i, expr)| {
            let want = (k >> i) & 1 == 1;
            can_set(expr, want, &self.states)
        })
    }

    /// Forward reachability from clean roots. `require_clean_nodes`
    /// restricts traversal to clean nodes and uncorrupted edges.
    fn forward(&self, require_clean: bool) -> Vec<bool> {
        let n = self.rsn.node_count();
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        for &r in &self.roots {
            if !require_clean || self.clean[r.index()] {
                seen[r.index()] = true;
                stack.push(r);
            }
        }
        while let Some(u) = stack.pop() {
            for &v in self.rsn.successors(u) {
                if seen[v.index()] {
                    continue;
                }
                if require_clean && !self.clean[v.index()] {
                    continue;
                }
                let edge_ok = match self.rsn.node(v).kind() {
                    NodeKind::Mux(mux) => {
                        // Several input indices may connect u to v.
                        mux.inputs.iter().enumerate().any(|(k, &inp)| {
                            inp == u
                                && self.configurable(v, k)
                                && (!require_clean || !self.corrupt_inputs.contains_key(&(v, k)))
                        })
                    }
                    _ => true,
                };
                if edge_ok {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Backward reachability to sinks. `require_clean` restricts to clean
    /// sinks, clean nodes and uncorrupted edges.
    fn backward(&self, require_clean: bool) -> Vec<bool> {
        let n = self.rsn.node_count();
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        for &s in &self.sinks {
            if !require_clean || self.clean[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
        while let Some(v) = stack.pop() {
            let preds: Vec<(NodeId, Option<usize>)> = match self.rsn.node(v).kind() {
                NodeKind::Mux(mux) => mux
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(k, &inp)| (inp, Some(k)))
                    .collect(),
                _ => self
                    .rsn
                    .node(v)
                    .source()
                    .map(|s| (s, None))
                    .into_iter()
                    .collect(),
            };
            for (u, edge) in preds {
                if seen[u.index()] {
                    continue;
                }
                if require_clean && !self.clean[u.index()] {
                    continue;
                }
                let edge_ok = match edge {
                    Some(k) => {
                        self.configurable(v, k)
                            && (!require_clean || !self.corrupt_inputs.contains_key(&(v, k)))
                    }
                    None => true,
                };
                if edge_ok {
                    seen[u.index()] = true;
                    stack.push(u);
                }
            }
        }
        seen
    }
}

/// Collects every control bit referenced by any multiplexer address.
fn control_bits(rsn: &Rsn) -> Vec<(NodeId, u32)> {
    let mut bits = Vec::new();
    for m in rsn.muxes() {
        for expr in &rsn.node(m).as_mux().expect("mux").addr_bits {
            expr.collect_reg_refs(&mut bits);
        }
    }
    bits.sort_unstable();
    bits.dedup();
    bits
}

/// Computes per-segment accessibility under a fault effect.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::{accessibility, FaultEffect};
///
/// let rsn = fig2();
/// // Fault-free: everything accessible.
/// let acc = accessibility(&rsn, &FaultEffect::benign());
/// assert_eq!(acc.segment_fraction(), 1.0);
/// ```
pub fn accessibility(rsn: &Rsn, effect: &FaultEffect) -> Accessibility {
    let n = rsn.node_count();
    let mut clean = vec![true; n];
    for &c in &effect.corrupt_nodes {
        clean[c.index()] = false;
    }
    let corrupt_inputs: HashMap<(NodeId, usize), ()> =
        effect.corrupt_mux_inputs.iter().map(|&e| (e, ())).collect();

    // Initial control-bit states: fault-pinned bits are fixed; bits of a
    // corrupt register are frozen at the fault's stuck value (the first
    // CSU through the fault site writes the stuck value — the adapted
    // transition relation); all other bits start at their reset value and
    // are promoted to fully-controllable once their owner is proven
    // writable through a clean, configurable path.
    let reset = rsn.reset_config();
    let bits = control_bits(rsn);
    let reset_value = |node: NodeId, bit: u32| -> bool {
        match rsn.shadow_offset(node) {
            Some(off) => reset_bit(&reset, off + bit),
            None => false,
        }
    };
    let states: HashMap<(NodeId, u32), BitState> = bits
        .iter()
        .map(|&(node, bit)| {
            let state = match effect.forced_bits.get(&(node, bit)) {
                Some(&v) => BitState::pinned(v),
                // Bits of a corrupt register are NOT pinned: they hold the
                // reset value until the first CSU through the fault, and
                // the dirty-growth rule below adds the stuck value. Both
                // values can genuinely be exercised over time.
                None => BitState::known(reset_value(node, bit)),
            };
            ((node, bit), state)
        })
        .collect();

    let mut roots = vec![rsn.scan_in()];
    roots.extend(rsn.secondary_scan_in());
    let mut sinks = vec![rsn.scan_out()];
    sinks.extend(rsn.secondary_scan_out());

    let mut ctx = EngineCtx {
        rsn,
        clean,
        corrupt_inputs,
        forced_mux: &effect.forced_mux,
        states,
        roots,
        sinks,
    };

    // Fixed point: grow the attainable-value sets from the bootstrap
    // (reset) configuration. A bit becomes fully controllable when its
    // owner has a *clean* configurable write path; a *dirty* write path
    // (through the fault site) still deterministically delivers the
    // fault's stuck value, so it adds exactly that value (the adapted
    // transition relation of Sec. III-A). Monotone increasing, hence
    // terminating; starting pessimistic keeps the verdict sound.
    let mut rounds_run = 0u64;
    for _ in 0..=2 * bits.len() {
        rounds_run += 1;
        let reach_clean = ctx.forward(true);
        let reach_any = ctx.forward(false);
        let can_exit = ctx.backward(false);
        let mut changed = false;
        for &(node, bit) in &bits {
            let cur = match ctx.states.get(&(node, bit)) {
                Some(s) if !s.pinned && !s.is_both() => *s,
                _ => continue,
            };
            let mut next = cur;
            if ctx.clean[node.index()] && reach_clean[node.index()] && can_exit[node.index()] {
                next = next.both();
            } else if let Some(stuck) = effect.stuck {
                if reach_any[node.index()] && can_exit[node.index()] {
                    next = next.with_value(stuck);
                }
            }
            if next != cur {
                ctx.states.insert((node, bit), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // One batched export per call keeps registry lock contention out of
    // the per-round hot loop (this runs once per fault).
    rsn_obs::counter_add("fault.engine_rounds", rounds_run);
    rsn_obs::debug!(
        "fixed point converged after {rounds_run} rounds over {} control bits",
        bits.len()
    );

    let reach_clean = ctx.forward(true);
    let exit_clean = ctx.backward(true);

    let mut accessible = vec![false; n];
    let mut accessible_segments = 0usize;
    let mut total_segments = 0usize;
    let mut accessible_bits = 0u64;
    let mut total_bits = 0u64;
    for seg in rsn.segments() {
        total_segments += 1;
        let len = rsn
            .node(seg)
            .as_segment()
            .expect("segments() yields segments")
            .length as u64;
        total_bits += len;
        let ok = ctx.clean[seg.index()]
            && !effect.local_loss.contains(&seg)
            && reach_clean[seg.index()]
            && exit_clean[seg.index()];
        if ok {
            accessible[seg.index()] = true;
            accessible_segments += 1;
            accessible_bits += len;
        }
    }

    Accessibility {
        accessible,
        accessible_segments,
        total_segments,
        accessible_bits,
        total_bits,
    }
}

fn reset_bit(cfg: &Config, idx: u32) -> bool {
    cfg.bit(idx as usize)
}

/// Diagnostic snapshot of the engine's internal sets for one fault effect
/// after the fixed point: reachability/exit flags per node and the list of
/// fully-controllable control bits. Intended for debugging and tests.
pub fn engine_internals(
    rsn: &Rsn,
    effect: &FaultEffect,
) -> (Vec<bool>, Vec<bool>, Vec<(NodeId, u32)>) {
    let n = rsn.node_count();
    let mut clean = vec![true; n];
    for &c in &effect.corrupt_nodes {
        clean[c.index()] = false;
    }
    let corrupt_inputs: HashMap<(NodeId, usize), ()> =
        effect.corrupt_mux_inputs.iter().map(|&e| (e, ())).collect();
    let reset = rsn.reset_config();
    let bits = control_bits(rsn);
    let reset_value = |node: NodeId, bit: u32| -> bool {
        match rsn.shadow_offset(node) {
            Some(off) => reset_bit(&reset, off + bit),
            None => false,
        }
    };
    let states: HashMap<(NodeId, u32), BitState> = bits
        .iter()
        .map(|&(node, bit)| {
            let state = match effect.forced_bits.get(&(node, bit)) {
                Some(&v) => BitState::pinned(v),
                // Bits of a corrupt register are NOT pinned: they hold the
                // reset value until the first CSU through the fault, and
                // the dirty-growth rule below adds the stuck value. Both
                // values can genuinely be exercised over time.
                None => BitState::known(reset_value(node, bit)),
            };
            ((node, bit), state)
        })
        .collect();
    let mut roots = vec![rsn.scan_in()];
    roots.extend(rsn.secondary_scan_in());
    let mut sinks = vec![rsn.scan_out()];
    sinks.extend(rsn.secondary_scan_out());
    let mut ctx = EngineCtx {
        rsn,
        clean,
        corrupt_inputs,
        forced_mux: &effect.forced_mux,
        states,
        roots,
        sinks,
    };
    let mut rounds_run = 0u64;
    for round in 0..=2 * bits.len() {
        rounds_run += 1;
        let reach_clean = ctx.forward(true);
        let reach_any = ctx.forward(false);
        let can_exit = ctx.backward(false);
        rsn_obs::debug!(
            "round {round}: reach_clean {} reach_any {} can_exit {}",
            reach_clean.iter().filter(|&&b| b).count(),
            reach_any.iter().filter(|&&b| b).count(),
            can_exit.iter().filter(|&&b| b).count()
        );
        let mut changed = false;
        for &(node, bit) in &bits {
            let cur = match ctx.states.get(&(node, bit)) {
                Some(s) if !s.pinned && !s.is_both() => *s,
                _ => continue,
            };
            let mut next = cur;
            if ctx.clean[node.index()] && reach_clean[node.index()] && can_exit[node.index()] {
                next = next.both();
            } else if let Some(stuck) = effect.stuck {
                if reach_any[node.index()] && can_exit[node.index()] {
                    next = next.with_value(stuck);
                }
            }
            if next != cur {
                rsn_obs::trace!(
                    "round {round}: grow {}[{bit}] -> {next:?}",
                    rsn.node(node).name()
                );
                ctx.states.insert((node, bit), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // One batched export per call keeps registry lock contention out of
    // the per-round hot loop.
    rsn_obs::counter_add("fault.engine_rounds", rounds_run);
    let reach_clean = ctx.forward(true);
    let exit_clean = ctx.backward(true);
    let free: Vec<(NodeId, u32)> = bits
        .iter()
        .copied()
        .filter(|key| ctx.states.get(key).is_some_and(|s| s.is_both()))
        .collect();
    (reach_clean, exit_clean, free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::effect_of;
    use crate::fault::{Fault, FaultSite};
    use crate::metric::HardeningProfile;
    use rsn_core::examples::fig2;
    use rsn_itc02::parse_soc;
    use rsn_sib::generate;

    fn acc_for(rsn: &Rsn, fault: Fault) -> Accessibility {
        let e = effect_of(rsn, &fault, HardeningProfile::unhardened());
        accessibility(rsn, &e)
    }

    #[test]
    fn fault_free_everything_accessible() {
        let rsn = fig2();
        let acc = accessibility(&rsn, &FaultEffect::benign());
        assert_eq!(acc.accessible_segments, 4);
        assert_eq!(acc.segment_fraction(), 1.0);
        assert_eq!(acc.bit_fraction(), 1.0);
    }

    #[test]
    fn scan_in_fault_disconnects_everything() {
        let rsn = fig2();
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::ScanInPort(rsn.scan_in()),
                value: false,
                weight: 1,
            },
        );
        assert_eq!(acc.accessible_segments, 0);
        assert_eq!(acc.segment_fraction(), 0.0);
    }

    #[test]
    fn fault_on_a_kills_all_of_fig2() {
        // A is on every path in Fig. 2.
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(a),
                value: false,
                weight: 2,
            },
        );
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn fault_on_b_leaves_a_c_d_accessible() {
        // B has the C-branch as an alternative in Fig. 2.
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(b),
                value: false,
                weight: 2,
            },
        );
        assert_eq!(acc.accessible_segments, 3);
        assert!(!acc.accessible[b.index()]);
        for name in ["A", "C", "D"] {
            let id = rsn.find(name).expect("exists");
            assert!(acc.accessible[id.index()], "{name} must stay accessible");
        }
    }

    #[test]
    fn forced_mux_address_limits_branch() {
        // Address stuck at 0 pins the B branch: C inaccessible.
        let rsn = fig2();
        let m = rsn.find("M").expect("mux");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::MuxAddress(m),
                value: false,
                weight: 1,
            },
        );
        let c = rsn.find("C").expect("C");
        let b = rsn.find("B").expect("B");
        assert!(!acc.accessible[c.index()]);
        assert!(acc.accessible[b.index()]);
        assert_eq!(acc.accessible_segments, 3);
    }

    #[test]
    fn control_register_data_fault_freezes_control() {
        // A's data fault: A unwritable, so the mux stays at reset (B
        // branch) — but A itself is corrupt, killing every path anyway.
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(a),
                value: true,
                weight: 2,
            },
        );
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn sib_rsn_fault_in_subtree_spares_other_modules() {
        let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let leaf1 = rsn.find("m1.c0.seg").expect("leaf");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(leaf1),
                value: false,
                weight: 2,
            },
        );
        // Only that leaf is lost: its SIB and module 2 remain accessible.
        assert_eq!(acc.accessible_segments, acc.total_segments - 1);
        assert!(!acc.accessible[leaf1.index()]);
    }

    #[test]
    fn sib_rsn_top_level_sib_fault_kills_everything() {
        let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let sib = rsn.find("m1.sib").expect("sib");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(sib),
                value: false,
                weight: 2,
            },
        );
        // The module SIB register sits on the one-and-only top-level chain.
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn sib_shadow_stuck_closed_loses_subtree_only() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let sib = rsn.find("m1.sib").expect("sib");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentShadow(sib),
                value: false,
                weight: 1,
            },
        );
        // m1's subtree (2 chain SIBs + 2 leaves) is unreachable; the SIB
        // register itself is still on the scan path and accessible, as is
        // all of m2 and the tdr-free top level.
        let lost = 4;
        assert_eq!(acc.accessible_segments, acc.total_segments - lost);
        assert!(acc.accessible[sib.index()]);
    }

    #[test]
    fn sib_shadow_stuck_open_keeps_everything_accessible() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let sib = rsn.find("m1.sib").expect("sib");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentShadow(sib),
                value: true,
                weight: 1,
            },
        );
        // Stuck-open only forces the subtree onto the path; everything is
        // still reachable and clean.
        assert_eq!(acc.accessible_segments, acc.total_segments);
    }

    #[test]
    fn mux_bypass_input_fault_loses_bypass_only_when_needed() {
        // Bypass input corrupt: paths that need the bypass (i.e. everything
        // while the SIB is closed) must open the SIB instead; all segments
        // remain accessible because opening is always possible.
        let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let mux = rsn.find("m1.c0.mux").expect("mux");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::MuxInput(mux, 0),
                value: false,
                weight: 1,
            },
        );
        assert_eq!(acc.accessible_segments, acc.total_segments);
    }
}
