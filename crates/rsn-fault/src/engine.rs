//! Structural accessibility engine for faulty RSNs.
//!
//! For a given [`FaultEffect`], the engine decides for every scan segment
//! whether an *activatable, clean* scan path exists from a scan-in port
//! through the segment to a scan-out port:
//!
//! * **clean** — avoiding all corrupted nodes and multiplexer input edges
//!   (the paper's first access condition: a secondary path that does not
//!   use the faulty scan element),
//! * **activatable** — every multiplexer on the path can be set to the
//!   required input: its address is either free (the controlling register
//!   is itself writable through a clean prefix) or pinned to the required
//!   value (the paper's second access condition: the path must be
//!   configurable by CSU operations).
//!
//! Control writability is a fixed point: a register is writable only via a
//! clean path whose multiplexers are configurable, which may depend on
//! other registers' writability. The fixed point bootstraps from the
//! reset configuration and monotonically *promotes* control bits to fully
//! controllable once their owner is proven writable — starting pessimistic
//! keeps the verdict sound (no circular self-justification).
//!
//! # Engine architecture
//!
//! The fault-tolerance metric evaluates accessibility once per stuck-at
//! fault, so everything that does not depend on the fault is precomputed
//! once in [`AccessEngine::new`]: the dense control-bit index, reset
//! values, roots/sinks, per-node edge lists with multiplexer input
//! indices, and the multiplexer address expressions *compiled* against the
//! dense index ([`CompiledExpr`]), so the per-fault fixed point evaluates
//! over a flat `Vec<BitState>` instead of hash-map lookups. Per-fault
//! working memory lives in a caller-owned [`Scratch`] so sweeps over
//! thousands of faults allocate nothing in the hot loop.
//!
//! The free function [`accessibility`] remains as a one-shot convenience
//! wrapper; any caller evaluating more than one fault should build an
//! engine and reuse it.

use std::sync::Arc;

use rsn_core::{CompiledExpr, Config, NodeId, NodeKind, Rsn};

use crate::effect::FaultEffect;

/// Per-segment accessibility under one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accessibility {
    /// `accessible[node.index()]` for segment nodes; `false` elsewhere.
    pub accessible: Vec<bool>,
    /// Number of accessible segments.
    pub accessible_segments: usize,
    /// Total number of segments.
    pub total_segments: usize,
    /// Scan bits in accessible segments.
    pub accessible_bits: u64,
    /// Total scan bits.
    pub total_bits: u64,
}

impl Accessibility {
    /// Fraction of accessible segments (1.0 for an empty network).
    pub fn segment_fraction(&self) -> f64 {
        if self.total_segments == 0 {
            1.0
        } else {
            self.accessible_segments as f64 / self.total_segments as f64
        }
    }

    /// Fraction of accessible scan bits (1.0 for an empty network).
    pub fn bit_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            1.0
        } else {
            self.accessible_bits as f64 / self.total_bits as f64
        }
    }
}

/// Attainable-value lattice of one control bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BitState {
    /// The bit can hold 0 in some reachable configuration.
    can0: bool,
    /// The bit can hold 1 in some reachable configuration.
    can1: bool,
    /// Pinned by the fault (stuck cell): never promoted.
    pinned: bool,
}

impl BitState {
    fn pinned(v: bool) -> Self {
        BitState {
            can0: !v,
            can1: v,
            pinned: true,
        }
    }

    fn known(v: bool) -> Self {
        BitState {
            can0: !v,
            can1: v,
            pinned: false,
        }
    }

    fn both(self) -> Self {
        BitState {
            can0: true,
            can1: true,
            pinned: self.pinned,
        }
    }

    fn with_value(self, v: bool) -> Self {
        BitState {
            can0: self.can0 || !v,
            can1: self.can1 || v,
            pinned: self.pinned,
        }
    }

    fn is_both(self) -> bool {
        self.can0 && self.can1
    }
}

/// Decides whether a compiled expression can be made to evaluate to
/// `want` given the current control-bit states. Unresolved references are
/// conservatively unsatisfiable; primary inputs are always drivable.
fn can_set(expr: &CompiledExpr, want: bool, states: &[BitState]) -> bool {
    match expr {
        CompiledExpr::Const(b) => *b == want,
        CompiledExpr::Bit(i) => {
            let s = states[*i as usize];
            if want {
                s.can1
            } else {
                s.can0
            }
        }
        CompiledExpr::Input(_) => true,
        CompiledExpr::Unknown => false,
        CompiledExpr::Not(e) => can_set(e, !want, states),
        CompiledExpr::And(es) => {
            if want {
                es.iter().all(|e| can_set(e, true, states))
            } else {
                es.iter().any(|e| can_set(e, false, states))
            }
        }
        CompiledExpr::Or(es) => {
            if want {
                es.iter().any(|e| can_set(e, true, states))
            } else {
                es.iter().all(|e| can_set(e, false, states))
            }
        }
    }
}

/// One dataflow edge in the flat CSR adjacency arrays. `other` is the
/// far endpoint (target for forward edges, source for backward edges);
/// `slot` is the guarding multiplexer's slot (`u32::MAX` for plain
/// edges) and `k` its input index. The guarding mux is the edge's target
/// node in both directions, so its slot is inlined here to keep the
/// flood inner loop free of `mux_slot` indirections.
#[derive(Debug, Clone, Copy)]
struct CsrEdge {
    other: u32,
    slot: u32,
    k: u32,
}

const NO_MUX: u32 = u32::MAX;

/// Fault-independent data of one multiplexer: its address bits compiled
/// against the engine's dense control-bit index.
#[derive(Debug, Clone)]
struct MuxInfo {
    node: NodeId,
    addr: Vec<CompiledExpr>,
    inputs: u32,
    /// Driving node of each input, in input order (for incremental edge
    /// enabling: mask bit `k` gained ⇒ edge `input_nodes[k] → node`).
    input_nodes: Vec<NodeId>,
}

/// Reusable, fault-independent accessibility engine over one network.
///
/// Construction precomputes the dense control-bit index, reset states,
/// roots/sinks, per-node edge lists and compiled multiplexer addresses;
/// [`AccessEngine::accessibility`] then evaluates one [`FaultEffect`]
/// using caller-owned [`Scratch`] buffers.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::{AccessEngine, FaultEffect};
///
/// let rsn = fig2();
/// let engine = AccessEngine::new(&rsn);
/// let mut scratch = engine.scratch();
/// let acc = engine.accessibility(&FaultEffect::benign(), &mut scratch);
/// assert_eq!(acc.segment_fraction(), 1.0);
/// ```
#[derive(Debug)]
pub struct AccessEngine {
    rsn: Arc<Rsn>,
    /// All control bits referenced by any multiplexer address, sorted —
    /// position is the dense index used by `CompiledExpr::Bit`.
    bits: Vec<(NodeId, u32)>,
    /// Reset-value bootstrap state per dense bit.
    reset_states: Vec<BitState>,
    /// Dataflow roots (primary + secondary scan-in).
    roots: Vec<NodeId>,
    /// Dataflow sinks (primary + secondary scan-out).
    sinks: Vec<NodeId>,
    /// Compiled multiplexers, in arena order.
    muxes: Vec<MuxInfo>,
    /// node index → index into `muxes` (`u32::MAX` for non-mux nodes).
    mux_slot: Vec<u32>,
    /// CSR offsets into `fwd_edges` (length `node_count + 1`).
    fwd_off: Vec<u32>,
    /// Successor edges, grouped by source node (CSR layout — one flat
    /// allocation so the flood inner loops stay cache-resident).
    fwd_edges: Vec<CsrEdge>,
    /// CSR offsets into `bwd_edges` (length `node_count + 1`).
    bwd_off: Vec<u32>,
    /// Predecessor edges, grouped by target node (CSR layout).
    bwd_edges: Vec<CsrEdge>,
    /// Segment nodes with their scan-bit lengths.
    segments: Vec<(NodeId, u64)>,
    /// Total scan bits over all segments.
    total_bits: u64,
    /// Cached reset configuration.
    reset: Config,
    /// Per-mux configurability masks under the reset control-bit states
    /// (the fault-free round-1 masks — every warm start copies these).
    reset_masks: Vec<u64>,
    /// Fault-free round-1 any-reachability from roots under `reset_masks`.
    /// Any-traversals ignore corruption, so effects without forced bits or
    /// a forced mux can memcpy this instead of re-walking the network.
    baseline_reach_any: Vec<bool>,
    /// Fault-free round-1 any-exit (backward from sinks) under
    /// `reset_masks`; same reuse rule as `baseline_reach_any`.
    baseline_exit_any: Vec<bool>,
    /// Dense bit index → mux slots whose address reads that bit (the
    /// dirty-frontier dependency index: a promoted bit only re-derives the
    /// masks of these muxes).
    bit_muxes: Vec<Vec<u32>>,
    /// Number of distinct control bits each mux's address reads.
    mux_dep_count: Vec<u32>,
    /// Per-mux configurability masks with every control bit fully
    /// controllable. A mux whose address deps are all `both` must have
    /// exactly this mask (`can_set` only reads the deps), so the warm
    /// path's delta rounds copy it instead of re-evaluating the address
    /// expressions — the dominant cost of a sweep on synthesized
    /// networks.
    full_masks: Vec<u64>,
    /// `true` if any mux has more than 64 inputs: those edges bypass the
    /// mask fast path, so incremental mask deltas cannot see them and the
    /// engine falls back to the cold whole-network fixed point.
    wide_mux: bool,
}

/// Caller-owned per-fault working memory of an [`AccessEngine`].
///
/// One `Scratch` serves any number of sequential `accessibility` calls on
/// the engine that created it; parallel sweeps use one per worker.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Attainable-value state per dense control bit.
    states: Vec<BitState>,
    /// Per-node cleanliness under the current fault.
    clean: Vec<bool>,
    reach_clean: Vec<bool>,
    reach_any: Vec<bool>,
    /// Backward any-reachability from sinks (the fixed point's exit set).
    can_exit: Vec<bool>,
    /// Backward *clean* reachability from sinks (the final verdict's exit
    /// set — kept separate so the warm path never clobbers `can_exit`).
    exit_clean: Vec<bool>,
    /// DFS stack shared by all traversals.
    stack: Vec<NodeId>,
    /// Per-mux configurable-input bitmask for the current round (bit `k`
    /// set ⇔ input `k` selectable; inputs ≥ 64 use the slow path).
    mux_mask: Vec<u64>,
    /// Per-address-bit `(can0, can1)` staging used while building masks.
    addr_can: Vec<(bool, bool)>,
    /// Warm-path worklist: dense bit indices not yet fully controllable.
    pending: Vec<u32>,
    /// Warm-path bits promoted in the current round.
    changed: Vec<u32>,
    /// Warm-path mux slots whose mask may have grown this round.
    touched: Vec<u32>,
    /// Per-slot dedup stamp for `touched` (`== stamp` ⇔ already queued
    /// this round); replaces a sort + dedup in the round hot loop.
    touch_stamp: Vec<u32>,
    /// Current round's stamp value.
    stamp: u32,
    /// Per-mux count of address deps not yet fully controllable; at zero
    /// the mask is the engine's precomputed `full_masks` entry.
    deps_not_both: Vec<u32>,
    /// Warm-path newly enabled edges `(src, mux, input)` this round.
    new_edges: Vec<(NodeId, NodeId, u32)>,
}

// Compile-time guarantee: the engine stays shareable across threads
// (sweep workers and resident-service requests hold `&`/`Arc` views).
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<AccessEngine>()
};

impl AccessEngine {
    /// Precomputes all fault-independent state of `rsn`.
    ///
    /// Clones the network into an [`Arc`]; callers that already hold one
    /// use [`AccessEngine::from_arc`] to share it instead.
    pub fn new(rsn: &Rsn) -> Self {
        AccessEngine::from_arc(Arc::new(rsn.clone()))
    }

    /// Precomputes all fault-independent state of a shared network. The
    /// engine owns (a handle to) the network, so it carries no borrow —
    /// cacheable and shareable across threads/requests.
    pub fn from_arc(rsn_arc: Arc<Rsn>) -> Self {
        let rsn: &Rsn = &rsn_arc;
        let n = rsn.node_count();

        // Dense control-bit index: every register bit referenced by any
        // multiplexer address, sorted and deduplicated.
        let mut bits = Vec::new();
        for m in rsn.muxes() {
            for expr in &rsn
                .node(m)
                .as_mux()
                .expect("muxes() yields muxes")
                .addr_bits
            {
                expr.collect_reg_refs(&mut bits);
            }
        }
        bits.sort_unstable();
        bits.dedup();

        let reset = rsn.reset_config();
        let reset_states: Vec<BitState> = bits
            .iter()
            .map(|&(node, bit)| {
                let v = match rsn.shadow_offset(node) {
                    Some(off) => reset.bit((off + bit) as usize),
                    None => false,
                };
                BitState::known(v)
            })
            .collect();

        // Compiled multiplexers and edge lists.
        let lookup = |node: NodeId, bit: u32| -> Option<u32> {
            bits.binary_search(&(node, bit)).ok().map(|i| i as u32)
        };
        let mut muxes = Vec::new();
        let mut mux_slot = vec![u32::MAX; n];
        let mut fwd: Vec<Vec<CsrEdge>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<CsrEdge>> = vec![Vec::new(); n];
        for id in rsn.node_ids() {
            match rsn.node(id).kind() {
                NodeKind::Mux(m) => {
                    let slot = muxes.len() as u32;
                    mux_slot[id.index()] = slot;
                    muxes.push(MuxInfo {
                        node: id,
                        addr: m
                            .addr_bits
                            .iter()
                            .map(|e| e.compile(&mut |node, bit| lookup(node, bit)))
                            .collect(),
                        inputs: m.inputs.len() as u32,
                        input_nodes: m.inputs.clone(),
                    });
                    for (k, &inp) in m.inputs.iter().enumerate() {
                        fwd[inp.index()].push(CsrEdge {
                            other: id.index() as u32,
                            slot,
                            k: k as u32,
                        });
                        bwd[id.index()].push(CsrEdge {
                            other: inp.index() as u32,
                            slot,
                            k: k as u32,
                        });
                    }
                }
                _ => {
                    if let Some(src) = rsn.node(id).source() {
                        fwd[src.index()].push(CsrEdge {
                            other: id.index() as u32,
                            slot: NO_MUX,
                            k: 0,
                        });
                        bwd[id.index()].push(CsrEdge {
                            other: src.index() as u32,
                            slot: NO_MUX,
                            k: 0,
                        });
                    }
                }
            }
        }
        let flatten = |lists: Vec<Vec<CsrEdge>>| -> (Vec<u32>, Vec<CsrEdge>) {
            let mut off = Vec::with_capacity(lists.len() + 1);
            let mut edges = Vec::with_capacity(lists.iter().map(Vec::len).sum());
            off.push(0);
            for list in lists {
                edges.extend_from_slice(&list);
                off.push(edges.len() as u32);
            }
            (off, edges)
        };
        let (fwd_off, fwd_edges) = flatten(fwd);
        let (bwd_off, bwd_edges) = flatten(bwd);

        let mut roots = vec![rsn.scan_in()];
        roots.extend(rsn.secondary_scan_in());
        let mut sinks = vec![rsn.scan_out()];
        sinks.extend(rsn.secondary_scan_out());

        let segments: Vec<(NodeId, u64)> = rsn
            .segments()
            .map(|s| {
                (
                    s,
                    rsn.node(s)
                        .as_segment()
                        .expect("segments() yields segments")
                        .length as u64,
                )
            })
            .collect();
        let total_bits = segments.iter().map(|&(_, l)| l).sum();

        // Bit → mux dependency index and the wide-mux escape hatch.
        let mut bit_muxes: Vec<Vec<u32>> = vec![Vec::new(); bits.len()];
        let mut mux_dep_count = vec![0u32; muxes.len()];
        let mut refs = Vec::new();
        for (slot, info) in muxes.iter().enumerate() {
            for e in &info.addr {
                e.collect_bits(&mut refs);
            }
            refs.sort_unstable();
            refs.dedup();
            mux_dep_count[slot] = refs.len() as u32;
            for &b in &refs {
                bit_muxes[b as usize].push(slot as u32);
            }
            refs.clear();
        }
        let wide_mux = muxes.iter().any(|m| m.inputs > 64);

        let mut engine = AccessEngine {
            rsn: Arc::clone(&rsn_arc),
            bits,
            reset_states,
            roots,
            sinks,
            muxes,
            mux_slot,
            fwd_off,
            fwd_edges,
            bwd_off,
            bwd_edges,
            segments,
            total_bits,
            reset,
            reset_masks: Vec::new(),
            baseline_reach_any: Vec::new(),
            baseline_exit_any: Vec::new(),
            bit_muxes,
            mux_dep_count,
            full_masks: Vec::new(),
            wide_mux,
        };

        // Fault-free baseline caches: reset-state masks, the round-1
        // any-traversals, and the all-bits-controllable masks. Computed
        // once per engine; every warm start copies these instead of
        // re-deriving them.
        let benign = FaultEffect::benign();
        let mut scratch = engine.scratch();
        scratch.states.copy_from_slice(&engine.reset_states);
        engine.refresh_masks(&benign, &mut scratch);
        engine.reset_masks = scratch.mux_mask.clone();
        engine.forward(&benign, &mut scratch, false);
        engine.backward(&benign, &mut scratch, false);
        engine.baseline_reach_any = scratch.reach_any.clone();
        engine.baseline_exit_any = scratch.can_exit.clone();
        for s in scratch.states.iter_mut() {
            *s = s.both();
        }
        engine.refresh_masks(&benign, &mut scratch);
        engine.full_masks = scratch.mux_mask.clone();
        engine
    }

    /// The network this engine was built for.
    pub fn rsn(&self) -> &Rsn {
        &self.rsn
    }

    /// A shared handle to the network this engine was built for.
    pub fn rsn_arc(&self) -> Arc<Rsn> {
        Arc::clone(&self.rsn)
    }

    /// The cached reset configuration of the network.
    pub fn reset_config(&self) -> &Config {
        &self.reset
    }

    /// Dataflow roots (primary + secondary scan-in ports).
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Dataflow sinks (primary + secondary scan-out ports).
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Number of control bits in the dense index.
    pub fn control_bit_count(&self) -> usize {
        self.bits.len()
    }

    /// Allocates a [`Scratch`] sized for this engine.
    pub fn scratch(&self) -> Scratch {
        let n = self.rsn.node_count();
        Scratch {
            states: vec![BitState::known(false); self.bits.len()],
            clean: vec![true; n],
            reach_clean: vec![false; n],
            reach_any: vec![false; n],
            can_exit: vec![false; n],
            exit_clean: vec![false; n],
            stack: Vec::with_capacity(n),
            mux_mask: vec![0; self.muxes.len()],
            addr_can: Vec::with_capacity(8),
            pending: Vec::with_capacity(self.bits.len()),
            changed: Vec::new(),
            touched: Vec::new(),
            touch_stamp: vec![0; self.muxes.len()],
            stamp: 0,
            deps_not_both: vec![0; self.muxes.len()],
            new_edges: Vec::new(),
        }
    }

    /// Rebuilds the per-mux configurable-input masks from the current
    /// control-bit states (called once per fixed-point round — states
    /// only change *between* traversals).
    fn refresh_masks(&self, effect: &FaultEffect, scratch: &mut Scratch) {
        for slot in 0..self.muxes.len() {
            if let Some(&forced) = effect.forced_mux.get(&self.muxes[slot].node) {
                scratch.mux_mask[slot] = if forced < 64 { 1u64 << forced } else { 0 };
                continue;
            }
            scratch.mux_mask[slot] = self.mask_for(slot, scratch);
        }
    }

    /// Derives one mux's configurable-input mask from the current
    /// control-bit states (per-address-bit attainability, combined per
    /// input index). Does not apply `forced_mux` pins — callers do.
    fn mask_for(&self, slot: usize, scratch: &mut Scratch) -> u64 {
        let info = &self.muxes[slot];
        scratch.addr_can.clear();
        for e in &info.addr {
            scratch.addr_can.push((
                can_set(e, false, &scratch.states),
                can_set(e, true, &scratch.states),
            ));
        }
        let mut mask = 0u64;
        for k in 0..info.inputs.min(64) {
            let ok =
                scratch.addr_can.iter().enumerate().all(
                    |(i, &(c0, c1))| {
                        if (k >> i) & 1 == 1 {
                            c1
                        } else {
                            c0
                        }
                    },
                );
            if ok {
                mask |= 1 << k;
            }
        }
        mask
    }

    /// `true` if input `k` of the mux in `slot` can be selected under the
    /// current states (mask fast path; direct evaluation for inputs ≥ 64).
    fn configurable_slot(
        &self,
        effect: &FaultEffect,
        scratch: &Scratch,
        slot: u32,
        k: u32,
    ) -> bool {
        if k < 64 {
            return scratch.mux_mask[slot as usize] & (1 << k) != 0;
        }
        let info = &self.muxes[slot as usize];
        if let Some(&forced) = effect.forced_mux.get(&info.node) {
            return forced == k as usize;
        }
        info.addr.iter().enumerate().all(|(i, e)| {
            let want = (k >> i) & 1 == 1;
            can_set(e, want, &scratch.states)
        })
    }

    /// Forward reachability from roots into `out`. `require_clean`
    /// restricts traversal to clean nodes and uncorrupted edges.
    fn forward(&self, effect: &FaultEffect, scratch: &mut Scratch, require_clean: bool) {
        let mut out = std::mem::take(if require_clean {
            &mut scratch.reach_clean
        } else {
            &mut scratch.reach_any
        });
        out.fill(false);
        scratch.stack.clear();
        for &r in &self.roots {
            if !require_clean || scratch.clean[r.index()] {
                out[r.index()] = true;
                scratch.stack.push(r);
            }
        }
        self.flood_forward(effect, scratch, require_clean, &mut out);
        if require_clean {
            scratch.reach_clean = out;
        } else {
            scratch.reach_any = out;
        }
    }

    /// Drains `scratch.stack`, growing `out` along forward edges under the
    /// current masks (the DFS body shared by full and incremental forward
    /// traversals — seeds must already be marked in `out`).
    fn flood_forward(
        &self,
        effect: &FaultEffect,
        scratch: &mut Scratch,
        require_clean: bool,
        out: &mut [bool],
    ) {
        let mut stack = std::mem::take(&mut scratch.stack);
        while let Some(u) = stack.pop() {
            let (lo, hi) = (self.fwd_off[u.index()], self.fwd_off[u.index() + 1]);
            for e in &self.fwd_edges[lo as usize..hi as usize] {
                let vi = e.other as usize;
                if out[vi] {
                    continue;
                }
                if require_clean && !scratch.clean[vi] {
                    continue;
                }
                let edge_ok = e.slot == NO_MUX || {
                    self.configurable_slot(effect, scratch, e.slot, e.k)
                        && (!require_clean
                            || !effect
                                .corrupt_mux_inputs
                                .contains(&(NodeId(e.other), e.k as usize)))
                };
                if edge_ok {
                    out[vi] = true;
                    stack.push(NodeId(e.other));
                }
            }
        }
        scratch.stack = stack;
    }

    /// Backward reachability from sinks: the any variant fills
    /// `scratch.can_exit` (the fixed point's exit set), the clean variant
    /// fills `scratch.exit_clean` (the final verdict's exit set).
    fn backward(&self, effect: &FaultEffect, scratch: &mut Scratch, require_clean: bool) {
        let mut out = std::mem::take(if require_clean {
            &mut scratch.exit_clean
        } else {
            &mut scratch.can_exit
        });
        out.fill(false);
        scratch.stack.clear();
        for &s in &self.sinks {
            if !require_clean || scratch.clean[s.index()] {
                out[s.index()] = true;
                scratch.stack.push(s);
            }
        }
        self.flood_backward(effect, scratch, require_clean, &mut out);
        if require_clean {
            scratch.exit_clean = out;
        } else {
            scratch.can_exit = out;
        }
    }

    /// Drains `scratch.stack`, growing `out` along backward edges (the
    /// DFS body shared by full and incremental backward traversals).
    fn flood_backward(
        &self,
        effect: &FaultEffect,
        scratch: &mut Scratch,
        require_clean: bool,
        out: &mut [bool],
    ) {
        let mut stack = std::mem::take(&mut scratch.stack);
        while let Some(v) = stack.pop() {
            let (lo, hi) = (self.bwd_off[v.index()], self.bwd_off[v.index() + 1]);
            for e in &self.bwd_edges[lo as usize..hi as usize] {
                let ui = e.other as usize;
                if out[ui] {
                    continue;
                }
                if require_clean && !scratch.clean[ui] {
                    continue;
                }
                let edge_ok = e.slot == NO_MUX || {
                    self.configurable_slot(effect, scratch, e.slot, e.k)
                        && (!require_clean
                            || !effect.corrupt_mux_inputs.contains(&(v, e.k as usize)))
                };
                if edge_ok {
                    out[ui] = true;
                    stack.push(NodeId(e.other));
                }
            }
        }
        scratch.stack = stack;
    }

    /// Loads the per-fault bootstrap into `scratch` (cleanliness and
    /// initial control-bit states).
    fn load_effect(&self, effect: &FaultEffect, scratch: &mut Scratch) {
        scratch.clean.fill(true);
        for &c in &effect.corrupt_nodes {
            scratch.clean[c.index()] = false;
        }
        // Fault-pinned bits are fixed; bits of a corrupt register are NOT
        // pinned: they hold the reset value until the first CSU through
        // the fault, and the dirty-growth rule adds the stuck value. All
        // other bits start at their reset value and are promoted to
        // fully-controllable once their owner is proven writable.
        scratch.states.copy_from_slice(&self.reset_states);
        for (&(node, bit), &v) in &effect.forced_bits {
            if let Ok(i) = self.bits.binary_search(&(node, bit)) {
                scratch.states[i] = BitState::pinned(v);
            }
        }
    }

    /// Runs the control-writability fixed point: grow the attainable-value
    /// sets from the bootstrap (reset) configuration. A bit becomes fully
    /// controllable when its owner has a *clean* configurable write path;
    /// a *dirty* write path (through the fault site) still
    /// deterministically delivers the fault's stuck value, so it adds
    /// exactly that value (the adapted transition relation of Sec. III-A).
    /// Monotone increasing, hence terminating; starting pessimistic keeps
    /// the verdict sound. Returns the number of rounds run.
    fn fixed_point(&self, effect: &FaultEffect, scratch: &mut Scratch) -> u64 {
        let mut rounds_run = 0u64;
        for _ in 0..=2 * self.bits.len() {
            rounds_run += 1;
            self.refresh_masks(effect, scratch);
            self.forward(effect, scratch, true);
            self.forward(effect, scratch, false);
            self.backward(effect, scratch, false);
            let mut changed = false;
            for (i, &(node, _)) in self.bits.iter().enumerate() {
                let cur = scratch.states[i];
                if cur.pinned || cur.is_both() {
                    continue;
                }
                let mut next = cur;
                let ni = node.index();
                if scratch.clean[ni] && scratch.reach_clean[ni] && scratch.can_exit[ni] {
                    next = next.both();
                } else if let Some(stuck) = effect.stuck {
                    if scratch.reach_any[ni] && scratch.can_exit[ni] {
                        next = next.with_value(stuck);
                    }
                }
                if next != cur {
                    scratch.states[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        rounds_run
    }

    /// The warm-start fixed point: identical trajectory to
    /// [`AccessEngine::fixed_point`], but instead of re-deriving every
    /// mask and re-walking the whole network each round it
    ///
    /// 1. memcpys the cached reset masks and (when the effect pins
    ///    nothing) the cached fault-free round-1 any-traversals,
    /// 2. keeps a worklist of still-promotable bits, and
    /// 3. after each promotion round re-derives only the masks of muxes
    ///    whose address reads a promoted bit (`bit_muxes`), growing the
    ///    three reachability sets incrementally from the newly enabled
    ///    edges.
    ///
    /// Exactness: the bit states grow monotonically and `can_set` is
    /// monotone in them, so masks only ever gain bits; a reachability set
    /// grown by flooding from every newly enabled edge equals the set
    /// recomputed from scratch under the grown masks. On convergence
    /// `reach_clean` therefore already equals the final clean forward
    /// pass, and only the clean backward pass still needs a full walk.
    ///
    /// Not valid for engines with > 64-input muxes (edges beyond the mask
    /// fast path would never appear as mask deltas) — callers dispatch on
    /// `wide_mux`.
    fn fixed_point_warm(&self, effect: &FaultEffect, scratch: &mut Scratch) -> u64 {
        debug_assert!(!self.wide_mux);
        // Effects that corrupt nothing (pin-only faults) keep every node
        // clean, so the clean traversals coincide with the any-traversals
        // bit for bit: skip them and copy instead.
        let no_corrupt = effect.corrupt_nodes.is_empty() && effect.corrupt_mux_inputs.is_empty();
        // Round-1 masks: reset masks plus the effect's pins.
        scratch.mux_mask.copy_from_slice(&self.reset_masks);
        let pins = !effect.forced_mux.is_empty() || !effect.forced_bits.is_empty();
        if pins {
            for &(node, bit) in effect.forced_bits.keys() {
                if let Ok(i) = self.bits.binary_search(&(node, bit)) {
                    for &slot in &self.bit_muxes[i] {
                        scratch.mux_mask[slot as usize] = self.mask_for(slot as usize, scratch);
                    }
                }
            }
            for (&m, &forced) in &effect.forced_mux {
                let slot = self.mux_slot[m.index()];
                if slot != u32::MAX {
                    scratch.mux_mask[slot as usize] = if forced < 64 { 1u64 << forced } else { 0 };
                }
            }
        }

        // Round-1 traversals. The any-traversals ignore cleanliness and
        // corrupt edges entirely, so without pins they equal the cached
        // fault-free baselines bit for bit.
        if pins {
            self.forward(effect, scratch, false);
            self.backward(effect, scratch, false);
        } else {
            scratch.reach_any.copy_from_slice(&self.baseline_reach_any);
            scratch.can_exit.copy_from_slice(&self.baseline_exit_any);
        }
        if !no_corrupt {
            self.forward(effect, scratch, true);
        }

        scratch.pending.clear();
        for (i, s) in scratch.states.iter().enumerate() {
            if !s.pinned && !s.is_both() {
                scratch.pending.push(i as u32);
            }
        }
        scratch.deps_not_both.copy_from_slice(&self.mux_dep_count);

        let mut rounds_run = 0u64;
        for _ in 0..=2 * self.bits.len() {
            rounds_run += 1;
            // Promotion round over the unresolved bits (same rule as the
            // cold path; resolved bits leave the worklist). Newly
            // fully-controllable bits retire from their muxes'
            // `deps_not_both` counters.
            scratch.changed.clear();
            let mut kept = 0usize;
            for r in 0..scratch.pending.len() {
                let i = scratch.pending[r] as usize;
                let cur = scratch.states[i];
                let ni = self.bits[i].0.index();
                let mut next = cur;
                let rc = if no_corrupt {
                    scratch.reach_any[ni]
                } else {
                    scratch.clean[ni] && scratch.reach_clean[ni]
                };
                if rc && scratch.can_exit[ni] {
                    next = next.both();
                } else if let Some(stuck) = effect.stuck {
                    if scratch.reach_any[ni] && scratch.can_exit[ni] {
                        next = next.with_value(stuck);
                    }
                }
                if next != cur {
                    scratch.states[i] = next;
                    scratch.changed.push(i as u32);
                    if next.is_both() {
                        for &slot in &self.bit_muxes[i] {
                            scratch.deps_not_both[slot as usize] -= 1;
                        }
                    }
                }
                if !next.is_both() {
                    scratch.pending[kept] = i as u32;
                    kept += 1;
                }
            }
            scratch.pending.truncate(kept);
            if scratch.changed.is_empty() {
                break;
            }

            // Mask deltas: only muxes reading a promoted bit can change,
            // and monotonicity means they only gain input bits. A mux
            // whose deps are all fully controllable copies its
            // precomputed full mask; only muxes straddling the promotion
            // wave re-evaluate their address expressions.
            scratch.stamp = scratch.stamp.wrapping_add(1);
            if scratch.stamp == 0 {
                // Wrapped: invalidate every stale stamp once per 2^32
                // rounds.
                scratch.touch_stamp.fill(u32::MAX);
                scratch.stamp = 1;
            }
            scratch.touched.clear();
            for r in 0..scratch.changed.len() {
                let i = scratch.changed[r] as usize;
                for &slot in &self.bit_muxes[i] {
                    if scratch.touch_stamp[slot as usize] != scratch.stamp {
                        scratch.touch_stamp[slot as usize] = scratch.stamp;
                        scratch.touched.push(slot);
                    }
                }
            }
            let touched = std::mem::take(&mut scratch.touched);
            let mut new_edges = std::mem::take(&mut scratch.new_edges);
            new_edges.clear();
            for &slot in &touched {
                let sl = slot as usize;
                let info = &self.muxes[sl];
                if !effect.forced_mux.is_empty() && effect.forced_mux.contains_key(&info.node) {
                    continue;
                }
                let old = scratch.mux_mask[sl];
                let new = if scratch.deps_not_both[sl] == 0 {
                    self.full_masks[sl]
                } else {
                    self.mask_for(sl, scratch)
                };
                debug_assert_eq!(old & !new, 0, "masks must grow monotonically");
                if new != old {
                    scratch.mux_mask[sl] = new;
                    let mut gained = new & !old;
                    while gained != 0 {
                        let k = gained.trailing_zeros();
                        gained &= gained - 1;
                        new_edges.push((info.input_nodes[k as usize], info.node, k));
                    }
                }
            }
            scratch.touched = touched;

            // Incremental growth of the reachability sets from the newly
            // enabled edges (the clean set needs no growth pass when
            // nothing is corrupt — it is read through `reach_any` then).
            if !new_edges.is_empty() {
                if !no_corrupt {
                    self.expand_forward(effect, scratch, true, &new_edges);
                }
                self.expand_forward(effect, scratch, false, &new_edges);
                self.expand_backward(effect, scratch, &new_edges);
            }
            scratch.new_edges = new_edges;
        }
        if no_corrupt {
            // Re-sync the clean sets the fast path skipped — the verdict
            // and callers read them.
            let (rc, ra) = (&mut scratch.reach_clean, &scratch.reach_any);
            rc.copy_from_slice(ra);
        }
        rounds_run
    }

    /// Grows a forward reachability set from newly enabled mux edges.
    fn expand_forward(
        &self,
        effect: &FaultEffect,
        scratch: &mut Scratch,
        require_clean: bool,
        edges: &[(NodeId, NodeId, u32)],
    ) {
        let mut out = std::mem::take(if require_clean {
            &mut scratch.reach_clean
        } else {
            &mut scratch.reach_any
        });
        scratch.stack.clear();
        for &(src, mux, k) in edges {
            if !out[src.index()] || out[mux.index()] {
                continue;
            }
            if require_clean
                && (!scratch.clean[mux.index()]
                    || effect.corrupt_mux_inputs.contains(&(mux, k as usize)))
            {
                continue;
            }
            out[mux.index()] = true;
            scratch.stack.push(mux);
        }
        self.flood_forward(effect, scratch, require_clean, &mut out);
        if require_clean {
            scratch.reach_clean = out;
        } else {
            scratch.reach_any = out;
        }
    }

    /// Grows the backward any-exit set from newly enabled mux edges.
    fn expand_backward(
        &self,
        effect: &FaultEffect,
        scratch: &mut Scratch,
        edges: &[(NodeId, NodeId, u32)],
    ) {
        let mut out = std::mem::take(&mut scratch.can_exit);
        scratch.stack.clear();
        for &(src, mux, _) in edges {
            if out[mux.index()] && !out[src.index()] {
                out[src.index()] = true;
                scratch.stack.push(src);
            }
        }
        self.flood_backward(effect, scratch, false, &mut out);
        scratch.can_exit = out;
    }

    /// Computes per-segment accessibility under one fault effect, reusing
    /// the engine's precomputation and the caller's scratch buffers.
    ///
    /// Uses the delta-propagation warm start (baseline memcpy + dirty
    /// frontier); engines with > 64-input muxes fall back to
    /// [`AccessEngine::accessibility_cold`]. Both paths produce identical
    /// results — the property tests enforce it.
    pub fn accessibility(&self, effect: &FaultEffect, scratch: &mut Scratch) -> Accessibility {
        if self.wide_mux {
            return self.accessibility_cold(effect, scratch);
        }
        self.load_effect(effect, scratch);
        let rounds_run = self.fixed_point_warm(effect, scratch);
        // One batched export per call keeps registry lock contention out
        // of the per-round hot loop (this runs once per fault). The
        // histogram is the warm-start hit/miss depth distribution: 0
        // rounds means the baseline absorbed the effect outright.
        rsn_obs::counter_add("fault.engine_rounds", rounds_run);
        rsn_obs::hist_record("fault.warm_rounds", rounds_run);
        rsn_obs::debug!(
            "warm fixed point converged after {rounds_run} rounds over {} control bits",
            self.bits.len()
        );
        // reach_clean is maintained incrementally and already final; only
        // the clean exit set needs its (single) full backward walk — and
        // even that collapses to a copy when the effect corrupts nothing
        // (all nodes clean ⇒ clean exit ≡ any exit).
        if effect.corrupt_nodes.is_empty() && effect.corrupt_mux_inputs.is_empty() {
            let (ec, ce) = (&mut scratch.exit_clean, &scratch.can_exit);
            ec.copy_from_slice(ce);
        } else {
            self.backward(effect, scratch, true);
        }
        self.verdict(effect, scratch)
    }

    /// The cold whole-network evaluation (the pre-warm-start path, kept
    /// verbatim): full mask refresh + three full traversals per round.
    /// Reference semantics for the equivalence tests and the fallback for
    /// wide-mux engines.
    pub fn accessibility_cold(&self, effect: &FaultEffect, scratch: &mut Scratch) -> Accessibility {
        self.load_effect(effect, scratch);
        let rounds_run = self.fixed_point(effect, scratch);
        rsn_obs::counter_add("fault.engine_rounds", rounds_run);
        rsn_obs::debug!(
            "fixed point converged after {rounds_run} rounds over {} control bits",
            self.bits.len()
        );

        self.refresh_masks(effect, scratch);
        self.forward(effect, scratch, true);
        self.backward(effect, scratch, true);
        self.verdict(effect, scratch)
    }

    /// Final per-segment verdict from the converged scratch sets.
    fn verdict(&self, effect: &FaultEffect, scratch: &Scratch) -> Accessibility {
        let n = self.rsn.node_count();
        let mut accessible = vec![false; n];
        let mut accessible_segments = 0usize;
        let mut accessible_bits = 0u64;
        for &(seg, len) in &self.segments {
            let si = seg.index();
            let ok = scratch.clean[si]
                && !effect.local_loss.contains(&seg)
                && scratch.reach_clean[si]
                && scratch.exit_clean[si];
            if ok {
                accessible[si] = true;
                accessible_segments += 1;
                accessible_bits += len;
            }
        }

        Accessibility {
            accessible,
            accessible_segments,
            total_segments: self.segments.len(),
            accessible_bits,
            total_bits: self.total_bits,
        }
    }

    /// Diagnostic snapshot of the engine's internal sets for one fault
    /// effect after the fixed point: clean-reachability/clean-exit flags
    /// per node and the list of fully-controllable control bits. Intended
    /// for debugging and tests.
    pub fn internals(
        &self,
        effect: &FaultEffect,
        scratch: &mut Scratch,
    ) -> (Vec<bool>, Vec<bool>, Vec<(NodeId, u32)>) {
        self.load_effect(effect, scratch);
        let rounds_run = self.fixed_point(effect, scratch);
        rsn_obs::counter_add("fault.engine_rounds", rounds_run);
        self.refresh_masks(effect, scratch);
        self.forward(effect, scratch, true);
        self.backward(effect, scratch, true);
        let free: Vec<(NodeId, u32)> = self
            .bits
            .iter()
            .enumerate()
            .filter(|&(i, _)| scratch.states[i].is_both())
            .map(|(_, &b)| b)
            .collect();
        (
            scratch.reach_clean.clone(),
            scratch.exit_clean.clone(),
            free,
        )
    }
}

/// Computes per-segment accessibility under a fault effect.
///
/// One-shot convenience wrapper over [`AccessEngine`]: builds the engine
/// and a scratch, evaluates one effect, and drops both. Callers
/// evaluating more than one fault on the same network should build the
/// engine once and reuse it.
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
/// use rsn_fault::{accessibility, FaultEffect};
///
/// let rsn = fig2();
/// // Fault-free: everything accessible.
/// let acc = accessibility(&rsn, &FaultEffect::benign());
/// assert_eq!(acc.segment_fraction(), 1.0);
/// ```
pub fn accessibility(rsn: &Rsn, effect: &FaultEffect) -> Accessibility {
    let engine = AccessEngine::new(rsn);
    let mut scratch = engine.scratch();
    engine.accessibility(effect, &mut scratch)
}

/// Diagnostic snapshot of the engine's internal sets for one fault effect
/// after the fixed point (see [`AccessEngine::internals`]).
pub fn engine_internals(
    rsn: &Rsn,
    effect: &FaultEffect,
) -> (Vec<bool>, Vec<bool>, Vec<(NodeId, u32)>) {
    let engine = AccessEngine::new(rsn);
    let mut scratch = engine.scratch();
    engine.internals(effect, &mut scratch)
}

/// The original HashMap-based accessibility computation, kept verbatim as
/// a slow reference oracle for the equivalence property tests.
#[cfg(test)]
mod reference {
    use std::collections::HashMap;

    use rsn_core::{Config, ControlExpr, NodeId, NodeKind, Rsn};

    use super::{Accessibility, BitState};
    use crate::effect::FaultEffect;

    fn can_set(expr: &ControlExpr, want: bool, states: &HashMap<(NodeId, u32), BitState>) -> bool {
        match expr {
            ControlExpr::Const(b) => *b == want,
            ControlExpr::Reg(n, bit) => match states.get(&(*n, *bit)) {
                Some(s) => {
                    if want {
                        s.can1
                    } else {
                        s.can0
                    }
                }
                None => false,
            },
            ControlExpr::Input(_) => true, // primary inputs are always drivable
            ControlExpr::Not(e) => can_set(e, !want, states),
            ControlExpr::And(es) => {
                if want {
                    es.iter().all(|e| can_set(e, true, states))
                } else {
                    es.iter().any(|e| can_set(e, false, states))
                }
            }
            ControlExpr::Or(es) => {
                if want {
                    es.iter().any(|e| can_set(e, true, states))
                } else {
                    es.iter().all(|e| can_set(e, false, states))
                }
            }
        }
    }

    struct EngineCtx<'a> {
        rsn: &'a Rsn,
        clean: Vec<bool>,
        corrupt_inputs: HashMap<(NodeId, usize), ()>,
        forced_mux: &'a HashMap<NodeId, usize>,
        states: HashMap<(NodeId, u32), BitState>,
        roots: Vec<NodeId>,
        sinks: Vec<NodeId>,
    }

    impl EngineCtx<'_> {
        fn configurable(&self, m: NodeId, k: usize) -> bool {
            if let Some(&forced) = self.forced_mux.get(&m) {
                return forced == k;
            }
            let mux = self.rsn.node(m).as_mux().expect("mux");
            mux.addr_bits.iter().enumerate().all(|(i, expr)| {
                let want = (k >> i) & 1 == 1;
                can_set(expr, want, &self.states)
            })
        }

        fn forward(&self, require_clean: bool) -> Vec<bool> {
            let n = self.rsn.node_count();
            let mut seen = vec![false; n];
            let mut stack = Vec::new();
            for &r in &self.roots {
                if !require_clean || self.clean[r.index()] {
                    seen[r.index()] = true;
                    stack.push(r);
                }
            }
            while let Some(u) = stack.pop() {
                for &v in self.rsn.successors(u) {
                    if seen[v.index()] {
                        continue;
                    }
                    if require_clean && !self.clean[v.index()] {
                        continue;
                    }
                    let edge_ok = match self.rsn.node(v).kind() {
                        NodeKind::Mux(mux) => mux.inputs.iter().enumerate().any(|(k, &inp)| {
                            inp == u
                                && self.configurable(v, k)
                                && (!require_clean || !self.corrupt_inputs.contains_key(&(v, k)))
                        }),
                        _ => true,
                    };
                    if edge_ok {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
            seen
        }

        fn backward(&self, require_clean: bool) -> Vec<bool> {
            let n = self.rsn.node_count();
            let mut seen = vec![false; n];
            let mut stack = Vec::new();
            for &s in &self.sinks {
                if !require_clean || self.clean[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
            while let Some(v) = stack.pop() {
                let preds: Vec<(NodeId, Option<usize>)> = match self.rsn.node(v).kind() {
                    NodeKind::Mux(mux) => mux
                        .inputs
                        .iter()
                        .enumerate()
                        .map(|(k, &inp)| (inp, Some(k)))
                        .collect(),
                    _ => self
                        .rsn
                        .node(v)
                        .source()
                        .map(|s| (s, None))
                        .into_iter()
                        .collect(),
                };
                for (u, edge) in preds {
                    if seen[u.index()] {
                        continue;
                    }
                    if require_clean && !self.clean[u.index()] {
                        continue;
                    }
                    let edge_ok = match edge {
                        Some(k) => {
                            self.configurable(v, k)
                                && (!require_clean || !self.corrupt_inputs.contains_key(&(v, k)))
                        }
                        None => true,
                    };
                    if edge_ok {
                        seen[u.index()] = true;
                        stack.push(u);
                    }
                }
            }
            seen
        }
    }

    fn control_bits(rsn: &Rsn) -> Vec<(NodeId, u32)> {
        let mut bits = Vec::new();
        for m in rsn.muxes() {
            for expr in &rsn.node(m).as_mux().expect("mux").addr_bits {
                expr.collect_reg_refs(&mut bits);
            }
        }
        bits.sort_unstable();
        bits.dedup();
        bits
    }

    fn reset_bit(cfg: &Config, idx: u32) -> bool {
        cfg.bit(idx as usize)
    }

    /// The pre-engine `accessibility` implementation, verbatim.
    pub fn accessibility(rsn: &Rsn, effect: &FaultEffect) -> Accessibility {
        let n = rsn.node_count();
        let mut clean = vec![true; n];
        for &c in &effect.corrupt_nodes {
            clean[c.index()] = false;
        }
        let corrupt_inputs: HashMap<(NodeId, usize), ()> =
            effect.corrupt_mux_inputs.iter().map(|&e| (e, ())).collect();

        let reset = rsn.reset_config();
        let bits = control_bits(rsn);
        let reset_value = |node: NodeId, bit: u32| -> bool {
            match rsn.shadow_offset(node) {
                Some(off) => reset_bit(&reset, off + bit),
                None => false,
            }
        };
        let states: HashMap<(NodeId, u32), BitState> = bits
            .iter()
            .map(|&(node, bit)| {
                let state = match effect.forced_bits.get(&(node, bit)) {
                    Some(&v) => BitState::pinned(v),
                    None => BitState::known(reset_value(node, bit)),
                };
                ((node, bit), state)
            })
            .collect();

        let mut roots = vec![rsn.scan_in()];
        roots.extend(rsn.secondary_scan_in());
        let mut sinks = vec![rsn.scan_out()];
        sinks.extend(rsn.secondary_scan_out());

        let mut ctx = EngineCtx {
            rsn,
            clean,
            corrupt_inputs,
            forced_mux: &effect.forced_mux,
            states,
            roots,
            sinks,
        };

        for _ in 0..=2 * bits.len() {
            let reach_clean = ctx.forward(true);
            let reach_any = ctx.forward(false);
            let can_exit = ctx.backward(false);
            let mut changed = false;
            for &(node, bit) in &bits {
                let cur = match ctx.states.get(&(node, bit)) {
                    Some(s) if !s.pinned && !s.is_both() => *s,
                    _ => continue,
                };
                let mut next = cur;
                if ctx.clean[node.index()] && reach_clean[node.index()] && can_exit[node.index()] {
                    next = next.both();
                } else if let Some(stuck) = effect.stuck {
                    if reach_any[node.index()] && can_exit[node.index()] {
                        next = next.with_value(stuck);
                    }
                }
                if next != cur {
                    ctx.states.insert((node, bit), next);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let reach_clean = ctx.forward(true);
        let exit_clean = ctx.backward(true);

        let mut accessible = vec![false; n];
        let mut accessible_segments = 0usize;
        let mut total_segments = 0usize;
        let mut accessible_bits = 0u64;
        let mut total_bits = 0u64;
        for seg in rsn.segments() {
            total_segments += 1;
            let len = rsn
                .node(seg)
                .as_segment()
                .expect("segments() yields segments")
                .length as u64;
            total_bits += len;
            let ok = ctx.clean[seg.index()]
                && !effect.local_loss.contains(&seg)
                && reach_clean[seg.index()]
                && exit_clean[seg.index()];
            if ok {
                accessible[seg.index()] = true;
                accessible_segments += 1;
                accessible_bits += len;
            }
        }

        Accessibility {
            accessible,
            accessible_segments,
            total_segments,
            accessible_bits,
            total_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::effect_of;
    use crate::fault::{fault_universe, Fault, FaultSite};
    use crate::metric::HardeningProfile;
    use rsn_core::examples::{chain, fig2, sib_tree};
    use rsn_itc02::parse_soc;
    use rsn_sib::generate;

    fn acc_for(rsn: &Rsn, fault: Fault) -> Accessibility {
        let e = effect_of(rsn, &fault, HardeningProfile::unhardened());
        accessibility(rsn, &e)
    }

    #[test]
    fn fault_free_everything_accessible() {
        let rsn = fig2();
        let acc = accessibility(&rsn, &FaultEffect::benign());
        assert_eq!(acc.accessible_segments, 4);
        assert_eq!(acc.segment_fraction(), 1.0);
        assert_eq!(acc.bit_fraction(), 1.0);
    }

    #[test]
    fn scan_in_fault_disconnects_everything() {
        let rsn = fig2();
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::ScanInPort(rsn.scan_in()),
                value: false,
                weight: 1,
            },
        );
        assert_eq!(acc.accessible_segments, 0);
        assert_eq!(acc.segment_fraction(), 0.0);
    }

    #[test]
    fn fault_on_a_kills_all_of_fig2() {
        // A is on every path in Fig. 2.
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(a),
                value: false,
                weight: 2,
            },
        );
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn fault_on_b_leaves_a_c_d_accessible() {
        // B has the C-branch as an alternative in Fig. 2.
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(b),
                value: false,
                weight: 2,
            },
        );
        assert_eq!(acc.accessible_segments, 3);
        assert!(!acc.accessible[b.index()]);
        for name in ["A", "C", "D"] {
            let id = rsn.find(name).expect("exists");
            assert!(acc.accessible[id.index()], "{name} must stay accessible");
        }
    }

    #[test]
    fn forced_mux_address_limits_branch() {
        // Address stuck at 0 pins the B branch: C inaccessible.
        let rsn = fig2();
        let m = rsn.find("M").expect("mux");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::MuxAddress(m),
                value: false,
                weight: 1,
            },
        );
        let c = rsn.find("C").expect("C");
        let b = rsn.find("B").expect("B");
        assert!(!acc.accessible[c.index()]);
        assert!(acc.accessible[b.index()]);
        assert_eq!(acc.accessible_segments, 3);
    }

    #[test]
    fn control_register_data_fault_freezes_control() {
        // A's data fault: A unwritable, so the mux stays at reset (B
        // branch) — but A itself is corrupt, killing every path anyway.
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(a),
                value: true,
                weight: 2,
            },
        );
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn sib_rsn_fault_in_subtree_spares_other_modules() {
        let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let leaf1 = rsn.find("m1.c0.seg").expect("leaf");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(leaf1),
                value: false,
                weight: 2,
            },
        );
        // Only that leaf is lost: its SIB and module 2 remain accessible.
        assert_eq!(acc.accessible_segments, acc.total_segments - 1);
        assert!(!acc.accessible[leaf1.index()]);
    }

    #[test]
    fn sib_rsn_top_level_sib_fault_kills_everything() {
        let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let sib = rsn.find("m1.sib").expect("sib");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentData(sib),
                value: false,
                weight: 2,
            },
        );
        // The module SIB register sits on the one-and-only top-level chain.
        assert_eq!(acc.accessible_segments, 0);
    }

    #[test]
    fn sib_shadow_stuck_closed_loses_subtree_only() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let sib = rsn.find("m1.sib").expect("sib");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentShadow(sib),
                value: false,
                weight: 1,
            },
        );
        // m1's subtree (2 chain SIBs + 2 leaves) is unreachable; the SIB
        // register itself is still on the scan path and accessible, as is
        // all of m2 and the tdr-free top level.
        let lost = 4;
        assert_eq!(acc.accessible_segments, acc.total_segments - lost);
        assert!(acc.accessible[sib.index()]);
    }

    #[test]
    fn sib_shadow_stuck_open_keeps_everything_accessible() {
        let soc = parse_soc("SocName t\n1 0 0 0 2 : 4 4\n2 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let sib = rsn.find("m1.sib").expect("sib");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::SegmentShadow(sib),
                value: true,
                weight: 1,
            },
        );
        // Stuck-open only forces the subtree onto the path; everything is
        // still reachable and clean.
        assert_eq!(acc.accessible_segments, acc.total_segments);
    }

    #[test]
    fn mux_bypass_input_fault_loses_bypass_only_when_needed() {
        // Bypass input corrupt: paths that need the bypass (i.e. everything
        // while the SIB is closed) must open the SIB instead; all segments
        // remain accessible because opening is always possible.
        let soc = parse_soc("SocName t\n1 0 0 0 1 : 4\n").expect("parse");
        let rsn = generate(&soc).expect("generate");
        let mux = rsn.find("m1.c0.mux").expect("mux");
        let acc = acc_for(
            &rsn,
            Fault {
                site: FaultSite::MuxInput(mux, 0),
                value: false,
                weight: 1,
            },
        );
        assert_eq!(acc.accessible_segments, acc.total_segments);
    }

    #[test]
    fn scratch_is_reusable_across_faults() {
        let rsn = fig2();
        let engine = AccessEngine::new(&rsn);
        let mut scratch = engine.scratch();
        let profile = HardeningProfile::unhardened();
        for fault in fault_universe(&rsn) {
            let effect = effect_of(&rsn, &fault, profile);
            let fresh = engine.accessibility(&effect, &mut engine.scratch());
            let reused = engine.accessibility(&effect, &mut scratch);
            assert_eq!(fresh, reused, "scratch reuse must not leak state");
        }
    }

    #[test]
    fn internals_report_free_bits_in_fault_free_network() {
        let rsn = fig2();
        let (reach, exit, free) = engine_internals(&rsn, &FaultEffect::benign());
        let a = rsn.find("A").expect("A");
        assert!(reach[a.index()] && exit[a.index()]);
        // A[0] is the only control bit and becomes fully controllable.
        assert_eq!(free, vec![(a, 0)]);
    }

    /// Deterministic splitmix64 generator for reproducible random cases.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A random multi-module SIB SoC description: 1–3 modules with 1–3
    /// scan chains of 1–6 bits each.
    fn random_sib_rsn(rng: &mut Rng) -> Rsn {
        let modules = 1 + rng.below(3);
        let mut text = String::from("SocName rand\n");
        for m in 1..=modules {
            let chains = 1 + rng.below(3);
            let lengths: Vec<String> = (0..chains)
                .map(|_| (1 + rng.below(6)).to_string())
                .collect();
            text.push_str(&format!("{m} 0 0 0 {chains} : {}\n", lengths.join(" ")));
        }
        let soc = parse_soc(&text).expect("generated SoC parses");
        generate(&soc).expect("SIB generation succeeds")
    }

    fn assert_engine_matches_reference(rsn: &Rsn, label: &str) {
        let engine = AccessEngine::new(rsn);
        let mut scratch = engine.scratch();
        for profile in [HardeningProfile::unhardened(), HardeningProfile::hardened()] {
            for fault in fault_universe(rsn) {
                let effect = effect_of(rsn, &fault, profile);
                let fast = engine.accessibility(&effect, &mut scratch);
                let cold = engine.accessibility_cold(&effect, &mut scratch);
                let slow = reference::accessibility(rsn, &effect);
                assert_eq!(
                    fast, cold,
                    "{label}: warm/cold engine mismatch under {fault} \
                     (select_hardened {})",
                    profile.select_hardened
                );
                assert_eq!(
                    fast, slow,
                    "{label}: engine/reference mismatch under {fault} \
                     (select_hardened {})",
                    profile.select_hardened
                );
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_examples() {
        assert_engine_matches_reference(&fig2(), "fig2");
        assert_engine_matches_reference(&chain(4, 3), "chain(4,3)");
        assert_engine_matches_reference(&sib_tree(2, 2, 3), "sib_tree(2,2,3)");
    }

    #[test]
    fn engine_matches_reference_on_random_sib_networks() {
        let mut rng = Rng(0x5eed_acce55);
        for case in 0..12 {
            let rsn = random_sib_rsn(&mut rng);
            assert_engine_matches_reference(&rsn, &format!("random case {case}"));
        }
    }

    #[test]
    fn engine_matches_reference_on_synthesized_ft_network() {
        // The FT network exercises secondary ports, XOR mux addresses and
        // hardened muxes — the structurally richest family.
        let rsn = fig2();
        let ft = rsn_synth_like_fixture(&rsn);
        assert_engine_matches_reference(&ft, "fig2 double-branch fixture");
    }

    /// A hand-built network with a secondary scan-in/out and a 4-input
    /// mux, covering engine paths the SIB family never exercises
    /// (multi-bit addresses, multiple roots/sinks). rsn-fault cannot
    /// depend on rsn-synth (cycle), so the fixture is built directly.
    fn rsn_synth_like_fixture(_base: &Rsn) -> Rsn {
        use rsn_core::{ControlExpr, RsnBuilder};
        let mut b = RsnBuilder::new("fixture");
        let ctl = b.add_segment("CTL", 2);
        b.set_select(ctl, ControlExpr::TRUE);
        b.connect(b.scan_in(), ctl);
        let si2 = b.add_secondary_scan_in("scan_in2");
        let s0 = b.add_segment("S0", 2);
        let s1 = b.add_segment("S1", 3);
        let s2 = b.add_segment("S2", 4);
        let s3 = b.add_segment("S3", 5);
        for s in [s0, s1, s2, s3] {
            b.set_select(s, ControlExpr::TRUE);
        }
        b.connect(ctl, s0);
        b.connect(ctl, s1);
        b.connect(si2, s2);
        b.connect(si2, s3);
        let m = b.add_mux(
            "M4",
            vec![s0, s1, s2, s3],
            vec![ControlExpr::reg(ctl, 0), ControlExpr::reg(ctl, 1)],
        );
        let so2 = b.add_secondary_scan_out("scan_out2");
        b.connect(s3, so2);
        b.connect(m, b.scan_out());
        b.finish().expect("fixture is structurally valid")
    }
}
