//! ITC'02 SoC benchmark descriptions: parser and embedded suite.
//!
//! The paper's evaluation (Sec. IV-A) generates SIB-based RSNs from the
//! ITC'02 system-on-chip benchmarks. The original `.soc` files are not
//! redistributable, so this crate provides:
//!
//! * [`Soc`] — the SoC model consumed by the SIB-RSN generator: a set of
//!   (possibly hierarchically nested) modules, each with scan chains, plus
//!   optional direct top-level test data registers.
//! * [`parse_soc`] — a parser for the classic ITC'02 `.soc` line format, so
//!   real benchmark files can be dropped in.
//! * [`suite()`] / [`by_name`] — an embedded 13-SoC suite (u226 … p93791)
//!   fitted so that the *generated SIB-RSN characteristics* (multiplexers,
//!   segments, scan bits, hierarchy levels) match Table I of the paper
//!   exactly; chain-length distributions are seeded deterministically.
//! * [`TableTargets`] — the reference values reported in the paper's
//!   Table I, for paper-vs-measured comparisons in benches and tests.
//!
//! # Example
//!
//! ```
//! use rsn_itc02::by_name;
//!
//! let soc = by_name("u226").expect("embedded");
//! assert_eq!(soc.modules.len(), 10);
//! assert_eq!(soc.total_chains(), 39);
//! ```

pub mod parser;
pub mod soc;
pub mod suite;

pub use parser::{parse_soc, ParseSocError, SocErrorKind};
pub use soc::{Module, Soc};
pub use suite::{by_name, suite, table_targets, TableTargets, TABLE1};
