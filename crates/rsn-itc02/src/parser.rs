//! Parser for the classic ITC'02 `.soc` line format.
//!
//! The dialect accepted here covers the common distribution format:
//!
//! ```text
//! # comment lines start with '#' or '//'
//! SocName d695            (optional header; bare name also accepted)
//! 1 32 32 0 6 : 205 183 160 150 120 100
//! 2 16 16 0 0
//! ```
//!
//! Each module line is: `<module-id> <inputs> <outputs> <bidirs>
//! <num-chains> [ : <len> ... ]`. Inputs/outputs/bidirs are accepted and
//! ignored (they concern test scheduling, not RSN structure). Hierarchy is
//! not expressible in the classic format; all modules are top-level.

use std::fmt;

use crate::soc::{Module, Soc};

/// What went wrong, independent of the human-readable message. Lets
/// callers and tests match on the failure class without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocErrorKind {
    /// A token that should have been a number was not.
    BadNumber,
    /// A numeric field was negative.
    NegativeValue,
    /// A chain length or register width exceeds the representable range.
    WidthOutOfRange,
    /// A module line ended before the five mandatory fields.
    TruncatedLine,
    /// The declared chain count disagrees with the listed lengths.
    ChainCountMismatch,
    /// A chain of length zero was declared.
    ZeroLengthChain,
    /// Two module lines carry the same module id.
    DuplicateModule,
    /// A token that fits no production of the grammar.
    UnexpectedToken,
    /// The assembled [`Soc`] failed [`Soc::validate`].
    InvalidStructure,
}

/// Error from [`parse_soc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSocError {
    /// 1-based line number (0 for whole-file validation errors).
    pub line: usize,
    /// Failure class.
    pub kind: SocErrorKind,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseSocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soc parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSocError {}

/// Parses ITC'02 `.soc` text into a [`Soc`].
///
/// # Errors
///
/// Returns [`ParseSocError`] on malformed module lines or chain-count
/// mismatches.
///
/// # Example
///
/// ```
/// use rsn_itc02::parse_soc;
///
/// let soc = parse_soc("SocName tiny\n1 8 8 0 2 : 10 20\n2 4 4 0 0\n")?;
/// assert_eq!(soc.name, "tiny");
/// assert_eq!(soc.modules.len(), 2);
/// assert_eq!(soc.modules[0].chains, vec![10, 20]);
/// # Ok::<(), rsn_itc02::ParseSocError>(())
/// ```
pub fn parse_soc(text: &str) -> Result<Soc, ParseSocError> {
    let mut soc = Soc::default();
    let mut seen_ids = std::collections::HashSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let err = |kind: SocErrorKind, message: String| ParseSocError {
            line: lineno + 1,
            kind,
            message,
        };
        // Header forms: "SocName <name>" or a single bare non-numeric token.
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens[0].eq_ignore_ascii_case("socname") {
            soc.name = tokens.get(1).unwrap_or(&"").to_string();
            continue;
        }
        if tokens.len() == 1 && tokens[0].parse::<u64>().is_err() {
            if soc.name.is_empty() {
                soc.name = tokens[0].to_string();
                continue;
            }
            return Err(err(
                SocErrorKind::UnexpectedToken,
                format!("unexpected token {:?}", tokens[0]),
            ));
        }
        // Module line.
        let mut nums = Vec::new();
        let mut after_colon = false;
        let mut lens: Vec<u32> = Vec::new();
        for t in &tokens {
            if *t == ":" {
                after_colon = true;
                continue;
            }
            let v: i64 = t
                .trim_end_matches(':')
                .parse()
                .map_err(|e| err(SocErrorKind::BadNumber, format!("bad number {t:?}: {e}")))?;
            if v < 0 {
                return Err(err(
                    SocErrorKind::NegativeValue,
                    format!("negative value {v}"),
                ));
            }
            if after_colon {
                lens.push(chain_len(v).map_err(|m| err(SocErrorKind::WidthOutOfRange, m))?);
            } else {
                nums.push(v as u64);
            }
            if t.ends_with(':') && *t != ":" {
                after_colon = true;
            }
        }
        if nums.len() < 5 {
            return Err(err(
                SocErrorKind::TruncatedLine,
                format!(
                    "module line needs 5 numbers (id in out bidir chains), got {}",
                    nums.len()
                ),
            ));
        }
        let declared_chains = nums[4] as usize;
        // Chain lengths may also follow without a colon.
        if lens.is_empty() && nums.len() > 5 {
            for &v in &nums[5..] {
                lens.push(chain_len(v as i64).map_err(|m| err(SocErrorKind::WidthOutOfRange, m))?);
            }
        }
        if lens.len() != declared_chains {
            return Err(err(
                SocErrorKind::ChainCountMismatch,
                format!(
                    "module {} declares {declared_chains} chains but lists {}",
                    nums[0],
                    lens.len()
                ),
            ));
        }
        if lens.contains(&0) {
            return Err(err(
                SocErrorKind::ZeroLengthChain,
                format!("module {} has a zero-length chain", nums[0]),
            ));
        }
        if !seen_ids.insert(nums[0]) {
            return Err(err(
                SocErrorKind::DuplicateModule,
                format!("duplicate module id {}", nums[0]),
            ));
        }
        soc.modules.push(Module::top(format!("m{}", nums[0]), lens));
    }
    if soc.name.is_empty() {
        soc.name = "unnamed".into();
    }
    soc.validate().map_err(|m| ParseSocError {
        line: 0,
        kind: SocErrorKind::InvalidStructure,
        message: m,
    })?;
    Ok(soc)
}

/// Range-checks a chain length: ITC'02 widths must fit `u32` (anything
/// larger would already have silently truncated under `as u32`).
fn chain_len(v: i64) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| format!("chain length {v} exceeds u32 range"))
}

/// Emits a [`Soc`] in the classic line format (hierarchy flattened; only
/// chain structure survives the round trip).
pub fn to_soc_text(soc: &Soc) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "SocName {}", soc.name);
    for (i, m) in soc.modules.iter().enumerate() {
        let _ = write!(out, "{} 0 0 0 {}", i + 1, m.chains.len());
        if !m.chains.is_empty() {
            let _ = write!(out, " :");
            for c in &m.chains {
                let _ = write!(out, " {c}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "# ITC'02 style\nSocName d695x\n1 32 32 0 3 : 10 20 30\n2 8 8 0 0\n";
        let soc = parse_soc(text).expect("parse");
        assert_eq!(soc.name, "d695x");
        assert_eq!(soc.modules.len(), 2);
        assert_eq!(soc.modules[0].chains, vec![10, 20, 30]);
        assert!(soc.modules[1].chains.is_empty());
    }

    #[test]
    fn bare_name_header() {
        let soc = parse_soc("mychip\n1 0 0 0 1 : 5\n").expect("parse");
        assert_eq!(soc.name, "mychip");
    }

    #[test]
    fn chain_count_mismatch_is_error() {
        let err = parse_soc("1 0 0 0 2 : 5\n").unwrap_err();
        assert!(err.message.contains("declares 2 chains"));
    }

    #[test]
    fn lengths_without_colon() {
        let soc = parse_soc("1 0 0 0 2 7 9\n").expect("parse");
        assert_eq!(soc.modules[0].chains, vec![7, 9]);
    }

    #[test]
    fn zero_length_chain_is_error() {
        assert!(parse_soc("1 0 0 0 1 : 0\n").is_err());
    }

    #[test]
    fn short_module_line_is_error() {
        let err = parse_soc("1 0 0\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::TruncatedLine);
        assert_eq!(err.line, 1);
        assert!(err.message.contains("5 numbers"));
    }

    #[test]
    fn truncated_chain_list_is_error() {
        // Declares 3 chains, file cut off after the second length.
        let err = parse_soc("SocName cut\n1 0 0 0 3 : 10 20").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::ChainCountMismatch);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn oversized_chain_width_is_error_not_truncation() {
        // 2^32 used to wrap to 0 under `as u32`; it must be rejected.
        let err = parse_soc("1 0 0 0 1 : 4294967296\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::WidthOutOfRange);
        let err = parse_soc("1 0 0 0 1 4294967296\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::WidthOutOfRange);
    }

    #[test]
    fn duplicate_module_id_is_error() {
        let err = parse_soc("1 0 0 0 1 : 5\n2 0 0 0 1 : 6\n1 0 0 0 1 : 7\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::DuplicateModule);
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate module id 1"));
    }

    #[test]
    fn duplicate_module_name_fails_validation() {
        use crate::soc::{Module, Soc};
        let soc = Soc {
            name: "dup".into(),
            modules: vec![Module::top("x", vec![1]), Module::top("x", vec![2])],
            top_registers: vec![],
        };
        assert!(soc
            .validate()
            .unwrap_err()
            .contains("duplicate module name"));
    }

    #[test]
    fn non_numeric_field_is_error() {
        let err = parse_soc("1 0 zz 0 1 : 5\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::BadNumber);
        let err = parse_soc("1 0 -3 0 1 : 5\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::NegativeValue);
    }

    #[test]
    fn stray_token_after_header_is_error() {
        let err = parse_soc("SocName a\nstray\n").unwrap_err();
        assert_eq!(err.kind, SocErrorKind::UnexpectedToken);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip_through_text() {
        let soc = parse_soc("SocName x\n1 0 0 0 2 : 3 4\n2 0 0 0 1 : 9\n").expect("parse");
        let text = to_soc_text(&soc);
        let soc2 = parse_soc(&text).expect("reparse");
        assert_eq!(soc.name, soc2.name);
        assert_eq!(
            soc.modules.iter().map(|m| &m.chains).collect::<Vec<_>>(),
            soc2.modules.iter().map(|m| &m.chains).collect::<Vec<_>>()
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let soc = parse_soc("\n# c\n// c2\nSocName z\n\n1 1 1 0 1 : 2\n").expect("parse");
        assert_eq!(soc.modules.len(), 1);
    }
}
