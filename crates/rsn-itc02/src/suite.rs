//! The embedded 13-SoC benchmark suite fitted to the paper's Table I.
//!
//! The original ITC'02 `.soc` files are not redistributable, so each SoC is
//! reconstructed from the *RSN characteristics* the paper reports for it
//! (modules, hierarchy levels, multiplexers, scan segments, scan bits).
//! The reconstruction is exact by design: the SIB-based RSN generated from
//! an embedded SoC has precisely the number of multiplexers, segments and
//! bits listed in Table I (see `rsn-sib` for the generation contract):
//!
//! * every module contributes one SIB (1 mux + 1 bit),
//! * every scan chain contributes one SIB plus one leaf segment,
//! * hence `mux = modules + chains` and
//!   `segments = mux + chains + top_registers`,
//! * `bits = mux + payload bits`.
//!
//! Chain counts per module and chain lengths are drawn from a
//! deterministic, name-seeded generator, so the suite is stable across
//! runs and platforms.

use crate::soc::{Module, Soc};

/// Reference values from Table I of the paper, used by benches and
/// integration tests for paper-vs-measured comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableTargets {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of SoC modules connected via the RSN.
    pub modules: usize,
    /// Hierarchical depth of the RSN.
    pub levels: usize,
    /// Number of scan multiplexers.
    pub mux: usize,
    /// Number of scan segments.
    pub segments: usize,
    /// Number of scan bits.
    pub bits: u64,
    /// Paper: average accessibility of bits in the SIB-RSN.
    pub sib_bits_avg: f64,
    /// Paper: average accessibility of segments in the SIB-RSN.
    pub sib_seg_avg: f64,
    /// Paper: worst-case accessibility of bits in the FT-RSN.
    pub ft_bits_worst: f64,
    /// Paper: average accessibility of bits in the FT-RSN.
    pub ft_bits_avg: f64,
    /// Paper: worst-case accessibility of segments in the FT-RSN.
    pub ft_seg_worst: f64,
    /// Paper: average accessibility of segments in the FT-RSN.
    pub ft_seg_avg: f64,
    /// Paper: multiplexer-count ratio FT/original.
    pub ratio_mux: f64,
    /// Paper: scan-bit ratio FT/original.
    pub ratio_bits: f64,
    /// Paper: interconnect (net) ratio FT/original.
    pub ratio_nets: f64,
    /// Paper: area ratio FT/original.
    pub ratio_area: f64,
}

/// Table I of the paper, verbatim.
pub const TABLE1: &[TableTargets] = &[
    TableTargets {
        name: "u226",
        modules: 10,
        levels: 2,
        mux: 49,
        segments: 89,
        bits: 1465,
        sib_bits_avg: 0.71,
        sib_seg_avg: 0.76,
        ft_bits_worst: 0.93,
        ft_bits_avg: 0.994,
        ft_seg_worst: 0.975,
        ft_seg_avg: 0.994,
        ratio_mux: 3.67,
        ratio_bits: 1.38,
        ratio_nets: 1.54,
        ratio_area: 1.56,
    },
    TableTargets {
        name: "d281",
        modules: 9,
        levels: 2,
        mux: 58,
        segments: 108,
        bits: 3871,
        sib_bits_avg: 0.81,
        sib_seg_avg: 0.83,
        ft_bits_worst: 0.79,
        ft_bits_avg: 0.995,
        ft_seg_worst: 0.980,
        ft_seg_avg: 0.995,
        ratio_mux: 3.62,
        ratio_bits: 1.17,
        ratio_nets: 1.24,
        ratio_area: 1.25,
    },
    TableTargets {
        name: "d695",
        modules: 11,
        levels: 2,
        mux: 167,
        segments: 324,
        bits: 8396,
        sib_bits_avg: 0.90,
        sib_seg_avg: 0.90,
        ft_bits_worst: 0.96,
        ft_bits_avg: 0.998,
        ft_seg_worst: 0.994,
        ft_seg_avg: 0.998,
        ratio_mux: 3.54,
        ratio_bits: 1.21,
        ratio_nets: 1.32,
        ratio_area: 1.32,
    },
    TableTargets {
        name: "h953",
        modules: 9,
        levels: 2,
        mux: 54,
        segments: 100,
        bits: 5640,
        sib_bits_avg: 0.85,
        sib_seg_avg: 0.85,
        ft_bits_worst: 0.94,
        ft_bits_avg: 0.995,
        ft_seg_worst: 0.978,
        ft_seg_avg: 0.995,
        ratio_mux: 3.59,
        ratio_bits: 1.10,
        ratio_nets: 1.15,
        ratio_area: 1.16,
    },
    TableTargets {
        name: "g1023",
        modules: 15,
        levels: 2,
        mux: 79,
        segments: 144,
        bits: 5385,
        sib_bits_avg: 0.86,
        sib_seg_avg: 0.86,
        ft_bits_worst: 0.93,
        ft_bits_avg: 0.997,
        ft_seg_worst: 0.985,
        ft_seg_avg: 0.996,
        ratio_mux: 3.53,
        ratio_bits: 1.16,
        ratio_nets: 1.23,
        ratio_area: 1.24,
    },
    TableTargets {
        name: "x1331",
        modules: 7,
        levels: 4,
        mux: 31,
        segments: 56,
        bits: 4023,
        sib_bits_avg: 0.75,
        sib_seg_avg: 0.78,
        ft_bits_worst: 0.86,
        ft_bits_avg: 0.991,
        ft_seg_worst: 0.960,
        ft_seg_avg: 0.991,
        ratio_mux: 3.81,
        ratio_bits: 1.09,
        ratio_nets: 1.13,
        ratio_area: 1.14,
    },
    TableTargets {
        name: "f2126",
        modules: 5,
        levels: 2,
        mux: 40,
        segments: 76,
        bits: 15829,
        sib_bits_avg: 0.78,
        sib_seg_avg: 0.78,
        ft_bits_worst: 0.94,
        ft_bits_avg: 0.993,
        ft_seg_worst: 0.972,
        ft_seg_avg: 0.993,
        ratio_mux: 3.60,
        ratio_bits: 1.03,
        ratio_nets: 1.04,
        ratio_area: 1.04,
    },
    TableTargets {
        name: "q12710",
        modules: 5,
        levels: 2,
        mux: 25,
        segments: 46,
        bits: 26183,
        sib_bits_avg: 0.80,
        sib_seg_avg: 0.80,
        ft_bits_worst: 0.86,
        ft_bits_avg: 0.988,
        ft_seg_worst: 0.952,
        ft_seg_avg: 0.988,
        ratio_mux: 3.56,
        ratio_bits: 1.01,
        ratio_nets: 1.02,
        ratio_area: 1.02,
    },
    TableTargets {
        name: "t512505",
        modules: 31,
        levels: 2,
        mux: 159,
        segments: 287,
        bits: 77005,
        sib_bits_avg: 0.85,
        sib_seg_avg: 0.87,
        ft_bits_worst: 0.98,
        ft_bits_avg: 0.998,
        ft_seg_worst: 0.992,
        ft_seg_avg: 0.998,
        ratio_mux: 3.58,
        ratio_bits: 1.02,
        ratio_nets: 1.03,
        ratio_area: 1.03,
    },
    TableTargets {
        name: "a586710",
        modules: 8,
        levels: 3,
        mux: 39,
        segments: 71,
        bits: 41674,
        sib_bits_avg: 0.78,
        sib_seg_avg: 0.79,
        ft_bits_worst: 0.94,
        ft_bits_avg: 0.993,
        ft_seg_worst: 0.969,
        ft_seg_avg: 0.993,
        ratio_mux: 3.72,
        ratio_bits: 1.01,
        ratio_nets: 1.02,
        ratio_area: 1.02,
    },
    TableTargets {
        name: "p22081",
        modules: 29,
        levels: 3,
        mux: 282,
        segments: 536,
        bits: 30110,
        sib_bits_avg: 0.92,
        sib_seg_avg: 0.93,
        ft_bits_worst: 0.99,
        ft_bits_avg: 0.999,
        ft_seg_worst: 0.996,
        ft_seg_avg: 0.999,
        ratio_mux: 3.54,
        ratio_bits: 1.10,
        ratio_nets: 1.15,
        ratio_area: 1.15,
    },
    TableTargets {
        name: "p34392",
        modules: 20,
        levels: 3,
        mux: 122,
        segments: 225,
        bits: 23241,
        sib_bits_avg: 0.87,
        sib_seg_avg: 0.86,
        ft_bits_worst: 0.97,
        ft_bits_avg: 0.998,
        ft_seg_worst: 0.990,
        ft_seg_avg: 0.998,
        ratio_mux: 3.68,
        ratio_bits: 1.06,
        ratio_nets: 1.09,
        ratio_area: 1.09,
    },
    TableTargets {
        name: "p93791",
        modules: 33,
        levels: 3,
        mux: 620,
        segments: 1208,
        bits: 98604,
        sib_bits_avg: 0.66,
        sib_seg_avg: 0.67,
        ft_bits_worst: 0.99,
        ft_bits_avg: 0.999,
        ft_seg_worst: 0.999,
        ft_seg_avg: 0.999,
        ratio_mux: 3.55,
        ratio_bits: 1.07,
        ratio_nets: 1.11,
        ratio_area: 1.10,
    },
];

/// The Table I reference row for a benchmark name.
pub fn table_targets(name: &str) -> Option<&'static TableTargets> {
    TABLE1.iter().find(|t| t.name == name)
}

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng(h | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// Distributes `total` units over `n` buckets, each receiving at least
/// `min`, remainder spread by seeded weights.
fn distribute(rng: &mut Rng, total: u64, n: usize, min: u64) -> Vec<u64> {
    assert!(
        total >= min * n as u64,
        "cannot distribute {total} over {n} with min {min}"
    );
    let mut out = vec![min; n];
    let mut rest = total - min * n as u64;
    if n == 0 {
        return out;
    }
    // Random weights; allocate proportionally, then trickle the remainder.
    let weights: Vec<u64> = (0..n).map(|_| 1 + rng.below(1000)).collect();
    let wsum: u64 = weights.iter().sum();
    for i in 0..n {
        let share = rest * weights[i] / wsum;
        out[i] += share;
    }
    let assigned: u64 = out.iter().sum();
    rest = total - assigned;
    for _ in 0..rest {
        let i = rng.below(n as u64) as usize;
        out[i] += 1;
    }
    out
}

/// Builds one embedded SoC from its Table I characteristics.
///
/// Invariants established here (relied on by the `rsn-sib` generator):
/// * `modules + total_chains == mux`
/// * `mux + total_chains + top_registers.len() == segments`
/// * `mux as u64 + payload_bits == bits`
/// * `depth() == levels - 1`
fn fit(t: &TableTargets) -> Soc {
    let mut rng = Rng::from_name(t.name);
    let m = t.modules;
    let chains_total = t.mux - m;
    let top_regs = t.segments - t.mux - chains_total;
    assert!(chains_total >= m, "{}: fewer chains than modules", t.name);

    // Chains per module: at least one each.
    let per_module = distribute(&mut rng, chains_total as u64, m, 1);

    // Payload bits: everything that is not a SIB bit.
    let payload = t.bits - t.mux as u64;
    // Top registers get a fixed modest share.
    let top_reg_len = 16u64.min(payload / 4).max(1);
    let chain_bits_total = payload - top_reg_len * top_regs as u64;
    let all_chain_lens = distribute(&mut rng, chain_bits_total, chains_total, 1);

    // Hierarchy: levels - 1 tiers of modules. Tier 1 = top. For deeper
    // tiers, nest a third of the remaining modules under the previous
    // tier's first module.
    let depth_target = t.levels - 1;
    let mut parents: Vec<Option<usize>> = vec![None; m];
    if depth_target >= 2 && m >= 2 {
        // How many modules per tier (tier 0 keeps the majority).
        let deep_tiers = depth_target - 1;
        let nested_total = (m / 3).max(deep_tiers).min(m - 1);
        let mut anchor = 0usize; // parent of the next tier
        let mut next = m - nested_total; // nested modules occupy the tail
        for tier in 0..deep_tiers {
            let remaining_tiers = deep_tiers - tier;
            let take = if remaining_tiers == 1 {
                m - next
            } else {
                ((m - next) / remaining_tiers).max(1)
            };
            for i in 0..take {
                parents[next + i] = Some(anchor);
            }
            anchor = next; // first module of this tier anchors the next
            next += take;
            if next >= m {
                break;
            }
        }
    }

    let mut modules = Vec::with_capacity(m);
    let mut chain_iter = all_chain_lens.into_iter();
    for i in 0..m {
        let n_chains = per_module[i] as usize;
        let chains: Vec<u32> = (&mut chain_iter)
            .take(n_chains)
            .map(|c| u32::try_from(c).expect("chain length fits u32"))
            .collect();
        modules.push(Module {
            name: format!("m{i}"),
            parent: parents[i],
            chains,
        });
    }

    let soc = Soc {
        name: t.name.to_string(),
        modules,
        top_registers: vec![top_reg_len as u32; top_regs],
    };
    debug_assert_eq!(soc.validate(), Ok(()));
    soc
}

/// All 13 embedded SoCs, in Table I order.
pub fn suite() -> Vec<Soc> {
    TABLE1.iter().map(fit).collect()
}

/// An embedded SoC by name.
///
/// # Example
///
/// ```
/// use rsn_itc02::by_name;
///
/// assert!(by_name("p93791").is_some());
/// assert!(by_name("nonexistent").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Soc> {
    table_targets(name).map(fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_13_socs_are_present() {
        let socs = suite();
        assert_eq!(socs.len(), 13);
        assert_eq!(socs[0].name, "u226");
        assert_eq!(socs[12].name, "p93791");
    }

    #[test]
    fn characteristics_match_table1() {
        for t in TABLE1 {
            let soc = by_name(t.name).expect("embedded");
            assert_eq!(soc.modules.len(), t.modules, "{}: modules", t.name);
            let chains = soc.total_chains();
            // mux = modules + chains
            assert_eq!(soc.modules.len() + chains, t.mux, "{}: mux", t.name);
            // segments = mux + chains + top registers
            assert_eq!(
                t.mux + chains + soc.top_registers.len(),
                t.segments,
                "{}: segments",
                t.name
            );
            // bits = mux (SIB bits) + payload
            assert_eq!(
                t.mux as u64 + soc.payload_bits(),
                t.bits,
                "{}: bits",
                t.name
            );
            // hierarchy depth = levels - 1
            assert_eq!(soc.depth(), t.levels - 1, "{}: levels", t.name);
            soc.validate().expect("valid");
        }
    }

    #[test]
    fn every_module_has_a_chain() {
        for soc in suite() {
            for m in &soc.modules {
                assert!(
                    !m.chains.is_empty(),
                    "{}: module {} empty",
                    soc.name,
                    m.name
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = by_name("d695").expect("embedded");
        let b = by_name("d695").expect("embedded");
        assert_eq!(a, b);
    }

    #[test]
    fn different_socs_differ() {
        let a = by_name("u226").expect("embedded");
        let b = by_name("d281").expect("embedded");
        assert_ne!(a.modules, b.modules);
    }

    #[test]
    fn table_lookup() {
        let t = table_targets("x1331").expect("exists");
        assert_eq!(t.levels, 4);
        assert!(table_targets("zzz").is_none());
    }

    #[test]
    fn t512505_has_no_top_register() {
        let soc = by_name("t512505").expect("embedded");
        assert!(soc.top_registers.is_empty());
    }

    #[test]
    fn deep_hierarchies_have_expected_depth() {
        assert_eq!(by_name("x1331").expect("x1331").depth(), 3);
        assert_eq!(by_name("p93791").expect("p93791").depth(), 2);
        assert_eq!(by_name("u226").expect("u226").depth(), 1);
    }
}
