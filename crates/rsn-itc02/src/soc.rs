//! SoC data model: hierarchical modules with scan chains.

/// A module (core) of an SoC: a set of scan chains, optionally nested
/// inside a parent module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name (e.g. `"core3"`).
    pub name: String,
    /// Index of the parent module in [`Soc::modules`], `None` for
    /// top-level modules. Parents must precede children.
    pub parent: Option<usize>,
    /// Scan chain lengths in bits (each chain becomes one scan segment).
    pub chains: Vec<u32>,
}

impl Module {
    /// A top-level module with the given chains.
    pub fn top(name: impl Into<String>, chains: Vec<u32>) -> Self {
        Module {
            name: name.into(),
            parent: None,
            chains,
        }
    }

    /// A module nested under `parent`.
    pub fn child(name: impl Into<String>, parent: usize, chains: Vec<u32>) -> Self {
        Module {
            name: name.into(),
            parent: Some(parent),
            chains,
        }
    }

    /// Total scan bits of this module's own chains.
    pub fn chain_bits(&self) -> u64 {
        self.chains.iter().map(|&c| c as u64).sum()
    }
}

/// An SoC description: the input to SIB-based RSN generation.
///
/// # Example
///
/// ```
/// use rsn_itc02::{Module, Soc};
///
/// let soc = Soc {
///     name: "demo".into(),
///     modules: vec![
///         Module::top("m0", vec![8, 16]),
///         Module::child("m0a", 0, vec![4]),
///     ],
///     top_registers: vec![16],
/// };
/// assert_eq!(soc.total_chains(), 3);
/// assert_eq!(soc.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Soc {
    /// Benchmark name (e.g. `"d695"`).
    pub name: String,
    /// Modules; parents must precede children.
    pub modules: Vec<Module>,
    /// Lengths of direct top-level test data registers (always on the
    /// top-level scan path, not guarded by a SIB).
    pub top_registers: Vec<u32>,
}

impl Soc {
    /// Total number of scan chains across all modules.
    pub fn total_chains(&self) -> usize {
        self.modules.iter().map(|m| m.chains.len()).sum()
    }

    /// Total scan bits in chains and top registers (excluding SIB bits,
    /// which belong to the generated RSN, not the SoC).
    pub fn payload_bits(&self) -> u64 {
        self.modules.iter().map(Module::chain_bits).sum::<u64>()
            + self.top_registers.iter().map(|&r| r as u64).sum::<u64>()
    }

    /// Nesting depth of a module (top-level = 1).
    ///
    /// # Panics
    ///
    /// Panics if parent links are cyclic or forward-referencing.
    pub fn module_depth(&self, idx: usize) -> usize {
        let mut depth = 1;
        let mut cur = idx;
        while let Some(p) = self.modules[cur].parent {
            assert!(p < cur, "parents must precede children");
            depth += 1;
            cur = p;
        }
        depth
    }

    /// Maximum module nesting depth (0 for an SoC without modules).
    pub fn depth(&self) -> usize {
        (0..self.modules.len())
            .map(|i| self.module_depth(i))
            .max()
            .unwrap_or(0)
    }

    /// Children of a module.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        (0..self.modules.len())
            .filter(|&i| self.modules[i].parent == Some(idx))
            .collect()
    }

    /// Top-level module indices.
    pub fn top_modules(&self) -> Vec<usize> {
        (0..self.modules.len())
            .filter(|&i| self.modules[i].parent.is_none())
            .collect()
    }

    /// Validates parent ordering and chain sanity.
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        for (i, m) in self.modules.iter().enumerate() {
            if let Some(p) = m.parent {
                if p >= i {
                    return Err(format!(
                        "module {i} ({}) has parent {p} that does not precede it",
                        m.name
                    ));
                }
            }
            if m.chains.contains(&0) {
                return Err(format!("module {i} ({}) has a zero-length chain", m.name));
            }
            if !names.insert(m.name.as_str()) {
                return Err(format!("duplicate module name {:?}", m.name));
            }
        }
        if self.top_registers.contains(&0) {
            return Err("zero-length top register".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Soc {
        Soc {
            name: "demo".into(),
            modules: vec![
                Module::top("a", vec![4, 8]),
                Module::top("b", vec![2]),
                Module::child("a1", 0, vec![16]),
                Module::child("a1x", 2, vec![1]),
            ],
            top_registers: vec![8],
        }
    }

    #[test]
    fn totals() {
        let soc = demo();
        assert_eq!(soc.total_chains(), 5);
        assert_eq!(soc.payload_bits(), 4 + 8 + 2 + 16 + 1 + 8);
    }

    #[test]
    fn depth_and_hierarchy() {
        let soc = demo();
        assert_eq!(soc.module_depth(0), 1);
        assert_eq!(soc.module_depth(2), 2);
        assert_eq!(soc.module_depth(3), 3);
        assert_eq!(soc.depth(), 3);
        assert_eq!(soc.top_modules(), vec![0, 1]);
        assert_eq!(soc.children(0), vec![2]);
        assert_eq!(soc.children(2), vec![3]);
    }

    #[test]
    fn validate_accepts_demo() {
        assert_eq!(demo().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_forward_parent() {
        let soc = Soc {
            name: "bad".into(),
            modules: vec![
                Module {
                    name: "x".into(),
                    parent: Some(1),
                    chains: vec![1],
                },
                Module::top("y", vec![1]),
            ],
            top_registers: vec![],
        };
        assert!(soc.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_chain() {
        let soc = Soc {
            name: "bad".into(),
            modules: vec![Module::top("x", vec![0])],
            top_registers: vec![],
        };
        assert!(soc.validate().is_err());
    }
}
