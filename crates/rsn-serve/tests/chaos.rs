//! Chaos tests: a real daemon over TCP with `rsn-fail` failpoints armed
//! at every layer — engine panics, artifact-build panics, injected
//! parse errors, budget exhaustion, worker-thread deaths — asserting
//! the crash-only contract: the daemon never dies, every failure is a
//! structured 4xx/5xx with `request_metrics`, workers respawn, the
//! circuit breaker trips and recovers, and a clean run after the chaos
//! window behaves as if nothing happened.
//!
//! Failpoints are process-global, so every test takes the `CHAOS` lock
//! and clears the registry before releasing it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rsn_obs::json::Json;
use rsn_serve::{BreakerConfig, Server, ServerHandle, ServerOptions};

static CHAOS: Mutex<()> = Mutex::new(());

fn lock_chaos() -> std::sync::MutexGuard<'static, ()> {
    // A failed assertion in one chaos test must not wedge the others.
    CHAOS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn start(workers: usize) -> (SocketAddr, ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 64,
        deadline: Some(Duration::from_secs(60)),
        breaker: BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(200),
        },
        ..ServerOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

/// One raw HTTP exchange; returns the full response text (head + body).
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

fn request_json(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let raw = raw_request(addr, method, path, body);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    let json = rsn_obs::json::parse(&payload)
        .unwrap_or_else(|e| panic!("{method} {path}: bad JSON ({e}): {payload}"));
    (status, json)
}

fn shutdown(handle: ServerHandle, thread: JoinHandle<std::io::Result<()>>) {
    // Never drain with failpoints still armed: chaos stays inside the test.
    rsn_fail::clear();
    handle.shutdown();
    thread
        .join()
        .expect("server thread must not panic")
        .expect("server run must succeed");
}

/// Retries `req` until it returns 200 or the deadline passes — used for
/// post-chaos recovery where the circuit breaker needs a cooldown plus
/// one successful probe before closing again.
fn eventually_ok(addr: SocketAddr, method: &str, path: &str, body: &str, within: Duration) -> Json {
    let deadline = Instant::now() + within;
    loop {
        let (status, json) = request_json(addr, method, path, body);
        if status == 200 {
            return json;
        }
        assert!(
            Instant::now() < deadline,
            "{method} {path} still failing ({status}) after {within:?}: {json:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The acceptance-bar workload: 100 mixed requests with failpoints
/// armed at every engine entry and inside the serving layer itself. The
/// daemon must survive all of it, answer each request with a structured
/// status, keep `/healthz` green throughout, and serve a clean run
/// (bit-identical to pre-chaos) once the failpoints are cleared.
#[test]
fn mixed_chaos_workload_survives_and_recovers() {
    let _guard = lock_chaos();
    rsn_fail::clear();
    let (addr, handle, thread) = start(4);

    let fig2 = r#"{"example": "fig2"}"#;
    // Pre-chaos baseline for the post-chaos bit-identical comparison.
    let (status, baseline) = request_json(addr, "POST", "/sweep", fig2);
    assert_eq!(status, 200);
    let baseline = baseline.get("report").expect("report").to_string_pretty(0);

    rsn_fail::configure_spec(concat!(
        "sat.solve=panic@0.3,11;",
        "ilp.solve=err@0.5,12;",
        "fault.sweep=delay(5)@0.3,13;",
        "verify.run=budget@0.4,14;",
        "serve.parse=err@0.15,15;",
        "serve.cache=panic@0.25,16"
    ))
    .expect("valid chaos spec");

    let panics_before = rsn_obs::counter_get("serve.panics_caught");
    let jobs: [(&str, &str, &str); 4] = [
        ("POST", "/lint", fig2),
        ("POST", "/sweep", fig2),
        ("POST", "/plan", r#"{"example": "fig2", "target": "C"}"#),
        ("POST", "/synth", fig2),
    ];
    for i in 0..100 {
        let (method, path, body) = jobs[i % jobs.len()];
        let (status, json) = request_json(addr, method, path, body);
        assert!(
            matches!(status, 200 | 400 | 408 | 500 | 503),
            "request {i} ({path}): unexpected status {status}: {json:?}"
        );
        assert!(
            json.get("request_metrics").is_some(),
            "request {i} ({path}, {status}): response lacks request_metrics: {json:?}"
        );
        if status == 500 {
            // Engine panics surface their message, injected errors theirs.
            let msg = json
                .get("panic")
                .or_else(|| json.get("error"))
                .and_then(Json::as_str)
                .unwrap_or_default();
            assert!(
                msg.contains("injected") || msg.contains("panic"),
                "request {i}: opaque 500: {json:?}"
            );
        }
        // The daemon stays healthy in the middle of the storm.
        if i % 10 == 9 {
            let (status, health) = request_json(addr, "GET", "/healthz", "");
            assert_eq!(status, 200, "healthz during chaos: {health:?}");
        }
    }

    // The storm actually happened: panics were caught and injections
    // counted, per-point, in the metric registry.
    assert!(
        rsn_obs::counter_get("serve.panics_caught") > panics_before,
        "no panic was ever injected/caught"
    );
    let injected: u64 = [
        "sat.solve",
        "ilp.solve",
        "fault.sweep",
        "verify.run",
        "serve.parse",
        "serve.cache",
    ]
    .iter()
    .map(|p| rsn_obs::counter_get(&format!("fail.injected{{point={p}}}")))
    .sum();
    assert!(injected > 0, "fail.injected counters never moved");

    // Chaos over: the service must return to full health — breaker
    // half-open probes succeed, poisoned cache entries were evicted and
    // rebuild cleanly, and results match the pre-chaos baseline bit for
    // bit.
    rsn_fail::clear();
    let recovered = eventually_ok(addr, "POST", "/sweep", fig2, Duration::from_secs(10));
    assert_eq!(
        recovered.get("report").expect("report").to_string_pretty(0),
        baseline,
        "post-chaos sweep diverged from pre-chaos baseline"
    );
    for (method, path, body) in jobs {
        let json = eventually_ok(addr, method, path, body, Duration::from_secs(10));
        assert!(json.get("request_metrics").is_some(), "{path}: {json:?}");
    }
    let (status, _) = request_json(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    shutdown(handle, thread);
}

/// Deterministic breaker lifecycle over HTTP: three consecutive engine
/// panics on one network open its breaker (fast 503 + `Retry-After`),
/// and after the chaos clears, the half-open probe closes it again.
#[test]
fn breaker_trips_on_repeated_panics_and_recovers() {
    let _guard = lock_chaos();
    rsn_fail::clear();
    let (addr, handle, thread) = start(2);
    let fig2 = r#"{"example": "fig2"}"#;

    // Warm the cache first so the panics hit the solver, not the build.
    let (status, _) = request_json(addr, "POST", "/lint", fig2);
    assert_eq!(status, 200);

    rsn_fail::configure("sat.solve", rsn_fail::Action::Panic, 1.0, Some(7));
    for i in 0..3 {
        let (status, json) = request_json(addr, "POST", "/lint", fig2);
        assert_eq!(status, 500, "panic {i} must be a structured 500: {json:?}");
        let panic_msg = json.get("panic").and_then(Json::as_str).unwrap_or_default();
        assert!(
            panic_msg.contains("sat.solve"),
            "500 must carry the panic message: {json:?}"
        );
        assert!(json.get("request_metrics").is_some(), "{json:?}");
    }

    // Breaker open: fail fast without touching the engine.
    let raw = raw_request(addr, "POST", "/lint", fig2);
    assert!(
        raw.starts_with("HTTP/1.1 503 "),
        "breaker must fast-fail: {raw}"
    );
    assert!(raw.contains("Retry-After: "), "missing Retry-After: {raw}");
    assert!(raw.contains("circuit breaker open"), "{raw}");

    // Other networks are unaffected by fig2's breaker.
    let (status, _) = request_json(
        addr,
        "POST",
        "/plan",
        r#"{"example": "chain", "segments": 3, "bits": 4, "target": "seg0"}"#,
    );
    assert!(
        matches!(status, 200 | 400),
        "unrelated network hit fig2's breaker: {status}"
    );

    // Chaos off: after the cooldown the half-open probe succeeds and
    // the breaker closes — requests flow again.
    rsn_fail::clear();
    let json = eventually_ok(addr, "POST", "/lint", fig2, Duration::from_secs(10));
    assert_eq!(json.get("clean"), Some(&Json::Bool(true)));

    shutdown(handle, thread);
}

/// SAT portfolio workers killed mid-solve (the `sat.worker` failpoint
/// fires inside each spawned solver thread) must neither deadlock the
/// request nor corrupt the verdict: the portfolio degrades to its
/// in-thread serial fallback and the lint report stays clean and
/// bit-identical to an unchaosed run.
#[test]
fn killed_sat_workers_keep_lint_verdicts_sound() {
    let _guard = lock_chaos();
    rsn_fail::clear();
    let (addr, handle, thread) = start(2);
    let spec = r#"{"example": "fig2", "solver_threads": 4}"#;

    // Unchaosed baseline with the portfolio enabled.
    let (status, baseline) = request_json(addr, "POST", "/lint", spec);
    assert_eq!(status, 200, "portfolio lint: {baseline:?}");
    assert_eq!(baseline.get("clean"), Some(&Json::Bool(true)));
    let baseline = baseline.get("report").expect("report").to_string_pretty(0);

    // Kill half the portfolio workers at birth, then every one of them:
    // the verdict must not change either way.
    for (probability, seed) in [(0.5, 31), (1.0, 32)] {
        rsn_fail::configure(
            "sat.worker",
            rsn_fail::Action::Panic,
            probability,
            Some(seed),
        );
        let (status, json) = request_json(addr, "POST", "/lint", spec);
        assert_eq!(status, 200, "p={probability}: {json:?}");
        assert_eq!(
            json.get("clean"),
            Some(&Json::Bool(true)),
            "p={probability}: chaos flipped the verdict: {json:?}"
        );
        assert_eq!(
            json.get("report").expect("report").to_string_pretty(0),
            baseline,
            "p={probability}: report diverged under worker chaos"
        );
        let (status, health) = request_json(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "healthz after sat.worker chaos: {health:?}");
        rsn_fail::clear();
    }

    shutdown(handle, thread);
}

/// Worker threads killed between requests (the one place a panic
/// escapes every guard) are respawned by the supervisor; no request is
/// lost because the chaos point sits before the queue pop.
#[test]
fn killed_workers_are_respawned_and_service_continues() {
    let _guard = lock_chaos();
    rsn_fail::clear();
    let (addr, handle, thread) = start(3);

    let respawns_before = rsn_obs::counter_get("serve.worker_respawns");
    rsn_fail::configure("serve.worker", rsn_fail::Action::Panic, 0.5, Some(21));
    for _ in 0..30 {
        let (status, _) = request_json(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "healthz must survive worker deaths");
    }
    rsn_fail::clear();
    assert!(
        rsn_obs::counter_get("serve.worker_respawns") > respawns_before,
        "no worker was ever killed and respawned"
    );

    // The pool is back at strength: more requests than workers complete
    // concurrently with chaos off.
    let results: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || request_json(addr, "GET", "/healthz", "").0))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(results.iter().all(|&s| s == 200), "{results:?}");

    shutdown(handle, thread);
}
