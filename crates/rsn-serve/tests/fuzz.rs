//! Deterministic structure-aware fuzzing of the two parsers that face
//! raw bytes from the network: `http::read_request` and the JSON
//! parser. No external fuzzer — a splitmix64-driven mutator (the same
//! generator `rsn-fail` uses, so runs are bit-identical across
//! machines) applies byte flips, truncations, splices and dictionary
//! insertions to valid seed documents. The only property asserted is
//! totality: 10k mutated inputs each, every one answered with
//! `Ok`/`Err` — never a panic, hang, or runaway allocation.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rsn_serve::http::read_request;

/// splitmix64: tiny, seedable, and good enough to drive mutations.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One structure-aware mutation step: byte-level noise plus insertion
/// of tokens that matter to the grammar under test.
fn mutate(rng: &mut Rng, input: &mut Vec<u8>, dictionary: &[&[u8]]) {
    match rng.below(6) {
        // Flip a byte.
        0 if !input.is_empty() => {
            let i = rng.below(input.len());
            input[i] ^= (rng.next() & 0xff) as u8;
        }
        // Truncate.
        1 if !input.is_empty() => {
            input.truncate(rng.below(input.len()));
        }
        // Duplicate a random slice (splice).
        2 if !input.is_empty() => {
            let start = rng.below(input.len());
            let end = start + rng.below(input.len() - start + 1);
            let slice = input[start..end].to_vec();
            let at = rng.below(input.len() + 1);
            input.splice(at..at, slice);
        }
        // Insert a dictionary token.
        3 => {
            let token = dictionary[rng.below(dictionary.len())].to_vec();
            let at = rng.below(input.len() + 1);
            input.splice(at..at, token);
        }
        // Insert random bytes.
        4 => {
            let at = rng.below(input.len() + 1);
            let count = 1 + rng.below(8);
            let noise: Vec<u8> = (0..count).map(|_| (rng.next() & 0xff) as u8).collect();
            input.splice(at..at, noise);
        }
        // Overwrite with a dictionary token.
        _ => {
            let token = dictionary[rng.below(dictionary.len())];
            if input.len() >= token.len() {
                let at = rng.below(input.len() - token.len() + 1);
                input[at..at + token.len()].copy_from_slice(token);
            }
        }
    }
    // Keep inputs bounded: totality, not throughput, is under test.
    input.truncate(32 * 1024);
}

#[test]
fn http_reader_is_total_on_mutated_requests() {
    let seeds: &[&[u8]] = &[
        b"GET /healthz HTTP/1.1\r\n\r\n",
        b"POST /sweep?x=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        b"POST /lint HTTP/1.1\r\nContent-Length: 19\r\n\r\n{\"example\": \"fig2\"}",
        b"GET /metrics HTTP/1.0\r\nAccept: */*\r\n\r\n",
    ];
    let dictionary: &[&[u8]] = &[
        b"\r\n",
        b"\r\n\r\n",
        b"HTTP/1.1",
        b"HTTP/9.9",
        b"Content-Length:",
        b"Content-Length: 18446744073709551616\r\n",
        b"Content-Length: -1\r\n",
        b"Content-Length: 999999\r\n",
        b":",
        b" ",
        b"\xff\xfe",
        b"POST ",
        b"?",
    ];
    let mut rng = Rng(0x5eed_0001);
    for i in 0..10_000 {
        let mut input = seeds[rng.below(seeds.len())].to_vec();
        for _ in 0..=rng.below(4) {
            mutate(&mut rng, &mut input, dictionary);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // 64 KiB body cap: a mutated Content-Length must error, not
            // allocate.
            read_request(&mut input.as_slice(), 64 * 1024).map(|r| (r.method, r.path))
        }));
        assert!(
            outcome.is_ok(),
            "read_request panicked on mutated input {i}: {:?}",
            String::from_utf8_lossy(&input)
        );
    }
}

#[test]
fn json_parser_is_total_on_mutated_documents() {
    let seeds: &[&str] = &[
        r#"{"example": "fig2", "synthesize": true}"#,
        r#"{"example": "chain", "segments": 6, "bits": 4}"#,
        r#"[1, 2.5, -3e8, "s", null, true, [], {}]"#,
        r#"{"a": {"b": {"c": [1, [2, [3]]]}}, "d": "é\n\t"}"#,
    ];
    let dictionary: &[&[u8]] = &[
        b"{",
        b"}",
        b"[",
        b"]",
        b"\"",
        b"\\u",
        b"\\",
        b":",
        b",",
        b"1e999",
        b"-",
        b"null",
        b"[[[[[[[[[[[[[[[[",
        b"{\"a\":{\"a\":{\"a\":",
        b"\xf0\x9f",
    ];
    let mut rng = Rng(0x5eed_0002);
    for i in 0..10_000 {
        let mut input = seeds[rng.below(seeds.len())].as_bytes().to_vec();
        for _ in 0..=rng.below(4) {
            mutate(&mut rng, &mut input, dictionary);
        }
        let text = String::from_utf8_lossy(&input).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rsn_obs::json::parse(&text)
                .map(|j| j.to_string_pretty(0))
                .is_ok()
        }));
        assert!(
            outcome.is_ok(),
            "json parse panicked on mutated input {i}: {text:?}"
        );
    }
}
