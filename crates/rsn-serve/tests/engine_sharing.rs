//! The shared-artifact contract, below the HTTP layer: many threads
//! hammering ONE cached `AccessEngine` and ONE `NetworkSat` (mixed
//! sweeps and lints) must produce bit-identical results to a serial run.
//! This is what makes the resident service sound — engines are immutable
//! after construction, all mutation lives in caller-owned scratch.

use std::sync::Arc;

use rsn_budget::Budget;
use rsn_core::examples;
use rsn_fault::{analyze_classes_on_budget, HardeningProfile};
use rsn_serve::ArtifactCache;
use rsn_verify::{verify_on, VerifyOptions};

/// A comparable digest of one sweep over the shared engine.
fn sweep_digest(artifacts: &rsn_serve::Artifacts, threads: usize) -> String {
    let engine = artifacts.engine();
    let faults = artifacts.faults();
    let classes = artifacts.classes(HardeningProfile::unhardened());
    let report =
        analyze_classes_on_budget(&engine, &faults, &classes, threads, &Budget::unlimited());
    format!(
        "faults={} classes={} weight={} worst_seg={} avg_seg={} worst_bits={} avg_bits={} q={} s={}",
        report.fault_count,
        report.classes,
        report.total_weight,
        report.worst_segments,
        report.avg_segments,
        report.worst_bits,
        report.avg_bits,
        report.quarantined,
        report.skipped,
    )
}

/// A comparable digest of one verification pass over the shared model.
fn lint_digest(artifacts: &rsn_serve::Artifacts) -> String {
    let sat = artifacts.network_sat();
    let report = verify_on(
        artifacts.rsn(),
        &sat,
        VerifyOptions::default(),
        &Budget::unlimited(),
    );
    report.to_json().to_string_pretty(0)
}

#[test]
fn threads_sharing_one_engine_match_serial() {
    let cache = Arc::new(ArtifactCache::new(4));
    let rsn = examples::sib_tree(2, 2, 3);
    let artifacts = cache.get_or_insert(&rsn);

    // Serial baselines, computed once on the very same artifact entry.
    let serial_sweep = sweep_digest(&artifacts, 1);
    let serial_lint = lint_digest(&artifacts);

    const WORKERS: usize = 8;
    const ROUNDS: usize = 3;
    let outcomes: Vec<(Vec<String>, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let cache = Arc::clone(&cache);
                let rsn = rsn.clone();
                scope.spawn(move || {
                    // Every thread resolves through the cache — they all
                    // land on the same Artifacts entry.
                    let entry = cache.get_or_insert(&rsn);
                    let mut sweeps = Vec::new();
                    let mut lints = Vec::new();
                    for round in 0..ROUNDS {
                        // Mixed workload: vary sweep parallelism too, so
                        // intra-sweep threading races against sharing.
                        sweeps.push(sweep_digest(&entry, 1 + (w + round) % 3));
                        lints.push(lint_digest(&entry));
                    }
                    (sweeps, lints)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (sweeps, lints) in outcomes {
        for s in sweeps {
            assert_eq!(s, serial_sweep, "concurrent sweep diverged from serial");
        }
        for l in lints {
            assert_eq!(l, serial_lint, "concurrent lint diverged from serial");
        }
    }

    // Everyone really did share one entry (no per-thread rebuilds).
    assert_eq!(cache.len(), 1);
    let again = cache.get_or_insert(&rsn);
    assert!(Arc::ptr_eq(&artifacts, &again));
}
