//! End-to-end tests driving a real daemon over TCP: every endpoint, the
//! artifact-cache fast path, concurrent mixed clients against a serial
//! baseline, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use rsn_obs::json::Json;
use rsn_serve::{Server, ServerHandle, ServerOptions};

fn start(workers: usize) -> (SocketAddr, ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 64,
        deadline: Some(Duration::from_secs(60)),
        ..ServerOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

/// Minimal HTTP client: one request, one response, connection closed.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn request_json(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, text) = request(addr, method, path, body);
    let json = rsn_obs::json::parse(&text)
        .unwrap_or_else(|e| panic!("{method} {path}: bad JSON ({e}): {text}"));
    (status, json)
}

fn shutdown(handle: ServerHandle, thread: JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    thread
        .join()
        .expect("server thread must not panic")
        .expect("server run must succeed");
}

#[test]
fn healthz_and_protocol_errors() {
    let (addr, handle, thread) = start(2);

    let (status, body) = request_json(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));

    let (status, _) = request_json(addr, "GET", "/lint", "");
    assert_eq!(status, 405);
    let (status, _) = request_json(addr, "POST", "/nope", "{}");
    assert_eq!(status, 404);
    let (status, _) = request_json(addr, "POST", "/lint", "not json");
    assert_eq!(status, 400);
    let (status, _) = request_json(addr, "POST", "/lint", "{}");
    assert_eq!(status, 400);

    shutdown(handle, thread);
}

#[test]
fn endpoints_end_to_end_and_cache_fast_path() {
    let (addr, handle, thread) = start(2);
    let fig2 = r#"{"example": "fig2"}"#;

    // First /lint builds the artifacts: a cache miss.
    let (status, body) = request_json(addr, "POST", "/lint", fig2);
    assert_eq!(status, 200);
    assert_eq!(body.get("clean"), Some(&Json::Bool(true)));
    assert!(body.get("report").is_some());
    let misses = body
        .get("request_metrics")
        .and_then(|m| m.get("serve.cache_misses"))
        .and_then(Json::as_f64);
    assert_eq!(misses, Some(1.0), "first request must miss the cache");

    // Second request on the same network: a hit — AccessEngine/CNF
    // construction is skipped, proven by the request's own counters.
    let (status, body) = request_json(addr, "POST", "/sweep", fig2);
    assert_eq!(status, 200);
    let report = body.get("report").expect("sweep report");
    assert!(report.get("fault_count").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(report.get("complete"), Some(&Json::Bool(true)));
    let hits = body
        .get("request_metrics")
        .and_then(|m| m.get("serve.cache_hits"))
        .and_then(Json::as_f64);
    assert_eq!(hits, Some(1.0), "second request must hit the cache");

    let (status, body) = request_json(
        addr,
        "POST",
        "/plan",
        r#"{"example": "fig2", "target": "C"}"#,
    );
    assert_eq!(status, 200);
    let plan = body.get("plan").expect("plan");
    assert_eq!(plan.get("accessible"), Some(&Json::Bool(true)));
    assert!(!matches!(plan.get("path"), Some(Json::Arr(p)) if p.is_empty()));

    let (status, body) = request_json(addr, "POST", "/synth", fig2);
    assert_eq!(status, 200);
    assert!(body
        .get("report")
        .and_then(|r| r.get("added_muxes"))
        .is_some());

    // /metrics is Prometheus text and carries the serve-side counters.
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("serve_cache_hits"), "metrics: {text}");
    assert!(text.contains("serve_requests"), "metrics: {text}");
    assert!(text.contains("serve_request_ns"), "metrics: {text}");

    shutdown(handle, thread);
}

#[test]
fn lint_explain_reuses_cached_artifacts() {
    let (addr, handle, thread) = start(2);
    let spec = r#"{"example": "sib_tree", "explain": true}"#;

    let (status, body) = request_json(addr, "POST", "/lint", spec);
    assert_eq!(status, 200);
    assert_eq!(body.get("clean"), Some(&Json::Bool(true)));
    // Clean network: no diagnostics, hence no explanation objects.
    let diags = body.get("report").and_then(|r| r.get("diagnostics"));
    assert!(
        matches!(diags, Some(Json::Arr(d)) if d.is_empty()),
        "unexpected diagnostics: {body:?}"
    );

    // Repeat with explain on: the cached artifacts — including the
    // shared CNF model the explanation engine queries — are reused.
    let (status, body) = request_json(addr, "POST", "/lint", spec);
    assert_eq!(status, 200);
    let hits = body
        .get("request_metrics")
        .and_then(|m| m.get("serve.cache_hits"))
        .and_then(Json::as_f64);
    assert_eq!(
        hits,
        Some(1.0),
        "explain request must reuse cached artifacts"
    );

    shutdown(handle, thread);
}

/// The acceptance bar: ≥8 parallel clients with mixed endpoints get
/// bit-identical analysis results to a serial run, with zero panics.
#[test]
fn concurrent_mixed_clients_match_serial() {
    let (addr, handle, thread) = start(8);

    // (method, path, body, result field to compare)
    let jobs: [(&str, &str, &str, &str); 4] = [
        ("POST", "/lint", r#"{"example": "fig2"}"#, "report"),
        ("POST", "/sweep", r#"{"example": "fig2"}"#, "report"),
        (
            "POST",
            "/plan",
            r#"{"example": "fig2", "target": "C"}"#,
            "plan",
        ),
        (
            "POST",
            "/sweep",
            r#"{"example": "chain", "segments": 6, "bits": 4}"#,
            "report",
        ),
    ];

    // Serial baseline: the analysis payload only — `request_metrics`
    // legitimately differs between cold and warm requests.
    let baseline: Vec<String> = jobs
        .iter()
        .map(|(m, p, b, field)| {
            let (status, body) = request_json(addr, m, p, b);
            assert_eq!(status, 200, "serial {p}");
            body.get(field).expect(field).to_string_pretty(0)
        })
        .collect();

    let results: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let job = i % jobs.len();
                scope.spawn(move || {
                    let (m, p, b, field) = jobs[job];
                    let (status, body) = request_json(addr, m, p, b);
                    assert_eq!(status, 200, "concurrent {p}");
                    (job, body.get(field).expect(field).to_string_pretty(0))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (job, result) in results {
        assert_eq!(
            result, baseline[job],
            "concurrent result for {} diverged from serial",
            jobs[job].1
        );
    }

    shutdown(handle, thread);
}

#[test]
fn shutdown_is_graceful_with_no_requests() {
    let (_addr, handle, thread) = start(2);
    shutdown(handle, thread);
}
