//! The resident daemon: accept loop, fixed worker pool, bounded queue
//! with overload rejection, per-request budgets with client-disconnect
//! cancellation, and graceful drain on shutdown.
//!
//! ## Request lifecycle
//!
//! 1. The accept loop (nonblocking, polling) takes a connection. If the
//!    queue is at capacity the connection is answered `429` inline and
//!    closed (`serve.rejected`) — admission control before any work.
//! 2. A worker pops the connection, reads the request, and builds the
//!    request's [`Budget`]: the configured deadline plus a
//!    [`CancelToken`] that the disconnect
//!    monitor trips if the client hangs up mid-computation
//!    (`serve.cancelled`); engines then stop at their next budget check.
//! 3. The handler runs inside a fresh [`rsn_obs::ScopeHandle`], so the
//!    response can report exactly the metrics this request produced, no
//!    matter how many requests run concurrently.
//! 4. On shutdown (SIGTERM/SIGINT or [`ServerHandle::shutdown`]) the
//!    accept loop stops, queued requests drain, workers exit, and
//!    [`Server::run`] returns.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rsn_budget::{Budget, CancelToken};
use rsn_obs::json::Json;

use crate::api::{handle, ApiContext, ApiResponse};
use crate::http::{read_request, write_response, HttpError};

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address, e.g. `127.0.0.1:7223`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Pending-connection queue capacity; beyond it new connections get
    /// an immediate `429`.
    pub queue_cap: usize,
    /// Per-request wall-clock deadline. `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Networks kept in the artifact cache.
    pub cache_cap: usize,
    /// Threads per fault sweep (a request-level override caps at 64).
    pub sweep_threads: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            deadline: Some(Duration::from_secs(30)),
            max_body: 8 * 1024 * 1024,
            cache_cap: 16,
            sweep_threads: 2,
        }
    }
}

/// Wakes workers sleeping on an empty queue.
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A connection being watched for client hang-up while its request
/// computes.
struct Watched {
    id: u64,
    stream: TcpStream,
    token: CancelToken,
}

/// Shared state between the accept loop, workers, and the monitor.
struct Shared {
    ctx: ApiContext,
    opts: ServerOptions,
    queue: Queue,
    /// Set once: stop accepting, drain, exit.
    shutdown: AtomicBool,
    /// Connections under computation, polled by the disconnect monitor.
    watched: Mutex<Vec<Watched>>,
    next_watch_id: AtomicU64,
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the actual port (and construct a [`ServerHandle`]) before the
/// blocking accept loop starts.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Remote control for a running [`Server`]: trigger shutdown from
/// another thread (tests) or from the signal handler path.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain the queue,
    /// return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.ready.notify_all();
    }
}

// SIGTERM/SIGINT handling without a libc crate: std already links libc,
// so declare `signal(2)` directly. The handler only sets an atomic —
// the accept loop polls it.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGTERM (15) and SIGINT (2).
    pub fn install() {
        let handler = on_term as *const () as usize;
        unsafe {
            signal(15, handler);
            signal(2, handler);
        }
    }

    pub fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn terminated() -> bool {
        false
    }
}

impl Server {
    /// Binds the listener. The accept loop starts with [`Server::run`].
    pub fn bind(opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            ctx: ApiContext::new(opts.cache_cap, opts.sweep_threads),
            opts,
            queue: Queue {
                inner: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            watched: Mutex::new(Vec::new()),
            next_watch_id: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Installs signal handlers and runs until shutdown, serving
    /// requests on the worker pool. Returns after the graceful drain.
    pub fn run(self) -> std::io::Result<()> {
        sig::install();
        let shared = self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.opts.workers.max(1) {
                let shared = Arc::clone(&shared);
                scope.spawn(move || worker_loop(&shared));
            }
            {
                let shared = Arc::clone(&shared);
                scope.spawn(move || monitor_loop(&shared));
            }

            // Accept loop.
            loop {
                if shared.shutdown.load(Ordering::SeqCst) || sig::terminated() {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                match self.listener.accept() {
                    Ok((mut stream, _peer)) => {
                        let mut q = shared.queue.inner.lock().unwrap();
                        if q.len() >= shared.opts.queue_cap {
                            drop(q);
                            rsn_obs::counter_add("serve.rejected", 1);
                            let mut body = Json::obj();
                            body.set("error", Json::Str("server overloaded".into()));
                            let _ = write_response(
                                &mut stream,
                                429,
                                "application/json",
                                body.to_string_pretty(0).as_bytes(),
                            );
                        } else {
                            q.push_back(stream);
                            rsn_obs::gauge_set("serve.queue_depth", q.len() as f64);
                            drop(q);
                            shared.queue.ready.notify_one();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }

            // Drain: workers exit once the queue is empty under shutdown
            // (worker_loop observes the flag); wake any sleepers.
            shared.queue.ready.notify_all();
        });
        Ok(())
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.inner.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    rsn_obs::gauge_set("serve.queue_depth", q.len() as f64);
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue
                    .ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(shared, stream);
    }
}

/// Polls in-flight connections for client hang-up: a zero-byte `peek`
/// on a nonblocking socket means EOF, so the request's token is
/// cancelled and engines stop at their next budget check.
fn monitor_loop(shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Keep watching until the drain finishes so queued requests
            // still get disconnect cancellation.
            let none_left = shared.watched.lock().unwrap().is_empty()
                && shared.queue.inner.lock().unwrap().is_empty();
            if none_left {
                return;
            }
        }
        {
            let mut watched = shared.watched.lock().unwrap();
            watched.retain(|w| {
                let mut probe = [0u8; 1];
                match w.stream.peek(&mut probe) {
                    Ok(0) => {
                        rsn_obs::counter_add("serve.cancelled", 1);
                        w.token.cancel();
                        false
                    }
                    // Pipelined bytes or not-yet-read request data: alive.
                    Ok(_) => true,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                    Err(_) => {
                        rsn_obs::counter_add("serve.cancelled", 1);
                        w.token.cancel();
                        false
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match read_request(&mut stream, shared.opts.max_body) {
        Ok(req) => req,
        Err(HttpError::Disconnected) => return,
        Err(e) => {
            rsn_obs::counter_add("serve.errors", 1);
            let status = match e {
                HttpError::TooLarge => 413,
                _ => 400,
            };
            let mut body = Json::obj();
            body.set("error", Json::Str(e.to_string()));
            let _ = write_response(
                &mut stream,
                status,
                "application/json",
                body.to_string_pretty(0).as_bytes(),
            );
            return;
        }
    };

    let endpoint = req.path.trim_start_matches('/').replace('/', "_");
    rsn_obs::counter_add(&format!("serve.requests{{endpoint={endpoint}}}"), 1);

    // Per-request budget: deadline + cancellation on client hang-up.
    let mut budget = Budget::unlimited();
    if let Some(deadline) = shared.opts.deadline {
        budget = budget.with_deadline(deadline);
    }
    let token = budget.cancel_token();
    let watch_id = shared.next_watch_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        let _ = clone.set_nonblocking(true);
        shared.watched.lock().unwrap().push(Watched {
            id: watch_id,
            stream: clone,
            token,
        });
    }

    // Per-request metric scope: handlers see (and report) exactly the
    // writes of this request, no matter what runs concurrently.
    let scope = rsn_obs::ScopeHandle::new();
    let response = {
        let _guard = scope.enter();
        handle(&shared.ctx, &req, &budget, &scope)
    };

    shared.watched.lock().unwrap().retain(|w| w.id != watch_id);

    // /metrics renders the process-global registry as Prometheus text —
    // everything else is JSON.
    let outcome = if req.method == "GET" && req.path == "/metrics" {
        let text = rsn_obs::render_prometheus(&rsn_obs::metrics_snapshot());
        write_response(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            text.as_bytes(),
        )
    } else {
        respond_json(&mut stream, &response)
    };
    if outcome.is_ok() {
        rsn_obs::counter_add("serve.responses", 1);
    }
    if response.status >= 400 {
        rsn_obs::counter_add("serve.errors", 1);
    }
    rsn_obs::hist_record("serve.request_ns", started.elapsed().as_nanos() as u64);
}

fn respond_json(stream: &mut TcpStream, response: &ApiResponse) -> std::io::Result<()> {
    write_response(
        stream,
        response.status,
        "application/json",
        response.body.to_string_pretty(2).as_bytes(),
    )
}
