//! The resident daemon: accept loop, supervised worker pool, bounded
//! queue with overload rejection, per-request budgets with
//! client-disconnect cancellation, crash-only request isolation, and
//! graceful drain on shutdown.
//!
//! ## Request lifecycle
//!
//! 1. The accept loop (nonblocking, polling) takes a connection. If the
//!    queue is at capacity the connection is answered `429` inline and
//!    closed (`serve.rejected`) — admission control before any work.
//! 2. A worker pops the connection, reads the request, and builds the
//!    request's [`Budget`]: the configured deadline plus a
//!    [`CancelToken`] that the disconnect
//!    monitor trips if the client hangs up mid-computation
//!    (`serve.cancelled`); engines then stop at their next budget check.
//! 3. The handler runs inside a fresh [`rsn_obs::ScopeHandle`], so the
//!    response can report exactly the metrics this request produced, no
//!    matter how many requests run concurrently.
//! 4. On shutdown (SIGTERM/SIGINT or [`ServerHandle::shutdown`]) the
//!    accept loop stops, queued requests drain, workers exit, and
//!    [`Server::run`] returns.
//!
//! ## Crash-only supervision
//!
//! The daemon assumes any engine can panic (chaos runs inject exactly
//! that, via `rsn-fail`) and is built so no panic is fatal:
//!
//! * Every request handler runs under `catch_unwind`: an engine panic
//!   becomes a structured `500` carrying the panic message and the
//!   request's metrics (`serve.panics_caught`), never a dead worker.
//! * Workers are real supervised threads, not scope children: a panic
//!   that does escape a worker (only possible outside the request
//!   guards) is detected by the supervisor, which respawns the worker
//!   (`serve.worker_respawns`). The fleet never shrinks.
//! * The accept loop guards each iteration, so not even an
//!   accept-path panic stops admission.
//! * Every `Mutex` access recovers from poisoning — a panicked holder
//!   leaves simple state (queues, maps) that the next holder can use.
//! * Sockets carry both read *and* write timeouts: a stalled reader
//!   cannot park a worker in `write_all` forever (response-side
//!   slowloris).
//! * Consecutive failures on one cached network trip a per-fingerprint
//!   circuit breaker ([`crate::breaker`]): fail fast with `503` +
//!   `Retry-After` instead of re-running a crashing analysis.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rsn_budget::{Budget, CancelToken};
use rsn_obs::json::Json;

use crate::api::{handle, ApiContext, ApiResponse, RequestInfo};
use crate::breaker::BreakerConfig;
use crate::http::{read_request, write_response, write_response_ext, HttpError};

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address, e.g. `127.0.0.1:7223`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Pending-connection queue capacity; beyond it new connections get
    /// an immediate `429`.
    pub queue_cap: usize,
    /// Per-request wall-clock deadline. `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Networks kept in the artifact cache.
    pub cache_cap: usize,
    /// Threads per fault sweep (a request-level override caps at 64).
    pub sweep_threads: usize,
    /// Cap on SAT portfolio workers per request; a request-level
    /// `solver_threads` knob clamps to this. Defaults to
    /// [`rsn_budget::default_threads`] (the `RSN_THREADS` env knob).
    pub solver_threads: usize,
    /// Socket read timeout while receiving a request.
    pub read_timeout: Duration,
    /// Socket write timeout while sending a response (slowloris guard).
    pub write_timeout: Duration,
    /// Per-network circuit breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            deadline: Some(Duration::from_secs(30)),
            max_body: 8 * 1024 * 1024,
            cache_cap: 16,
            sweep_threads: 2,
            solver_threads: rsn_budget::default_threads(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Poison-tolerant lock: a panicked previous holder must never wedge
/// the daemon — the protected state (queues, watch lists) stays valid
/// across an unwind at every await-free point we hold it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wakes workers sleeping on an empty queue.
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A connection being watched for client hang-up while its request
/// computes.
struct Watched {
    id: u64,
    stream: TcpStream,
    token: CancelToken,
}

/// Shared state between the accept loop, workers, the supervisor and
/// the monitor.
struct Shared {
    ctx: ApiContext,
    opts: ServerOptions,
    queue: Queue,
    /// Set once: stop accepting, drain, exit.
    shutdown: AtomicBool,
    /// Connections under computation, polled by the disconnect monitor.
    watched: Mutex<Vec<Watched>>,
    next_watch_id: AtomicU64,
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the actual port (and construct a [`ServerHandle`]) before the
/// blocking accept loop starts.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Remote control for a running [`Server`]: trigger shutdown from
/// another thread (tests) or from the signal handler path.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain the queue,
    /// return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.ready.notify_all();
    }
}

// SIGTERM/SIGINT handling without a libc crate: std already links libc,
// so declare `signal(2)` directly. The handler only sets an atomic —
// the accept loop polls it.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGTERM (15) and SIGINT (2).
    pub fn install() {
        let handler = on_term as *const () as usize;
        unsafe {
            signal(15, handler);
            signal(2, handler);
        }
    }

    pub fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn terminated() -> bool {
        false
    }
}

impl Server {
    /// Binds the listener. The accept loop starts with [`Server::run`].
    pub fn bind(opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            ctx: ApiContext::new(
                opts.cache_cap,
                opts.sweep_threads,
                opts.solver_threads,
                opts.breaker,
            ),
            opts,
            queue: Queue {
                inner: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            watched: Mutex::new(Vec::new()),
            next_watch_id: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Installs signal handlers and runs until shutdown, serving
    /// requests on the supervised worker pool. Returns after the
    /// graceful drain.
    pub fn run(self) -> std::io::Result<()> {
        sig::install();
        let shared = self.shared;

        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rsn-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn supervisor")
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rsn-serve-monitor".into())
                .spawn(move || monitor_loop(&shared))
                .expect("spawn monitor")
        };

        // Accept loop. Each iteration is panic-guarded: not even an
        // accept-path panic (chaos: `serve.accept`) stops admission.
        loop {
            if shared.shutdown.load(Ordering::SeqCst) || sig::terminated() {
                shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            let iteration = catch_unwind(AssertUnwindSafe(|| accept_one(&self.listener, &shared)));
            if iteration.is_err() {
                rsn_obs::counter_add("serve.panics_caught", 1);
            }
        }

        // Drain: workers exit once the queue is empty under shutdown
        // (worker_loop observes the flag); wake any sleepers. The
        // supervisor joins the workers, so joining it completes the
        // drain.
        shared.queue.ready.notify_all();
        let _ = supervisor.join();
        let _ = monitor.join();
        Ok(())
    }
}

/// One accept-loop iteration: admit a connection into the queue, `429`
/// it when the queue is full, or idle briefly.
fn accept_one(listener: &TcpListener, shared: &Arc<Shared>) {
    match listener.accept() {
        Ok((mut stream, _peer)) => {
            // Chaos failpoint: `err`/`budget` drop the connection
            // unserved; `panic` unwinds into the accept-loop guard.
            if rsn_fail::eval("serve.accept").is_some() {
                return;
            }
            let mut q = lock(&shared.queue.inner);
            if q.len() >= shared.opts.queue_cap {
                drop(q);
                rsn_obs::counter_add("serve.rejected", 1);
                let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
                let mut body = Json::obj();
                body.set("error", Json::Str("server overloaded".into()));
                let _ = write_response(
                    &mut stream,
                    429,
                    "application/json",
                    body.to_string_pretty(0).as_bytes(),
                );
            } else {
                q.push_back(stream);
                rsn_obs::gauge_set("serve.queue_depth", q.len() as f64);
                drop(q);
                shared.queue.ready.notify_one();
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
            std::thread::sleep(Duration::from_millis(20));
        }
        Err(_) => std::thread::sleep(Duration::from_millis(20)),
    }
}

/// Keeps the worker fleet at strength: spawns the configured number of
/// workers, reaps any that exit (a panic that escaped the request
/// guards), and respawns them while the daemon is live. On shutdown it
/// joins the drain instead of respawning and returns when the last
/// worker is done.
fn supervisor_loop(shared: &Arc<Shared>) {
    let spawn_worker = |shared: &Arc<Shared>| {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("rsn-serve-worker".into())
            .spawn(move || worker_loop(&shared))
            .expect("spawn worker")
    };
    let mut workers: Vec<_> = (0..shared.opts.workers.max(1))
        .map(|_| spawn_worker(shared))
        .collect();
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let worker = workers.swap_remove(i);
                let _ = worker.join(); // collect a panic payload, if any
                                       // During the drain only clean exits stay down: a worker
                                       // that dies with connections still queued is replaced so
                                       // the drain always completes.
                if !draining || !lock(&shared.queue.inner).is_empty() {
                    rsn_obs::counter_add("serve.worker_respawns", 1);
                    workers.push(spawn_worker(shared));
                }
            } else {
                i += 1;
            }
        }
        if draining && workers.is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Chaos failpoint: a panic here (between requests, outside every
        // guard) kills this worker thread on purpose — proving the
        // supervisor respawns workers. `err`/`budget` are meaningless
        // at this point and ignored.
        let _ = rsn_fail::eval("serve.worker");
        let stream = {
            let mut q = lock(&shared.queue.inner);
            loop {
                if let Some(s) = q.pop_front() {
                    rsn_obs::gauge_set("serve.queue_depth", q.len() as f64);
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue
                    .ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        let Some(stream) = stream else { return };
        // Belt over the per-request braces: a panic outside `handle`'s
        // own catch_unwind (request framing, response path) drops the
        // connection but keeps the worker.
        if catch_unwind(AssertUnwindSafe(|| serve_connection(shared, stream))).is_err() {
            rsn_obs::counter_add("serve.panics_caught", 1);
        }
    }
}

/// Polls in-flight connections for client hang-up: a zero-byte `peek`
/// on a nonblocking socket means EOF, so the request's token is
/// cancelled and engines stop at their next budget check.
fn monitor_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Keep watching until the drain finishes so queued requests
            // still get disconnect cancellation.
            let none_left =
                lock(&shared.watched).is_empty() && lock(&shared.queue.inner).is_empty();
            if none_left {
                return;
            }
        }
        {
            let mut watched = lock(&shared.watched);
            watched.retain(|w| {
                let mut probe = [0u8; 1];
                match w.stream.peek(&mut probe) {
                    Ok(0) => {
                        rsn_obs::counter_add("serve.cancelled", 1);
                        w.token.cancel();
                        false
                    }
                    // Pipelined bytes or not-yet-read request data: alive.
                    Ok(_) => true,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                    Err(_) => {
                        rsn_obs::counter_add("serve.cancelled", 1);
                        w.token.cancel();
                        false
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Best-effort panic message extraction (panics carry `&str` or
/// `String` payloads in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    // Response-side slowloris guard: a client that never reads cannot
    // park this worker in `write_all` forever.
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    let req = match read_request(&mut stream, shared.opts.max_body) {
        Ok(req) => req,
        Err(HttpError::Disconnected) => return,
        Err(e) => {
            rsn_obs::counter_add("serve.errors", 1);
            let mut body = Json::obj();
            body.set("error", Json::Str(e.to_string()));
            let _ = write_response(
                &mut stream,
                e.status(),
                "application/json",
                body.to_string_pretty(0).as_bytes(),
            );
            return;
        }
    };

    let endpoint = req.path.trim_start_matches('/').replace('/', "_");
    rsn_obs::counter_add(&format!("serve.requests{{endpoint={endpoint}}}"), 1);

    // Per-request budget: deadline + cancellation on client hang-up.
    let mut budget = Budget::unlimited();
    if let Some(deadline) = shared.opts.deadline {
        budget = budget.with_deadline(deadline);
    }
    let token = budget.cancel_token();
    let watch_id = shared.next_watch_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        let _ = clone.set_nonblocking(true);
        lock(&shared.watched).push(Watched {
            id: watch_id,
            stream: clone,
            token,
        });
    }

    // Per-request metric scope: handlers see (and report) exactly the
    // writes of this request, no matter what runs concurrently.
    let scope = rsn_obs::ScopeHandle::new();
    let info = RequestInfo::default();
    // Crash-only request isolation: an engine panic becomes a
    // structured 500 (with the panic message and this request's
    // metrics), never a dead worker.
    let (mut response, panicked) = {
        let _guard = scope.enter();
        match catch_unwind(AssertUnwindSafe(|| {
            handle(&shared.ctx, &req, &budget, &scope, &info)
        })) {
            Ok(response) => (response, false),
            Err(payload) => {
                rsn_obs::counter_add("serve.panics_caught", 1);
                let mut resp =
                    ApiResponse::error(500, "engine panic caught; request failed, daemon healthy");
                resp.body
                    .set("panic", Json::Str(panic_message(payload.as_ref())));
                (resp, true)
            }
        }
    };

    lock(&shared.watched).retain(|w| w.id != watch_id);

    // Circuit-breaker bookkeeping for the analyzed network. Breaker
    // fast-fails (`retry_after` set) are not outcomes of an admitted
    // request and don't count.
    let fingerprint = info.fingerprint.load(Ordering::Relaxed);
    if fingerprint != 0 && response.retry_after.is_none() {
        let failed = panicked || response.status >= 500;
        shared.ctx.breakers.record(fingerprint, failed);
    }

    // Chaos failpoint on the response path: `err`/`budget` replace the
    // payload with a structured 500 (still written to the client);
    // `panic` unwinds into the worker-level guard; `delay` stalls the
    // write (which the write timeout bounds).
    if rsn_fail::eval("serve.respond").is_some() {
        response = ApiResponse::error(500, "injected failure at failpoint serve.respond");
    }

    // Every response — success, engine error, panic, injected chaos —
    // carries `request_metrics` so failures are as attributable as
    // successes.
    if matches!(response.body, Json::Obj(_)) && response.body.get("request_metrics").is_none() {
        crate::api::attach_request_metrics(&mut response.body, &scope);
    }

    // /metrics renders the process-global registry as Prometheus text —
    // everything else is JSON.
    let outcome = if req.method == "GET" && req.path == "/metrics" {
        let text = rsn_obs::render_prometheus(&rsn_obs::metrics_snapshot());
        write_response(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            text.as_bytes(),
        )
    } else {
        respond_json(&mut stream, &response)
    };
    if outcome.is_ok() {
        rsn_obs::counter_add("serve.responses", 1);
    }
    if response.status >= 400 {
        rsn_obs::counter_add("serve.errors", 1);
    }
    rsn_obs::hist_record("serve.request_ns", started.elapsed().as_nanos() as u64);
}

fn respond_json(stream: &mut TcpStream, response: &ApiResponse) -> std::io::Result<()> {
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(secs) = response.retry_after {
        extra.push(("Retry-After", secs.to_string()));
    }
    write_response_ext(
        stream,
        response.status,
        "application/json",
        &extra,
        response.body.to_string_pretty(2).as_bytes(),
    )
}
