//! Per-network circuit breakers: after `threshold` *consecutive*
//! request failures (panics or 5xx) on the same cached network
//! fingerprint, further requests for that network fail fast with a
//! `503` plus `Retry-After` instead of burning a worker on an analysis
//! that just crashed N times in a row.
//!
//! Classic three-state machine per fingerprint:
//!
//! ```text
//!            N consecutive failures
//!   Closed ──────────────────────────▶ Open (cooldown clock runs)
//!     ▲  ▲                              │
//!     │  │ probe succeeds               │ cooldown elapsed
//!     │  └──────────────── HalfOpen ◀───┘
//!     │                      │
//!     └── (success resets    │ probe fails
//!          failure count)    ▼
//!                           Open (fresh cooldown)
//! ```
//!
//! While `HalfOpen`, exactly one probe request is admitted; concurrent
//! requests keep fast-failing until the probe reports back. Transitions
//! to `Open` count `serve.breaker_open`; fast-failed requests count
//! `serve.breaker_fast_fail`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning, normally from
/// [`ServerOptions`](crate::ServerOptions).
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures (per fingerprint) that open the breaker.
    pub threshold: u32,
    /// How long an open breaker rejects before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(2),
        }
    }
}

enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { probe_in_flight: bool },
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the request (and report the outcome via
    /// [`Breakers::record`]).
    Allow,
    /// Fail fast: `503` with this many seconds of `Retry-After`.
    FastFail { retry_after_secs: u64 },
}

/// All breakers of one daemon, keyed by network fingerprint.
pub struct Breakers {
    states: Mutex<HashMap<u64, State>>,
    config: BreakerConfig,
}

impl Breakers {
    pub fn new(config: BreakerConfig) -> Breakers {
        Breakers {
            states: Mutex::new(HashMap::new()),
            config: BreakerConfig {
                threshold: config.threshold.max(1),
                cooldown: config.cooldown,
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, State>> {
        // Crash-only: a panic unwinding through a caller never holds
        // this lock (admit/record are self-contained), but recover from
        // poison anyway rather than wedging every future request.
        self.states
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admission check before running an analysis of network `fp`.
    pub fn admit(&self, fp: u64) -> Admission {
        let mut states = self.lock();
        let state = states.entry(fp).or_insert(State::Closed {
            consecutive_failures: 0,
        });
        let fast_fail = |secs: u64| {
            rsn_obs::counter_add("serve.breaker_fast_fail", 1);
            Admission::FastFail {
                retry_after_secs: secs.max(1),
            }
        };
        match state {
            State::Closed { .. } => Admission::Allow,
            State::Open { until } => {
                let now = Instant::now();
                if now < *until {
                    fast_fail((*until - now).as_secs() + 1)
                } else {
                    // Cooldown over: this request is the half-open probe.
                    *state = State::HalfOpen {
                        probe_in_flight: true,
                    };
                    Admission::Allow
                }
            }
            State::HalfOpen { probe_in_flight } => {
                if *probe_in_flight {
                    fast_fail(1)
                } else {
                    *probe_in_flight = true;
                    Admission::Allow
                }
            }
        }
    }

    /// Reports the outcome of an admitted request. `failed` means a
    /// panic or a 5xx — client errors (4xx) and deadline 408s don't
    /// count against the network.
    pub fn record(&self, fp: u64, failed: bool) {
        let mut states = self.lock();
        let Some(state) = states.get_mut(&fp) else {
            return;
        };
        match state {
            State::Closed {
                consecutive_failures,
            } => {
                if failed {
                    *consecutive_failures += 1;
                    if *consecutive_failures >= self.config.threshold {
                        *state = self.open();
                    }
                } else {
                    *consecutive_failures = 0;
                }
            }
            State::HalfOpen { .. } => {
                *state = if failed {
                    self.open()
                } else {
                    State::Closed {
                        consecutive_failures: 0,
                    }
                };
            }
            // A late report against an already-open breaker (e.g. a slow
            // request admitted before the trip) doesn't restart the
            // cooldown clock.
            State::Open { .. } => {}
        }
    }

    fn open(&self) -> State {
        rsn_obs::counter_add("serve.breaker_open", 1);
        State::Open {
            until: Instant::now() + self.config.cooldown,
        }
    }

    /// `true` if the breaker for `fp` currently fails fast (test
    /// introspection).
    pub fn is_open(&self, fp: u64) -> bool {
        let states = self.lock();
        matches!(states.get(&fp), Some(State::Open { until }) if Instant::now() < *until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Breakers {
        Breakers::new(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(50),
        })
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = quick();
        for _ in 0..2 {
            assert_eq!(b.admit(7), Admission::Allow);
            b.record(7, true);
        }
        assert!(!b.is_open(7), "two failures stay closed");
        assert_eq!(b.admit(7), Admission::Allow);
        b.record(7, true);
        assert!(b.is_open(7), "third consecutive failure opens");
        assert!(matches!(b.admit(7), Admission::FastFail { .. }));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = quick();
        for _ in 0..2 {
            b.admit(7);
            b.record(7, true);
        }
        b.admit(7);
        b.record(7, false); // streak broken
        for _ in 0..2 {
            b.admit(7);
            b.record(7, true);
        }
        assert!(!b.is_open(7), "streak restarted after a success");
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let b = quick();
        for _ in 0..3 {
            b.admit(7);
            b.record(7, true);
        }
        assert!(matches!(b.admit(7), Admission::FastFail { .. }));
        std::thread::sleep(Duration::from_millis(60));
        // Cooldown over: one probe admitted, concurrent requests rejected.
        assert_eq!(b.admit(7), Admission::Allow);
        assert!(matches!(b.admit(7), Admission::FastFail { .. }));
        b.record(7, false);
        assert_eq!(b.admit(7), Admission::Allow, "probe success closes");

        // Open again, and this time the probe fails: back to open.
        for _ in 0..3 {
            b.admit(7);
            b.record(7, true);
        }
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(b.admit(7), Admission::Allow);
        b.record(7, true);
        assert!(b.is_open(7), "failed probe reopens");
    }

    #[test]
    fn breakers_are_per_fingerprint() {
        let b = quick();
        for _ in 0..3 {
            b.admit(1);
            b.record(1, true);
        }
        assert!(b.is_open(1));
        assert_eq!(b.admit(2), Admission::Allow, "other networks unaffected");
    }
}
