//! `rsn-serve` — the resident analysis service.
//!
//! Running lint / sweep / plan / synth as one-shot CLI invocations
//! rebuilds the same expensive artifacts — the [`AccessEngine`]
//! (rsn-fault), the CNF model ([`NetworkSat`], rsn-verify), the
//! collapsed fault partitions — on every call. This crate keeps them
//! resident: a zero-dependency HTTP/1.1 + JSON daemon over `std::net`
//! with a fixed worker pool, a content-addressed [`cache::ArtifactCache`]
//! shared across requests, per-request [`rsn_budget::Budget`] deadlines,
//! client-disconnect cancellation, and bounded-queue admission control.
//!
//! The daemon is *crash-only* (see [`server`]): per-request panic
//! isolation, supervised worker respawn, artifact-cache poisoning
//! recovery and per-network circuit breakers ([`breaker`]) — all of it
//! exercised by `rsn-fail` failpoint injection in the chaos test suite.
//!
//! # Endpoints
//!
//! | Route            | Body                                   | Result |
//! |------------------|----------------------------------------|--------|
//! | `POST /lint`     | network spec                           | verification report |
//! | `POST /sweep`    | network spec + profile/threads         | fault-sweep summary |
//! | `POST /plan`     | network spec + target (+ fault_index)  | access plan |
//! | `POST /synth`    | network spec + options                 | synthesis report |
//! | `GET /metrics`   | —                                      | Prometheus text |
//! | `GET /healthz`   | —                                      | liveness + cache size |
//!
//! Network specs name a built-in example (`{"example": "fig2"}`), an
//! ITC'02 benchmark (`{"soc": "p22810"}`), or inline SoC text
//! (`{"soc_text": "..."}`); `"synthesize": true` runs fault-tolerant
//! synthesis on the base network first.
//!
//! [`AccessEngine`]: rsn_fault::AccessEngine
//! [`NetworkSat`]: rsn_verify::NetworkSat

pub mod api;
pub mod breaker;
pub mod cache;
pub mod http;
pub mod server;

pub use api::{ApiContext, ApiResponse};
pub use breaker::{Admission, BreakerConfig, Breakers};
pub use cache::{ArtifactCache, Artifacts};
pub use server::{Server, ServerHandle, ServerOptions};
