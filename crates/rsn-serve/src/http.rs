//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the analysis service: request-line + headers + `Content-Length`
//! bodies in, status + JSON bodies out. No keep-alive (every response
//! closes the connection), no chunked encoding, no TLS; the daemon is a
//! localhost tool, not an internet-facing server.

use std::io::{Read, Write};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Protocol-level failure while reading a request. Each maps to a 4xx.
#[derive(Debug)]
pub enum HttpError {
    /// Connection closed before a full request arrived.
    Disconnected,
    /// Socket error or timeout.
    Io(std::io::Error),
    /// Not parseable as HTTP/1.x.
    Malformed(&'static str),
    /// Head or body over the configured limit.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Disconnected => write!(f, "client disconnected"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request too large"),
        }
    }
}

impl HttpError {
    /// The response status this read failure maps to. The taxonomy:
    /// `413` only for over-limit payloads, `408` for a socket timeout
    /// (the client stalled mid-request), `400` only for malformed
    /// framing. `Disconnected` never gets a response (there is nobody
    /// to send it to) and maps to `400` here only for completeness.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::TooLarge => 413,
            HttpError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                408
            }
            HttpError::Malformed(_) | HttpError::Io(_) | HttpError::Disconnected => 400,
        }
    }
}

/// Reads one request from the stream (generic over [`Read`] so tests
/// and fuzzers can drive it from byte slices). `max_body` bounds the
/// declared `Content-Length`.
pub fn read_request<R: Read>(stream: &mut R, max_body: usize) -> Result<Request, HttpError> {
    // Read until the blank line separating head from body.
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let body_start;
    loop {
        let n = stream.read(&mut buf).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Disconnected);
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(HttpError::TooLarge);
        }
    }

    let head_text = std::str::from_utf8(&head[..body_start])
        .map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts.next().ok_or(HttpError::Malformed("missing path"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::Malformed("header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse())
        .transpose()
        .map_err(|_| HttpError::Malformed("content-length"))?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }

    let mut body = head[body_start + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Disconnected);
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and flushes. `Connection: close` always — the
/// service speaks one request per connection.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_ext(stream, status, content_type, &[], body)
}

/// Like [`write_response`], with extra headers (e.g. `Retry-After` on a
/// circuit-breaker `503`). Header values must already be valid HTTP
/// header text.
pub fn write_response_ext<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The canonical reason phrase for the statuses the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream, 1024 * 1024);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /sweep?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversized() {
        assert!(matches!(
            roundtrip(b"NOT A REQUEST\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nhi")
                .unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        assert!(matches!(
            read_request(&mut stream, 10),
            Err(HttpError::TooLarge)
        ));
        client.join().unwrap();
    }

    #[test]
    fn reads_requests_from_plain_readers() {
        // `read_request` is generic over `Read`: byte slices work, which
        // is what the fuzz harness drives it with.
        let raw: &[u8] = b"POST /lint HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let req = read_request(&mut { raw }, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn status_taxonomy_per_error() {
        // 413: payload over limit. 408: socket timeout. 400: malformed
        // framing only.
        assert_eq!(HttpError::TooLarge.status(), 413);
        assert_eq!(HttpError::Malformed("x").status(), 400);
        let timeout = std::io::Error::new(std::io::ErrorKind::WouldBlock, "t");
        assert_eq!(HttpError::Io(timeout).status(), 408);
        let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert_eq!(HttpError::Io(timeout).status(), 408);
        let reset = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "r");
        assert_eq!(HttpError::Io(reset).status(), 400);
    }

    #[test]
    fn body_over_max_is_413_even_when_fully_sent() {
        let raw: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 20\r\n\r\n0123456789012345678901234";
        let err = read_request(&mut { raw }, 10).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        write_response_ext(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "2".into())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    /// Response-side slowloris: a client that accepts the connection but
    /// never reads must not be able to park a worker forever in
    /// `write_all`. With a write timeout set, the oversized write errors
    /// out in bounded time instead of blocking indefinitely.
    #[test]
    fn stalled_reader_cannot_block_writes_forever() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The client connects and then stalls: never reads a byte.
        let _client = TcpStream::connect(addr).unwrap();
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_write_timeout(Some(std::time::Duration::from_millis(200)))
            .unwrap();
        // Much larger than any default socket buffer pair.
        let body = vec![b'x'; 64 * 1024 * 1024];
        let start = std::time::Instant::now();
        let result = write_response(&mut stream, 200, "text/plain", &body);
        assert!(result.is_err(), "write to a stalled reader must time out");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "timed out too slowly: {:?}",
            start.elapsed()
        );
    }
}
