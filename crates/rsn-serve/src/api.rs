//! Endpoint handlers: JSON in, JSON out, engines in between.
//!
//! Every analysis endpoint resolves the request's network, pulls the
//! shared artifacts from the [`ArtifactCache`] and answers with the
//! engine's own report serialization plus a `request_metrics` object —
//! the counters this request (and only this request) produced, captured
//! by the per-request [`rsn_obs::ScopeHandle`] the server installs.
//!
//! ## Network specification
//!
//! Analysis requests name their network with exactly one of:
//!
//! * `"example"`: `"fig2"`, `"chain"` (optional `"segments"`, `"bits"`)
//!   or `"sib_tree"` (optional `"depth"`, `"fanout"`, `"seg_len"`),
//! * `"soc"`: an embedded ITC'02 benchmark name (e.g. `"u226"`),
//! * `"soc_text"`: an inline `.soc` document,
//!
//! optionally followed by `"synthesize": true` to analyze the
//! fault-tolerant synthesized version instead of the flat SIB network.

use std::sync::atomic::{AtomicU64, Ordering};

use rsn_budget::Budget;
use rsn_core::Rsn;
use rsn_fault::{
    analyze_classes_on_budget, effect_of, plan_faulty_access_on, Fault, HardeningProfile,
};
use rsn_obs::json::Json;
use rsn_verify::{verify_on, VerifyOptions};

use crate::breaker::{Admission, BreakerConfig, Breakers};
use crate::cache::ArtifactCache;
use crate::http::Request;

/// Shared state of all request handlers.
pub struct ApiContext {
    pub cache: ArtifactCache,
    /// Per-fingerprint circuit breakers.
    pub breakers: Breakers,
    /// Worker threads per fault sweep.
    pub sweep_threads: usize,
    /// Cap on SAT portfolio workers per request (`1` = serial only).
    pub solver_threads: usize,
}

impl ApiContext {
    pub fn new(
        cache_cap: usize,
        sweep_threads: usize,
        solver_threads: usize,
        breakers: BreakerConfig,
    ) -> ApiContext {
        ApiContext {
            cache: ArtifactCache::new(cache_cap),
            breakers: Breakers::new(breakers),
            sweep_threads: sweep_threads.max(1),
            solver_threads: solver_threads.max(1),
        }
    }
}

/// Per-request bookkeeping shared between the handler and the server's
/// supervision layer. The handler records the resolved network's
/// fingerprint here *before* engine work starts, so even a request that
/// panics can be attributed to its network for circuit breaking.
#[derive(Default)]
pub struct RequestInfo {
    /// Resolved network fingerprint; 0 = not resolved (no breaker
    /// bookkeeping).
    pub fingerprint: AtomicU64,
}

/// A handler outcome: HTTP status plus JSON body.
#[derive(Debug, Clone)]
pub struct ApiResponse {
    pub status: u16,
    pub body: Json,
    /// `Retry-After` seconds, set on circuit-breaker 503s.
    pub retry_after: Option<u64>,
}

impl ApiResponse {
    fn ok(body: Json) -> ApiResponse {
        ApiResponse {
            status: 200,
            body,
            retry_after: None,
        }
    }

    pub(crate) fn error(status: u16, message: impl Into<String>) -> ApiResponse {
        let mut body = Json::obj();
        body.set("error", Json::Str(message.into()));
        ApiResponse {
            status,
            body,
            retry_after: None,
        }
    }
}

/// Breaker admission for the resolved network: records the fingerprint
/// into `info`, then either admits the request or fails fast with a
/// `503` + `Retry-After` when the network's breaker is open.
fn admit(ctx: &ApiContext, rsn: &Rsn, info: &RequestInfo) -> Result<(), ApiResponse> {
    let fp = rsn.fingerprint();
    info.fingerprint.store(fp, Ordering::Relaxed);
    match ctx.breakers.admit(fp) {
        Admission::Allow => Ok(()),
        Admission::FastFail { retry_after_secs } => {
            let mut resp = ApiResponse::error(
                503,
                "circuit breaker open: repeated failures on this network; retry later",
            );
            resp.retry_after = Some(retry_after_secs);
            Err(resp)
        }
    }
}

/// Routes one request. `scope` is this request's metric scope (already
/// entered by the server); its counters are appended to successful
/// analysis responses. `info` carries the resolved network fingerprint
/// back to the server's supervision layer.
pub fn handle(
    ctx: &ApiContext,
    req: &Request,
    budget: &Budget,
    scope: &rsn_obs::ScopeHandle,
    info: &RequestInfo,
) -> ApiResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut body = Json::obj();
            body.set("status", Json::Str("ok".into()));
            body.set("cached_networks", Json::Num(ctx.cache.len() as f64));
            ApiResponse::ok(body)
        }
        ("POST", "/lint") => with_json_body(req, |spec| lint(ctx, spec, budget, scope, info)),
        ("POST", "/sweep") => with_json_body(req, |spec| sweep(ctx, spec, budget, scope, info)),
        ("POST", "/plan") => with_json_body(req, |spec| plan(ctx, spec, budget, scope, info)),
        ("POST", "/synth") => with_json_body(req, |spec| synth(ctx, spec, budget, scope, info)),
        ("GET", "/metrics") => ApiResponse::ok(Json::Str(String::new())), // rendered by server
        (_, "/healthz" | "/lint" | "/sweep" | "/plan" | "/synth" | "/metrics") => {
            ApiResponse::error(405, format!("method {} not allowed here", req.method))
        }
        (_, path) => ApiResponse::error(404, format!("no such endpoint: {path}")),
    }
}

fn with_json_body(req: &Request, f: impl FnOnce(&Json) -> ApiResponse) -> ApiResponse {
    // Chaos failpoint: `panic` unwinds into the per-request
    // catch_unwind; `err`/`budget` take the service's error path.
    if rsn_fail::eval("serve.parse").is_some() {
        return ApiResponse::error(500, "injected failure at failpoint serve.parse");
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return ApiResponse::error(400, "body is not UTF-8"),
    };
    match rsn_obs::json::parse(text) {
        Ok(spec) => f(&spec),
        Err(e) => ApiResponse::error(400, format!("body is not valid JSON: {e}")),
    }
}

fn lint(
    ctx: &ApiContext,
    spec: &Json,
    budget: &Budget,
    scope: &rsn_obs::ScopeHandle,
    info: &RequestInfo,
) -> ApiResponse {
    let rsn = match resolve_network(spec, budget) {
        Ok(rsn) => rsn,
        Err(resp) => return resp,
    };
    if let Err(resp) = admit(ctx, &rsn, info) {
        return resp;
    }
    let explain = matches!(spec.get("explain"), Some(Json::Bool(true)));
    // Per-request portfolio width, capped by the server-wide
    // `--solver-threads` limit (absent: the server cap itself).
    let solver_threads = spec
        .get("solver_threads")
        .and_then(Json::as_f64)
        .map(|t| (t as usize).clamp(1, ctx.solver_threads))
        .unwrap_or(ctx.solver_threads);
    let artifacts = ctx.cache.get_or_insert(&rsn);
    let sat = artifacts.network_sat();
    let opts = VerifyOptions {
        solver_threads,
        ..VerifyOptions::default()
    };
    let mut report = verify_on(artifacts.rsn(), &sat, opts, budget);
    if explain {
        rsn_verify::explain_report(artifacts.rsn(), &sat, &mut report, budget);
    }
    if cancelled(budget) {
        return ApiResponse::error(408, "request cancelled or deadline exceeded");
    }
    let mut body = Json::obj();
    body.set("report", report.to_json());
    body.set("clean", Json::Bool(report.is_clean()));
    finish(&mut body, &rsn, scope);
    ApiResponse::ok(body)
}

fn sweep(
    ctx: &ApiContext,
    spec: &Json,
    budget: &Budget,
    scope: &rsn_obs::ScopeHandle,
    info: &RequestInfo,
) -> ApiResponse {
    let rsn = match resolve_network(spec, budget) {
        Ok(rsn) => rsn,
        Err(resp) => return resp,
    };
    if let Err(resp) = admit(ctx, &rsn, info) {
        return resp;
    }
    let profile = match hardening_profile(spec) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let threads = spec
        .get("threads")
        .and_then(Json::as_f64)
        .map(|t| (t as usize).clamp(1, 64))
        .unwrap_or(ctx.sweep_threads);

    let artifacts = ctx.cache.get_or_insert(&rsn);
    let engine = artifacts.engine();
    let faults = artifacts.faults();
    let classes = artifacts.classes(profile);
    let report = analyze_classes_on_budget(&engine, &faults, &classes, threads, budget);
    if cancelled(budget) {
        return ApiResponse::error(408, "request cancelled or deadline exceeded");
    }

    let mut result = Json::obj();
    result.set("fault_count", Json::Num(report.fault_count as f64));
    result.set("classes", Json::Num(report.classes as f64));
    result.set("collapse_ratio", Json::Num(report.collapse_ratio));
    result.set("total_weight", Json::Num(report.total_weight as f64));
    result.set("worst_segments", Json::Num(report.worst_segments));
    result.set("avg_segments", Json::Num(report.avg_segments));
    result.set("worst_bits", Json::Num(report.worst_bits));
    result.set("avg_bits", Json::Num(report.avg_bits));
    result.set("quarantined", Json::Num(report.quarantined as f64));
    result.set("skipped", Json::Num(report.skipped as f64));
    result.set("complete", Json::Bool(report.is_complete()));
    if let Some(worst) = &report.worst_fault {
        result.set("worst_fault", fault_json(&rsn, worst));
    }

    let mut body = Json::obj();
    body.set("report", result);
    finish(&mut body, &rsn, scope);
    ApiResponse::ok(body)
}

fn plan(
    ctx: &ApiContext,
    spec: &Json,
    budget: &Budget,
    scope: &rsn_obs::ScopeHandle,
    info: &RequestInfo,
) -> ApiResponse {
    let rsn = match resolve_network(spec, budget) {
        Ok(rsn) => rsn,
        Err(resp) => return resp,
    };
    if let Err(resp) = admit(ctx, &rsn, info) {
        return resp;
    }
    let target_name = match spec.get("target").and_then(Json::as_str) {
        Some(t) => t,
        None => return ApiResponse::error(400, "missing \"target\" segment name"),
    };
    let target = match rsn.find(target_name) {
        Some(id) => id,
        None => return ApiResponse::error(400, format!("no node named \"{target_name}\"")),
    };
    let profile = match hardening_profile(spec) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    let artifacts = ctx.cache.get_or_insert(&rsn);
    let engine = artifacts.engine();

    // The fault to plan around: an index into the universe, or benign.
    let effect = match spec.get("fault_index").and_then(Json::as_f64) {
        Some(i) => {
            let faults = artifacts.faults();
            let i = i as usize;
            match faults.get(i) {
                Some(f) => effect_of(artifacts.rsn(), f, profile),
                None => {
                    return ApiResponse::error(
                        400,
                        format!("fault_index {i} out of range ({} faults)", faults.len()),
                    )
                }
            }
        }
        None => rsn_fault::FaultEffect::benign(),
    };

    let plan = plan_faulty_access_on(&engine, &effect, target);
    if cancelled(budget) {
        return ApiResponse::error(408, "request cancelled or deadline exceeded");
    }
    let mut result = Json::obj();
    match plan {
        Some(p) => {
            result.set("accessible", Json::Bool(true));
            result.set("csu_count", Json::Num(p.csu_count() as f64));
            result.set(
                "path",
                Json::Arr(
                    p.path
                        .iter()
                        .map(|&n| Json::Str(rsn.node(n).name().to_string()))
                        .collect(),
                ),
            );
        }
        None => {
            result.set("accessible", Json::Bool(false));
        }
    }
    let mut body = Json::obj();
    body.set("plan", result);
    finish(&mut body, &rsn, scope);
    ApiResponse::ok(body)
}

fn synth(
    ctx: &ApiContext,
    spec: &Json,
    budget: &Budget,
    scope: &rsn_obs::ScopeHandle,
    info: &RequestInfo,
) -> ApiResponse {
    let rsn = match resolve_network(spec, budget) {
        Ok(rsn) => rsn,
        Err(resp) => return resp,
    };
    if let Err(resp) = admit(ctx, &rsn, info) {
        return resp;
    }
    let mut opts = rsn_synth::SynthesisOptions::new();
    if spec.get("verify").and_then(as_bool) == Some(true) {
        opts.verify = true;
    }
    let result = match rsn_synth::synthesize_under(&rsn, &opts, budget) {
        Ok(r) => r,
        Err(e) => return ApiResponse::error(400, format!("synthesis failed: {e}")),
    };
    if cancelled(budget) {
        return ApiResponse::error(408, "request cancelled or deadline exceeded");
    }
    // Cache the synthesized network so follow-up /sweep and /lint
    // requests on it start warm.
    let entry = ctx.cache.get_or_insert(&result.rsn);

    let mut report = Json::obj();
    report.set("added_edges", Json::Num(result.report.added_edges as f64));
    report.set("added_muxes", Json::Num(result.report.added_muxes as f64));
    report.set("added_bits", Json::Num(result.report.added_bits as f64));
    report.set("used_ilp", Json::Bool(result.report.used_ilp));
    report.set("degraded", Json::Bool(result.report.degraded));
    report.set(
        "hardened_muxes",
        Json::Num(result.report.hardened_muxes as f64),
    );

    let mut body = Json::obj();
    body.set("report", report);
    body.set("nodes", Json::Num(entry.rsn().node_count() as f64));
    body.set(
        "fingerprint",
        Json::Str(format!("{:016x}", entry.rsn().fingerprint())),
    );
    finish(&mut body, &rsn, scope);
    ApiResponse::ok(body)
}

/// Appends the shared response trailer: the analyzed network's identity
/// and this request's scoped counters.
fn finish(body: &mut Json, rsn: &Rsn, scope: &rsn_obs::ScopeHandle) {
    body.set("network", Json::Str(rsn.name().to_string()));
    body.set(
        "fingerprint",
        Json::Str(format!("{:016x}", rsn.fingerprint())),
    );
    attach_request_metrics(body, scope);
}

/// Appends this request's scoped counters as `request_metrics`. The
/// server also calls this for responses that bypassed the handlers
/// (caught panics, injected chaos), so failures stay as attributable
/// as successes.
pub(crate) fn attach_request_metrics(body: &mut Json, scope: &rsn_obs::ScopeHandle) {
    let snapshot = scope.snapshot();
    let mut counters = Json::obj();
    for (name, value) in &snapshot.counters {
        counters.set(name, Json::Num(*value as f64));
    }
    body.set("request_metrics", counters);
}

fn cancelled(budget: &Budget) -> bool {
    matches!(
        budget.exhausted(),
        Some(rsn_budget::Reason::Cancelled | rsn_budget::Reason::Deadline)
    )
}

fn as_bool(j: &Json) -> Option<bool> {
    match j {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn hardening_profile(spec: &Json) -> Result<HardeningProfile, ApiResponse> {
    match spec.get("profile").and_then(Json::as_str) {
        None | Some("unhardened") => Ok(HardeningProfile::unhardened()),
        Some("hardened") => Ok(HardeningProfile::hardened()),
        Some(other) => Err(ApiResponse::error(
            400,
            format!("unknown profile \"{other}\" (expected \"unhardened\" or \"hardened\")"),
        )),
    }
}

fn fault_json(rsn: &Rsn, fault: &Fault) -> Json {
    let mut j = Json::obj();
    j.set("site", Json::Str(format!("{:?}", fault.site)));
    j.set("stuck_at", Json::Num(fault.value as u8 as f64));
    j.set("weight", Json::Num(fault.weight as f64));
    j.set(
        "node",
        Json::Str(rsn.node(fault.site.node()).name().to_string()),
    );
    j
}

/// Builds the request's network from its JSON spec.
fn resolve_network(spec: &Json, budget: &Budget) -> Result<Rsn, ApiResponse> {
    let base = base_network(spec)?;
    if spec.get("synthesize").and_then(as_bool) == Some(true) {
        let opts = rsn_synth::SynthesisOptions::new();
        match rsn_synth::synthesize_under(&base, &opts, budget) {
            Ok(result) => Ok(result.rsn),
            Err(e) => Err(ApiResponse::error(400, format!("synthesis failed: {e}"))),
        }
    } else {
        Ok(base)
    }
}

fn base_network(spec: &Json) -> Result<Rsn, ApiResponse> {
    let num = |key: &str, default: f64| -> f64 {
        spec.get(key).and_then(Json::as_f64).unwrap_or(default)
    };
    if let Some(example) = spec.get("example").and_then(Json::as_str) {
        return match example {
            "fig2" => Ok(rsn_core::examples::fig2()),
            "chain" => Ok(rsn_core::examples::chain(
                (num("segments", 4.0) as usize).clamp(1, 4096),
                (num("bits", 8.0) as u32).clamp(1, 1 << 20),
            )),
            "sib_tree" => Ok(rsn_core::examples::sib_tree(
                (num("depth", 2.0) as u32).clamp(1, 8),
                (num("fanout", 2.0) as usize).clamp(1, 16),
                (num("seg_len", 4.0) as u32).clamp(1, 1 << 20),
            )),
            other => Err(ApiResponse::error(
                400,
                format!("unknown example \"{other}\" (fig2, chain, sib_tree)"),
            )),
        };
    }
    if let Some(name) = spec.get("soc").and_then(Json::as_str) {
        let soc = rsn_itc02::by_name(name).ok_or_else(|| {
            ApiResponse::error(400, format!("unknown ITC'02 benchmark \"{name}\""))
        })?;
        return rsn_sib::generate(&soc)
            .map_err(|e| ApiResponse::error(400, format!("SIB generation failed: {e}")));
    }
    if let Some(text) = spec.get("soc_text").and_then(Json::as_str) {
        let soc = rsn_itc02::parse_soc(text)
            .map_err(|e| ApiResponse::error(400, format!("bad .soc document: {e}")))?;
        return rsn_sib::generate(&soc)
            .map_err(|e| ApiResponse::error(400, format!("SIB generation failed: {e}")));
    }
    Err(ApiResponse::error(
        400,
        "network spec needs one of \"example\", \"soc\" or \"soc_text\"",
    ))
}
