//! The shared artifact cache: one entry per distinct network (keyed by
//! [`Rsn::fingerprint`]), holding lazily-built `Arc`'d analysis
//! artifacts — the [`AccessEngine`], the [`NetworkSat`] CNF model and
//! the collapsed [`FaultClasses`] partitions.
//!
//! All three are expensive pure functions of the network, and all three
//! are immutable once built (queries run against caller-owned scratch),
//! so concurrent requests for the same network share one copy. Laziness
//! matters: a `/lint` request never pays for fault collapsing, a
//! `/sweep` never pays for CNF encoding. Each artifact sits behind a
//! `OnceLock` *inside* the entry, so a slow build blocks only requests
//! that need that artifact of that network — never the cache map.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rsn_core::Rsn;
use rsn_fault::{fault_universe, AccessEngine, Fault, FaultClasses, HardeningProfile};
use rsn_verify::NetworkSat;

/// Lazily-built shared artifacts of one network.
pub struct Artifacts {
    rsn: Arc<Rsn>,
    engine: OnceLock<Arc<AccessEngine>>,
    sat: OnceLock<Arc<NetworkSat>>,
    faults: OnceLock<Arc<Vec<Fault>>>,
    /// Collapsed partitions, indexed by `HardeningProfile::select_hardened`.
    classes: [OnceLock<Arc<FaultClasses>>; 2],
    /// Set when an artifact build panicked: the entry is evicted on next
    /// lookup instead of serving (or wedging on) half-built state.
    poisoned: AtomicBool,
}

/// Builds `slot` under a panic guard. On a panic inside `build`, the
/// entry is marked poisoned (the cache evicts it on next lookup, so the
/// fingerprint is rebuilt from scratch) and the panic resumes into the
/// per-request `catch_unwind`, which turns it into a structured 500.
///
/// Unlike `OnceLock::get_or_init`, a lost race here means two threads
/// may build the same artifact concurrently and one result is dropped —
/// the price of never letting a panicking builder block or poison the
/// other requests waiting on the slot.
fn build_guarded<T>(
    slot: &OnceLock<Arc<T>>,
    poisoned: &AtomicBool,
    build: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(v) = slot.get() {
        return Arc::clone(v);
    }
    match catch_unwind(AssertUnwindSafe(build)) {
        Ok(value) => {
            let _ = slot.set(Arc::new(value));
            Arc::clone(slot.get().expect("slot was just set"))
        }
        Err(panic) => {
            poisoned.store(true, Ordering::SeqCst);
            rsn_obs::counter_add("serve.cache_poisoned", 1);
            resume_unwind(panic)
        }
    }
}

// The whole point of the cache is cross-thread sharing; fail at compile
// time if an artifact ever stops being shareable.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Artifacts>()
};

impl Artifacts {
    fn new(rsn: Arc<Rsn>) -> Artifacts {
        Artifacts {
            rsn,
            engine: OnceLock::new(),
            sat: OnceLock::new(),
            faults: OnceLock::new(),
            classes: [OnceLock::new(), OnceLock::new()],
            poisoned: AtomicBool::new(false),
        }
    }

    /// The network itself.
    pub fn rsn(&self) -> &Arc<Rsn> {
        &self.rsn
    }

    /// `true` after an artifact build panicked: the entry must not be
    /// served again (the cache evicts it on next lookup).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// The accessibility engine, built on first use.
    pub fn engine(&self) -> Arc<AccessEngine> {
        build_guarded(&self.engine, &self.poisoned, || {
            rsn_fail::eval("serve.cache");
            AccessEngine::from_arc(Arc::clone(&self.rsn))
        })
    }

    /// The CNF model, built on first use.
    pub fn network_sat(&self) -> Arc<NetworkSat> {
        build_guarded(&self.sat, &self.poisoned, || {
            rsn_fail::eval("serve.cache");
            NetworkSat::build(&self.rsn)
        })
    }

    /// The single-stuck-at fault universe, built on first use.
    pub fn faults(&self) -> Arc<Vec<Fault>> {
        build_guarded(&self.faults, &self.poisoned, || fault_universe(&self.rsn))
    }

    /// The collapsed fault partition for a hardening profile, built on
    /// first use (per profile).
    pub fn classes(&self, profile: HardeningProfile) -> Arc<FaultClasses> {
        let slot = profile.select_hardened as usize;
        build_guarded(&self.classes[slot], &self.poisoned, || {
            FaultClasses::build(&self.rsn, &self.faults(), profile)
        })
    }
}

/// A bounded, keyed store of [`Artifacts`], evicting least-recently-used
/// networks beyond `cap`.
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    cap: usize,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Arc<Artifacts>>,
    /// Keys from least- to most-recently used.
    order: Vec<u64>,
}

impl ArtifactCache {
    /// An empty cache holding at most `cap` networks (min 1).
    pub fn new(cap: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner::default()),
            cap: cap.max(1),
        }
    }

    /// Entry for `rsn`, creating it on first sight. Counts
    /// `serve.cache_hits` / `serve.cache_misses` and keeps the
    /// `serve.cache_networks` gauge current. In-flight requests keep
    /// their `Arc` across an eviction; the evicted entry just stops
    /// being findable. An entry whose artifact build panicked is
    /// treated as absent — it is evicted here and rebuilt fresh, so one
    /// crashed build never wedges a fingerprint.
    pub fn get_or_insert(&self, rsn: &Rsn) -> Arc<Artifacts> {
        let key = rsn.fingerprint();
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = inner.entries.get(&key).cloned() {
            if entry.is_poisoned() {
                inner.entries.remove(&key);
                inner.order.retain(|&k| k != key);
            } else {
                rsn_obs::counter_add("serve.cache_hits", 1);
                inner.order.retain(|&k| k != key);
                inner.order.push(key);
                return entry;
            }
        }
        rsn_obs::counter_add("serve.cache_misses", 1);
        let entry = Arc::new(Artifacts::new(Arc::new(rsn.clone())));
        inner.entries.insert(key, Arc::clone(&entry));
        inner.order.push(key);
        while inner.entries.len() > self.cap {
            let evict = inner.order.remove(0);
            inner.entries.remove(&evict);
        }
        rsn_obs::gauge_set("serve.cache_networks", inner.entries.len() as f64);
        entry
    }

    /// Number of cached networks.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entries
            .len()
    }

    /// `true` when no network is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples;

    /// Tests that build engine/CNF artifacts must not overlap the
    /// chaos window of `panicked_build_poisons_and_evicts…` (failpoints
    /// are process-global).
    static CHAOS: Mutex<()> = Mutex::new(());

    #[test]
    fn same_network_shares_artifacts() {
        let _guard = CHAOS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cache = ArtifactCache::new(4);
        let rsn = examples::fig2();
        let a = cache.get_or_insert(&rsn);
        let b = cache.get_or_insert(&rsn.clone());
        assert!(Arc::ptr_eq(&a, &b));
        // Artifacts are built once: the second call returns the same Arc.
        let e1 = a.engine();
        let e2 = b.engine();
        assert!(Arc::ptr_eq(&e1, &e2));
        let s1 = a.network_sat();
        let s2 = b.network_sat();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_networks_get_distinct_entries() {
        let cache = ArtifactCache::new(4);
        let a = cache.get_or_insert(&examples::fig2());
        let b = cache.get_or_insert(&examples::chain(3, 4));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_beyond_cap() {
        let cache = ArtifactCache::new(2);
        let fig2 = examples::fig2();
        let chain = examples::chain(3, 4);
        let tree = examples::sib_tree(2, 2, 4);
        cache.get_or_insert(&fig2);
        cache.get_or_insert(&chain);
        cache.get_or_insert(&fig2); // touch: chain is now LRU
        cache.get_or_insert(&tree); // evicts chain
        assert_eq!(cache.len(), 2);
        let before = rsn_obs::counter_get("serve.cache_misses");
        cache.get_or_insert(&chain); // rebuilt: a miss again
        assert_eq!(rsn_obs::counter_get("serve.cache_misses"), before + 1);
    }

    #[test]
    fn panicked_build_poisons_and_evicts_instead_of_wedging() {
        let _guard = CHAOS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cache = ArtifactCache::new(4);
        let rsn = examples::fig2();
        let entry = cache.get_or_insert(&rsn);

        // Simulate an engine build that dies mid-OnceLock-init.
        rsn_fail::configure("serve.cache", rsn_fail::Action::Panic, 1.0, Some(1));
        let before = rsn_obs::counter_get("serve.cache_poisoned");
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry.engine()));
        rsn_fail::remove("serve.cache");
        assert!(died.is_err(), "injected panic must escape the build");
        assert!(entry.is_poisoned());
        assert_eq!(rsn_obs::counter_get("serve.cache_poisoned"), before + 1);

        // The next lookup must NOT return the poisoned entry...
        let fresh = cache.get_or_insert(&rsn);
        assert!(!Arc::ptr_eq(&entry, &fresh));
        assert!(!fresh.is_poisoned());
        // ...and its artifacts build fine now that the chaos is off.
        let _ = fresh.engine();
        let _ = fresh.network_sat();
    }

    #[test]
    fn classes_are_per_profile() {
        let cache = ArtifactCache::new(2);
        let entry = cache.get_or_insert(&examples::fig2());
        let u = entry.classes(HardeningProfile::unhardened());
        let h = entry.classes(HardeningProfile::hardened());
        let u2 = entry.classes(HardeningProfile::unhardened());
        assert!(Arc::ptr_eq(&u, &u2));
        assert!(!Arc::ptr_eq(&u, &h));
    }
}
