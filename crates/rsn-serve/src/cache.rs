//! The shared artifact cache: one entry per distinct network (keyed by
//! [`Rsn::fingerprint`]), holding lazily-built `Arc`'d analysis
//! artifacts — the [`AccessEngine`], the [`NetworkSat`] CNF model and
//! the collapsed [`FaultClasses`] partitions.
//!
//! All three are expensive pure functions of the network, and all three
//! are immutable once built (queries run against caller-owned scratch),
//! so concurrent requests for the same network share one copy. Laziness
//! matters: a `/lint` request never pays for fault collapsing, a
//! `/sweep` never pays for CNF encoding. Each artifact sits behind a
//! `OnceLock` *inside* the entry, so a slow build blocks only requests
//! that need that artifact of that network — never the cache map.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rsn_core::Rsn;
use rsn_fault::{fault_universe, AccessEngine, Fault, FaultClasses, HardeningProfile};
use rsn_verify::NetworkSat;

/// Lazily-built shared artifacts of one network.
pub struct Artifacts {
    rsn: Arc<Rsn>,
    engine: OnceLock<Arc<AccessEngine>>,
    sat: OnceLock<Arc<NetworkSat>>,
    faults: OnceLock<Arc<Vec<Fault>>>,
    /// Collapsed partitions, indexed by `HardeningProfile::select_hardened`.
    classes: [OnceLock<Arc<FaultClasses>>; 2],
}

// The whole point of the cache is cross-thread sharing; fail at compile
// time if an artifact ever stops being shareable.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Artifacts>()
};

impl Artifacts {
    fn new(rsn: Arc<Rsn>) -> Artifacts {
        Artifacts {
            rsn,
            engine: OnceLock::new(),
            sat: OnceLock::new(),
            faults: OnceLock::new(),
            classes: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// The network itself.
    pub fn rsn(&self) -> &Arc<Rsn> {
        &self.rsn
    }

    /// The accessibility engine, built on first use.
    pub fn engine(&self) -> Arc<AccessEngine> {
        Arc::clone(
            self.engine
                .get_or_init(|| Arc::new(AccessEngine::from_arc(Arc::clone(&self.rsn)))),
        )
    }

    /// The CNF model, built on first use.
    pub fn network_sat(&self) -> Arc<NetworkSat> {
        Arc::clone(
            self.sat
                .get_or_init(|| Arc::new(NetworkSat::build(&self.rsn))),
        )
    }

    /// The single-stuck-at fault universe, built on first use.
    pub fn faults(&self) -> Arc<Vec<Fault>> {
        Arc::clone(
            self.faults
                .get_or_init(|| Arc::new(fault_universe(&self.rsn))),
        )
    }

    /// The collapsed fault partition for a hardening profile, built on
    /// first use (per profile).
    pub fn classes(&self, profile: HardeningProfile) -> Arc<FaultClasses> {
        let slot = profile.select_hardened as usize;
        Arc::clone(
            self.classes[slot]
                .get_or_init(|| Arc::new(FaultClasses::build(&self.rsn, &self.faults(), profile))),
        )
    }
}

/// A bounded, keyed store of [`Artifacts`], evicting least-recently-used
/// networks beyond `cap`.
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    cap: usize,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Arc<Artifacts>>,
    /// Keys from least- to most-recently used.
    order: Vec<u64>,
}

impl ArtifactCache {
    /// An empty cache holding at most `cap` networks (min 1).
    pub fn new(cap: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner::default()),
            cap: cap.max(1),
        }
    }

    /// Entry for `rsn`, creating it on first sight. Counts
    /// `serve.cache_hits` / `serve.cache_misses` and keeps the
    /// `serve.cache_networks` gauge current. In-flight requests keep
    /// their `Arc` across an eviction; the evicted entry just stops
    /// being findable.
    pub fn get_or_insert(&self, rsn: &Rsn) -> Arc<Artifacts> {
        let key = rsn.fingerprint();
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.entries.get(&key).cloned() {
            rsn_obs::counter_add("serve.cache_hits", 1);
            inner.order.retain(|&k| k != key);
            inner.order.push(key);
            return entry;
        }
        rsn_obs::counter_add("serve.cache_misses", 1);
        let entry = Arc::new(Artifacts::new(Arc::new(rsn.clone())));
        inner.entries.insert(key, Arc::clone(&entry));
        inner.order.push(key);
        while inner.entries.len() > self.cap {
            let evict = inner.order.remove(0);
            inner.entries.remove(&evict);
        }
        rsn_obs::gauge_set("serve.cache_networks", inner.entries.len() as f64);
        entry
    }

    /// Number of cached networks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// `true` when no network is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples;

    #[test]
    fn same_network_shares_artifacts() {
        let cache = ArtifactCache::new(4);
        let rsn = examples::fig2();
        let a = cache.get_or_insert(&rsn);
        let b = cache.get_or_insert(&rsn.clone());
        assert!(Arc::ptr_eq(&a, &b));
        // Artifacts are built once: the second call returns the same Arc.
        let e1 = a.engine();
        let e2 = b.engine();
        assert!(Arc::ptr_eq(&e1, &e2));
        let s1 = a.network_sat();
        let s2 = b.network_sat();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_networks_get_distinct_entries() {
        let cache = ArtifactCache::new(4);
        let a = cache.get_or_insert(&examples::fig2());
        let b = cache.get_or_insert(&examples::chain(3, 4));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_beyond_cap() {
        let cache = ArtifactCache::new(2);
        let fig2 = examples::fig2();
        let chain = examples::chain(3, 4);
        let tree = examples::sib_tree(2, 2, 4);
        cache.get_or_insert(&fig2);
        cache.get_or_insert(&chain);
        cache.get_or_insert(&fig2); // touch: chain is now LRU
        cache.get_or_insert(&tree); // evicts chain
        assert_eq!(cache.len(), 2);
        let before = rsn_obs::counter_get("serve.cache_misses");
        cache.get_or_insert(&chain); // rebuilt: a miss again
        assert_eq!(rsn_obs::counter_get("serve.cache_misses"), before + 1);
    }

    #[test]
    fn classes_are_per_profile() {
        let cache = ArtifactCache::new(2);
        let entry = cache.get_or_insert(&examples::fig2());
        let u = entry.classes(HardeningProfile::unhardened());
        let h = entry.classes(HardeningProfile::hardened());
        let u2 = entry.classes(HardeningProfile::unhardened());
        assert!(Arc::ptr_eq(&u, &u2));
        assert!(!Arc::ptr_eq(&u, &h));
    }
}
