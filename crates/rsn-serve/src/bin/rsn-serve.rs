//! The `rsn-serve` daemon binary.
//!
//! ```text
//! rsn-serve --port 7223 --threads 4 --queue 64 --deadline-ms 30000
//! ```

use std::process::ExitCode;
use std::time::Duration;

use rsn_serve::{Server, ServerOptions};

const USAGE: &str = "\
rsn-serve - resident RSN analysis service

USAGE:
    rsn-serve [OPTIONS]

OPTIONS:
    --addr <ADDR>          bind address [default: 127.0.0.1]
    --port <PORT>          bind port, 0 picks a free one [default: 7223]
    --threads <N>          worker threads [default: 4]
    --queue <N>            pending-connection queue capacity [default: 64]
    --deadline-ms <MS>     per-request deadline, 0 = unlimited [default: 30000]
    --cache <N>            networks kept in the artifact cache [default: 16]
    --sweep-threads <N>    default threads per fault sweep [default: 2]
    --solver-threads <N>   cap on SAT portfolio workers per request; the
                           per-request `solver_threads` knob clamps to it
                           [default: RSN_THREADS or the CPU count]
    --breaker-threshold <N>    consecutive failures opening a network's
                               circuit breaker [default: 3]
    --breaker-cooldown-ms <MS> how long an open breaker rejects before
                               probing again [default: 2000]
    --help                 print this help

ENVIRONMENT:
    RSN_THREADS default worker-thread count for fault sweeps and the SAT
                portfolio (see rsn_budget::default_threads)
    RSN_FAIL    chaos failpoint spec, e.g.
                \"sat.solve=panic@0.3,42;serve.parse=err\"
                (see the rsn-fail crate for the grammar)
";

fn main() -> ExitCode {
    let mut opts = ServerOptions::default();
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 7223;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--addr" => host = value("--addr"),
            "--port" => port = parse(&value("--port"), "--port"),
            "--threads" => opts.workers = parse(&value("--threads"), "--threads"),
            "--queue" => opts.queue_cap = parse(&value("--queue"), "--queue"),
            "--deadline-ms" => {
                let ms: u64 = parse(&value("--deadline-ms"), "--deadline-ms");
                opts.deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--cache" => opts.cache_cap = parse(&value("--cache"), "--cache"),
            "--sweep-threads" => {
                opts.sweep_threads = parse(&value("--sweep-threads"), "--sweep-threads")
            }
            "--solver-threads" => {
                opts.solver_threads = parse(&value("--solver-threads"), "--solver-threads")
            }
            "--breaker-threshold" => {
                opts.breaker.threshold = parse(&value("--breaker-threshold"), "--breaker-threshold")
            }
            "--breaker-cooldown-ms" => {
                let ms: u64 = parse(&value("--breaker-cooldown-ms"), "--breaker-cooldown-ms");
                opts.breaker.cooldown = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown option: {other}")),
        }
    }
    opts.addr = format!("{host}:{port}");

    // Surface a bad RSN_FAIL spec at startup instead of on first request.
    if let Err(e) = rsn_fail::init_from_env() {
        fail(&format!("bad RSN_FAIL spec: {e}"));
    }

    let server = match Server::bind(opts.clone()) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot bind {}: {e}", opts.addr)),
    };
    match server.local_addr() {
        Ok(addr) => println!("rsn-serve listening on http://{addr}"),
        Err(_) => println!("rsn-serve listening on http://{}", opts.addr),
    }
    if let Err(e) = server.run() {
        fail(&format!("server error: {e}"));
    }
    println!("rsn-serve: drained, shutting down");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(text: &str, name: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("invalid value for {name}: {text}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("rsn-serve: {msg}\n\n{USAGE}");
    std::process::exit(2)
}
