//! Boolean control expressions over shadow-register bits and primary inputs.
//!
//! Select predicates, capture/update-disable predicates and multiplexer
//! address signals are all modeled as [`ControlExpr`] trees. An expression is
//! evaluated against a [`Config`](crate::Config), i.e. against the state of
//! all shadow registers and primary control inputs — exactly the domain `D =
//! H ∪ I` of the paper's formal model.

use std::fmt;

use crate::network::NodeId;

/// Identifier of a primary control input of the RSN.
///
/// Primary control inputs are part of a scan configuration alongside shadow
/// registers (the set `I` in the paper's formal model `M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputId(pub u32);

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

/// A boolean expression over shadow-register bits and primary inputs.
///
/// # Example
///
/// ```
/// use rsn_core::{ControlExpr, NodeId};
///
/// // Select(B) := (Select(D) ∧ ¬a) ∨ (Select(C) ∧ ¬b)  — Fig. 5 shape
/// let a = ControlExpr::reg(NodeId(3), 0);
/// let b = ControlExpr::reg(NodeId(4), 0);
/// let sel_d = ControlExpr::Const(true);
/// let sel_c = ControlExpr::Const(true);
/// let sel_b = (sel_d & !a) | (sel_c & !b);
/// assert!(sel_b.references(NodeId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ControlExpr {
    /// Constant true/false.
    Const(bool),
    /// The value of bit `1` of the shadow register of segment `0`.
    Reg(NodeId, u32),
    /// The value of a primary control input.
    Input(InputId),
    /// Logical negation.
    Not(Box<ControlExpr>),
    /// Conjunction of all operands (empty conjunction is `true`).
    And(Vec<ControlExpr>),
    /// Disjunction of all operands (empty disjunction is `false`).
    Or(Vec<ControlExpr>),
}

impl ControlExpr {
    /// Constant `true`.
    pub const TRUE: ControlExpr = ControlExpr::Const(true);
    /// Constant `false`.
    pub const FALSE: ControlExpr = ControlExpr::Const(false);

    /// Shorthand for a shadow-register bit reference.
    pub fn reg(node: NodeId, bit: u32) -> Self {
        ControlExpr::Reg(node, bit)
    }

    /// Shorthand for a primary-input reference.
    pub fn input(id: u32) -> Self {
        ControlExpr::Input(InputId(id))
    }

    /// Returns `true` if the expression is the constant `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, ControlExpr::Const(true))
    }

    /// Returns `true` if the expression is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, ControlExpr::Const(false))
    }

    /// Returns `true` if the expression reads any bit of `node`'s shadow
    /// register.
    pub fn references(&self, node: NodeId) -> bool {
        match self {
            ControlExpr::Const(_) | ControlExpr::Input(_) => false,
            ControlExpr::Reg(n, _) => *n == node,
            ControlExpr::Not(e) => e.references(node),
            ControlExpr::And(es) | ControlExpr::Or(es) => es.iter().any(|e| e.references(node)),
        }
    }

    /// Collects every `(node, bit)` shadow-register reference in the
    /// expression into `out` (with duplicates).
    pub fn collect_reg_refs(&self, out: &mut Vec<(NodeId, u32)>) {
        match self {
            ControlExpr::Const(_) | ControlExpr::Input(_) => {}
            ControlExpr::Reg(n, b) => out.push((*n, *b)),
            ControlExpr::Not(e) => e.collect_reg_refs(out),
            ControlExpr::And(es) | ControlExpr::Or(es) => {
                for e in es {
                    e.collect_reg_refs(out);
                }
            }
        }
    }

    /// Number of nodes in the expression tree (a proxy for gate count).
    pub fn size(&self) -> usize {
        match self {
            ControlExpr::Const(_) | ControlExpr::Reg(..) | ControlExpr::Input(_) => 1,
            ControlExpr::Not(e) => 1 + e.size(),
            ControlExpr::And(es) | ControlExpr::Or(es) => {
                1 + es.iter().map(ControlExpr::size).sum::<usize>()
            }
        }
    }

    /// Number of two-input gates a naive mapping of this expression needs
    /// (NOT gates count as one gate; `n`-ary AND/OR as `n - 1` gates).
    pub fn gate_count(&self) -> usize {
        match self {
            ControlExpr::Const(_) | ControlExpr::Reg(..) | ControlExpr::Input(_) => 0,
            ControlExpr::Not(e) => 1 + e.gate_count(),
            ControlExpr::And(es) | ControlExpr::Or(es) => {
                es.len().saturating_sub(1) + es.iter().map(ControlExpr::gate_count).sum::<usize>()
            }
        }
    }

    /// Evaluates the expression with the given valuation functions.
    ///
    /// `reg` returns the current value of a shadow-register bit and `input`
    /// the value of a primary control input.
    pub fn eval_with(
        &self,
        reg: &mut dyn FnMut(NodeId, u32) -> bool,
        input: &mut dyn FnMut(InputId) -> bool,
    ) -> bool {
        match self {
            ControlExpr::Const(b) => *b,
            ControlExpr::Reg(n, bit) => reg(*n, *bit),
            ControlExpr::Input(i) => input(*i),
            ControlExpr::Not(e) => !e.eval_with(reg, input),
            ControlExpr::And(es) => es.iter().all(|e| e.eval_with(reg, input)),
            ControlExpr::Or(es) => es.iter().any(|e| e.eval_with(reg, input)),
        }
    }

    /// Structurally simplifies the expression: constant folding, single-child
    /// flattening and double-negation elimination.
    ///
    /// The result is logically equivalent but usually smaller; it is not a
    /// canonical form.
    pub fn simplified(&self) -> ControlExpr {
        match self {
            ControlExpr::Const(_) | ControlExpr::Reg(..) | ControlExpr::Input(_) => self.clone(),
            ControlExpr::Not(e) => match e.simplified() {
                ControlExpr::Const(b) => ControlExpr::Const(!b),
                ControlExpr::Not(inner) => *inner,
                other => ControlExpr::Not(Box::new(other)),
            },
            ControlExpr::And(es) => {
                let mut out = Vec::new();
                for e in es {
                    match e.simplified() {
                        ControlExpr::Const(true) => {}
                        ControlExpr::Const(false) => return ControlExpr::Const(false),
                        ControlExpr::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => ControlExpr::Const(true),
                    1 => out.pop().expect("len checked"),
                    _ => ControlExpr::And(out),
                }
            }
            ControlExpr::Or(es) => {
                let mut out = Vec::new();
                for e in es {
                    match e.simplified() {
                        ControlExpr::Const(false) => {}
                        ControlExpr::Const(true) => return ControlExpr::Const(true),
                        ControlExpr::Or(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => ControlExpr::Const(false),
                    1 => out.pop().expect("len checked"),
                    _ => ControlExpr::Or(out),
                }
            }
        }
    }
}

impl Default for ControlExpr {
    fn default() -> Self {
        ControlExpr::Const(false)
    }
}

/// A [`ControlExpr`] with every shadow-register reference resolved to a
/// dense bit index at compile time.
///
/// Fault-analysis engines evaluate the same multiplexer address
/// expressions once per fault per fixed-point round; resolving `(node,
/// bit)` register references to indices into a flat state vector up front
/// turns each evaluation step into an array access instead of a hash-map
/// lookup. The index space is chosen by the caller of
/// [`ControlExpr::compile`] (typically the sorted list of all control bits
/// referenced by any multiplexer of a network).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledExpr {
    /// Constant true/false.
    Const(bool),
    /// A resolved shadow-register bit: index into the caller's dense state
    /// vector.
    Bit(u32),
    /// A primary control input (always freely drivable).
    Input(InputId),
    /// A register reference the resolver could not map. Consumers must
    /// treat it conservatively (a fault engine: unsatisfiable either way).
    Unknown,
    /// Logical negation.
    Not(Box<CompiledExpr>),
    /// Conjunction of all operands (empty conjunction is `true`).
    And(Vec<CompiledExpr>),
    /// Disjunction of all operands (empty disjunction is `false`).
    Or(Vec<CompiledExpr>),
}

impl ControlExpr {
    /// Compiles the expression against a dense control-bit index.
    ///
    /// `resolve` maps a `(node, bit)` shadow-register reference to its
    /// dense index; references it returns `None` for become
    /// [`CompiledExpr::Unknown`].
    pub fn compile(&self, resolve: &mut dyn FnMut(NodeId, u32) -> Option<u32>) -> CompiledExpr {
        match self {
            ControlExpr::Const(b) => CompiledExpr::Const(*b),
            ControlExpr::Reg(n, bit) => match resolve(*n, *bit) {
                Some(idx) => CompiledExpr::Bit(idx),
                None => CompiledExpr::Unknown,
            },
            ControlExpr::Input(i) => CompiledExpr::Input(*i),
            ControlExpr::Not(e) => CompiledExpr::Not(Box::new(e.compile(resolve))),
            ControlExpr::And(es) => {
                CompiledExpr::And(es.iter().map(|e| e.compile(resolve)).collect())
            }
            ControlExpr::Or(es) => {
                CompiledExpr::Or(es.iter().map(|e| e.compile(resolve)).collect())
            }
        }
    }
}

impl CompiledExpr {
    /// Evaluates the compiled expression with the given valuations.
    ///
    /// `bit` returns the value of a dense register-bit index and `input`
    /// the value of a primary control input; [`CompiledExpr::Unknown`]
    /// evaluates to `false`.
    pub fn eval_with(
        &self,
        bit: &mut dyn FnMut(u32) -> bool,
        input: &mut dyn FnMut(InputId) -> bool,
    ) -> bool {
        match self {
            CompiledExpr::Const(b) => *b,
            CompiledExpr::Bit(i) => bit(*i),
            CompiledExpr::Input(i) => input(*i),
            CompiledExpr::Unknown => false,
            CompiledExpr::Not(e) => !e.eval_with(bit, input),
            CompiledExpr::And(es) => es.iter().all(|e| e.eval_with(bit, input)),
            CompiledExpr::Or(es) => es.iter().any(|e| e.eval_with(bit, input)),
        }
    }
}

impl CompiledExpr {
    /// Collects every dense register-bit index referenced by the
    /// expression into `out` (duplicates preserved — sorting and
    /// deduplication are the caller's concern).
    ///
    /// Engines that re-evaluate compiled expressions incrementally use
    /// this to build a bit → consumer dependency index once, so that a
    /// state change on one bit only touches the expressions that actually
    /// read it.
    pub fn collect_bits(&self, out: &mut Vec<u32>) {
        match self {
            CompiledExpr::Bit(i) => out.push(*i),
            CompiledExpr::Not(e) => e.collect_bits(out),
            CompiledExpr::And(es) | CompiledExpr::Or(es) => {
                for e in es {
                    e.collect_bits(out);
                }
            }
            CompiledExpr::Const(_) | CompiledExpr::Input(_) | CompiledExpr::Unknown => {}
        }
    }
}

impl std::ops::Not for ControlExpr {
    type Output = ControlExpr;
    fn not(self) -> ControlExpr {
        ControlExpr::Not(Box::new(self))
    }
}

impl std::ops::BitAnd for ControlExpr {
    type Output = ControlExpr;
    fn bitand(self, rhs: ControlExpr) -> ControlExpr {
        match (self, rhs) {
            (ControlExpr::And(mut a), ControlExpr::And(b)) => {
                a.extend(b);
                ControlExpr::And(a)
            }
            (ControlExpr::And(mut a), b) => {
                a.push(b);
                ControlExpr::And(a)
            }
            (a, ControlExpr::And(mut b)) => {
                b.insert(0, a);
                ControlExpr::And(b)
            }
            (a, b) => ControlExpr::And(vec![a, b]),
        }
    }
}

impl std::ops::BitOr for ControlExpr {
    type Output = ControlExpr;
    fn bitor(self, rhs: ControlExpr) -> ControlExpr {
        match (self, rhs) {
            (ControlExpr::Or(mut a), ControlExpr::Or(b)) => {
                a.extend(b);
                ControlExpr::Or(a)
            }
            (ControlExpr::Or(mut a), b) => {
                a.push(b);
                ControlExpr::Or(a)
            }
            (a, ControlExpr::Or(mut b)) => {
                b.insert(0, a);
                ControlExpr::Or(b)
            }
            (a, b) => ControlExpr::Or(vec![a, b]),
        }
    }
}

impl fmt::Display for ControlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlExpr::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
            ControlExpr::Reg(n, bit) => write!(f, "{n}[{bit}]"),
            ControlExpr::Input(i) => write!(f, "{i}"),
            ControlExpr::Not(e) => write!(f, "¬{e}"),
            ControlExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ControlExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_const(e: &ControlExpr) -> bool {
        e.eval_with(&mut |_, _| false, &mut |_| false)
    }

    #[test]
    fn constants_evaluate() {
        assert!(eval_const(&ControlExpr::TRUE));
        assert!(!eval_const(&ControlExpr::FALSE));
    }

    #[test]
    fn operators_build_expected_trees() {
        let a = ControlExpr::reg(NodeId(0), 0);
        let b = ControlExpr::reg(NodeId(1), 0);
        let c = ControlExpr::reg(NodeId(2), 0);
        let e = (a.clone() & b.clone()) & c.clone();
        assert_eq!(e, ControlExpr::And(vec![a.clone(), b.clone(), c.clone()]));
        let e = (a.clone() | b.clone()) | c.clone();
        assert_eq!(e, ControlExpr::Or(vec![a, b, c]));
    }

    #[test]
    fn eval_uses_register_valuation() {
        let e = ControlExpr::reg(NodeId(7), 3);
        let v = e.eval_with(&mut |n, b| n == NodeId(7) && b == 3, &mut |_| false);
        assert!(v);
    }

    #[test]
    fn simplify_folds_constants() {
        let a = ControlExpr::reg(NodeId(0), 0);
        let e = (ControlExpr::TRUE & a.clone()) | ControlExpr::FALSE;
        assert_eq!(e.simplified(), a);

        let e = ControlExpr::FALSE & ControlExpr::reg(NodeId(0), 0);
        assert!(e.simplified().is_false());

        let e = ControlExpr::TRUE | ControlExpr::reg(NodeId(0), 0);
        assert!(e.simplified().is_true());
    }

    #[test]
    fn simplify_removes_double_negation() {
        let a = ControlExpr::reg(NodeId(5), 1);
        let e = !!a.clone();
        assert_eq!(e.simplified(), a);
    }

    #[test]
    fn gate_count_counts_two_input_gates() {
        let a = ControlExpr::reg(NodeId(0), 0);
        let b = ControlExpr::reg(NodeId(1), 0);
        let c = ControlExpr::reg(NodeId(2), 0);
        // (a & b & c) -> 2 AND gates
        assert_eq!(
            ControlExpr::And(vec![a.clone(), b.clone(), c.clone()]).gate_count(),
            2
        );
        // !(a | b) -> 1 OR + 1 NOT
        assert_eq!((!(a | b)).gate_count(), 2);
        assert_eq!(c.gate_count(), 0);
    }

    #[test]
    fn references_and_collect() {
        let e = (ControlExpr::reg(NodeId(1), 0) & !ControlExpr::reg(NodeId(2), 4))
            | ControlExpr::input(0);
        assert!(e.references(NodeId(1)));
        assert!(e.references(NodeId(2)));
        assert!(!e.references(NodeId(3)));
        let mut refs = Vec::new();
        e.collect_reg_refs(&mut refs);
        assert_eq!(refs, vec![(NodeId(1), 0), (NodeId(2), 4)]);
    }

    #[test]
    fn display_renders_expression() {
        let e = !ControlExpr::reg(NodeId(1), 0) & ControlExpr::input(2);
        let s = e.to_string();
        assert!(s.contains("¬"), "{s}");
        assert!(s.contains("in2"), "{s}");
    }

    #[test]
    fn compile_resolves_register_refs_to_dense_indices() {
        let e = (ControlExpr::reg(NodeId(1), 0) & !ControlExpr::reg(NodeId(2), 4))
            | ControlExpr::input(0);
        // Dense index: node 1 bit 0 → 7, node 2 bit 4 → 9, others unknown.
        let c = e.compile(&mut |n, b| match (n.0, b) {
            (1, 0) => Some(7),
            (2, 4) => Some(9),
            _ => None,
        });
        // Compiled and source expressions agree on every bit valuation.
        for m in 0u8..4 {
            let src = e.eval_with(
                &mut |n, b| match (n.0, b) {
                    (1, 0) => m & 1 == 1,
                    (2, 4) => m & 2 == 2,
                    _ => false,
                },
                &mut |_| false,
            );
            let cmp = c.eval_with(
                &mut |i| match i {
                    7 => m & 1 == 1,
                    9 => m & 2 == 2,
                    _ => false,
                },
                &mut |_| false,
            );
            assert_eq!(src, cmp, "m={m}");
        }
    }

    #[test]
    fn compile_maps_unresolved_refs_to_unknown() {
        let e = ControlExpr::reg(NodeId(3), 1);
        let c = e.compile(&mut |_, _| None);
        assert_eq!(c, CompiledExpr::Unknown);
        assert!(!c.eval_with(&mut |_| true, &mut |_| true));
    }

    #[test]
    fn simplify_is_equivalence_preserving_on_samples() {
        // Exhaustive check over all valuations of three register bits for a
        // few fixed expression shapes.
        let a = ControlExpr::reg(NodeId(0), 0);
        let b = ControlExpr::reg(NodeId(1), 0);
        let c = ControlExpr::reg(NodeId(2), 0);
        let exprs = vec![
            (a.clone() & b.clone()) | (!c.clone() & ControlExpr::TRUE),
            !(a.clone() | (b.clone() & ControlExpr::FALSE)),
            ControlExpr::And(vec![ControlExpr::Or(vec![a.clone()]), b.clone(), c.clone()]),
            ControlExpr::Or(vec![]),
            ControlExpr::And(vec![]),
        ];
        for e in exprs {
            let s = e.simplified();
            for m in 0u8..8 {
                let mut reg = |n: NodeId, _b: u32| (m >> n.0.min(7)) & 1 == 1;
                let v1 = e.eval_with(&mut reg, &mut |_| false);
                let v2 = s.eval_with(&mut reg, &mut |_| false);
                assert_eq!(v1, v2, "mismatch for {e} vs {s} at m={m}");
            }
        }
    }
}
