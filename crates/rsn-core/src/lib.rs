//! Core data model for reconfigurable scan networks (RSNs, IEEE Std 1687).
//!
//! This crate implements the structural and behavioural model of Section II
//! of *Brandhofer, Kochte, Wunderlich: "Synthesis of Fault-Tolerant
//! Reconfigurable Scan Networks", DATE 2020*:
//!
//! * [`Rsn`] — the structural network: scan segments, scan multiplexers and
//!   primary scan ports connected by interconnects ([`network`]).
//! * [`ControlExpr`] — boolean control expressions over shadow-register bits
//!   and primary control inputs, used for select predicates and multiplexer
//!   address signals ([`expr`]).
//! * [`Config`] — scan configurations (the state of all shadow registers and
//!   primary inputs) ([`config`]).
//! * Active-scan-path tracing and configuration validity ([`path`]).
//! * Bit-accurate capture–shift–update (CSU) simulation ([`csu`]).
//! * Fault-free access planning: a series of CSU operations that routes the
//!   active scan path through a target segment ([`access`]).
//! * Ready-made example networks, including the paper's Fig. 2 ([`examples`]).
//!
//! # Example
//!
//! ```
//! use rsn_core::examples::fig2;
//!
//! let rsn = fig2();
//! let cfg = rsn.reset_config();
//! let path = rsn.active_path(&cfg)?;
//! // In the reset state of Fig. 2, segments A, B and D are on the active path.
//! let names: Vec<&str> = path
//!     .segments(&rsn)
//!     .map(|s| rsn.node(s).name())
//!     .collect();
//! assert_eq!(names, ["A", "B", "D"]);
//! # Ok::<(), rsn_core::Error>(())
//! ```

pub mod access;
pub mod config;
pub mod csu;
pub mod dot;
pub mod error;
pub mod examples;
pub mod expr;
pub mod lint;
pub mod network;
pub mod path;
pub mod retarget;
pub mod session;

pub use config::Config;
pub use error::{Error, Result};
pub use expr::{CompiledExpr, ControlExpr, InputId};
pub use lint::{structural_findings, LintWarning, StructuralFindings};
pub use network::{Mux, Node, NodeId, NodeKind, Rsn, RsnBuilder, Segment};
pub use path::ScanPath;
pub use retarget::{GroupAccessPlan, LatencyReport};
pub use session::AccessSession;
