//! Bit-accurate capture–shift–update (CSU) simulation.
//!
//! A read/write access to the selected segments of an RSN is implemented by
//! a CSU operation: a capture cycle, multiple shift cycles (typically as
//! many as the active scan path is long), and a final update cycle. This
//! module simulates CSU operations on a [`SimState`], tracking shift
//! register contents, shadow registers (the scan configuration) and the data
//! shifted out at the primary scan-out port.
//!
//! The shift convention is: index 0 of a segment's register is nearest the
//! scan-in port; each shift cycle moves data one position toward scan-out
//! and injects the next scan-in bit at position 0 of the first segment.

use crate::config::Config;
use crate::error::Result;
use crate::network::{NodeId, Rsn};
use crate::path::ScanPath;

/// Dynamic state of an RSN during simulation: shift register contents and
/// the scan configuration (shadow registers + primary inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimState {
    /// Shift register contents per node (empty vec for non-segments).
    shift: Vec<Vec<bool>>,
    /// Shadow registers and primary inputs.
    pub config: Config,
}

impl SimState {
    /// Creates the reset state of a network: shift registers zeroed, shadow
    /// registers at their reset values.
    pub fn reset(rsn: &Rsn) -> Self {
        let shift = rsn
            .node_ids()
            .map(|id| match rsn.node(id).as_segment() {
                Some(s) => vec![false; s.length as usize],
                None => Vec::new(),
            })
            .collect();
        SimState {
            shift,
            config: rsn.reset_config(),
        }
    }

    /// Shift register contents of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn shift_register(&self, id: NodeId) -> &[bool] {
        &self.shift[id.index()]
    }

    /// Sets the shift register contents of a segment (e.g. instrument data).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the length mismatches.
    pub fn set_shift_register(&mut self, id: NodeId, bits: &[bool]) {
        assert_eq!(self.shift[id.index()].len(), bits.len(), "length mismatch");
        self.shift[id.index()].copy_from_slice(bits);
    }

    /// Shadow register contents of a segment as read from the
    /// configuration.
    pub fn shadow_register(&self, rsn: &Rsn, id: NodeId) -> Option<Vec<bool>> {
        let off = rsn.shadow_offset(id)? as usize;
        let len = rsn.shadow_len(id) as usize;
        Some((0..len).map(|i| self.config.bit(off + i)).collect())
    }
}

/// Result of one CSU operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsuOutcome {
    /// Bits observed at the primary scan-out port during the shift phase,
    /// in emission order.
    pub shifted_out: Vec<bool>,
    /// The active scan path the operation used.
    pub path: ScanPath,
}

impl Rsn {
    /// Performs one CSU operation.
    ///
    /// * Capture: active segments with capture enabled load `capture_data`
    ///   (if a value is provided for them).
    /// * Shift: `scan_in_data.len()` shift cycles through the concatenated
    ///   registers of the active scan path.
    /// * Update: active segments with a shadow register and update enabled
    ///   latch their shift register into the shadow register.
    ///
    /// # Errors
    ///
    /// Propagates path-tracing errors from
    /// [`Rsn::trace_path`](crate::Rsn::trace_path). Configuration validity
    /// (select/path agreement) is the caller's concern: generated networks
    /// are valid by construction, and fault-tolerant networks may carry
    /// placeholder selects (see `rsn-synth`'s `SelectMode`).
    pub fn csu(
        &self,
        state: &mut SimState,
        scan_in_data: &[bool],
        capture_data: &dyn Fn(NodeId) -> Option<Vec<bool>>,
    ) -> Result<CsuOutcome> {
        let path = self.trace_path(&state.config)?;
        let segs: Vec<NodeId> = path.segments(self).collect();

        // Capture.
        for &seg in &segs {
            let s = self.node(seg).as_segment().expect("segment");
            let capdis = self.eval(&s.capture_disable, &state.config)?;
            if !capdis {
                if let Some(data) = capture_data(seg) {
                    state.set_shift_register(seg, &data);
                }
            }
        }

        // Shift: build the concatenated chain (index 0 nearest scan-in).
        let mut chain: Vec<bool> = Vec::new();
        for &seg in &segs {
            chain.extend_from_slice(&state.shift[seg.index()]);
        }
        let mut out = Vec::with_capacity(scan_in_data.len());
        for &in_bit in scan_in_data {
            if chain.is_empty() {
                // Degenerate path with zero scan bits: data flies through.
                out.push(in_bit);
                continue;
            }
            out.push(*chain.last().expect("nonempty"));
            for i in (1..chain.len()).rev() {
                chain[i] = chain[i - 1];
            }
            chain[0] = in_bit;
        }
        // Write the chain back into the per-segment registers.
        let mut pos = 0;
        for &seg in &segs {
            let len = state.shift[seg.index()].len();
            state.shift[seg.index()].copy_from_slice(&chain[pos..pos + len]);
            pos += len;
        }

        // Update.
        for &seg in &segs {
            let s = self.node(seg).as_segment().expect("segment");
            if !s.has_shadow {
                continue;
            }
            let updis = self.eval(&s.update_disable, &state.config)?;
            if updis {
                continue;
            }
            let off = self.shadow_offset(seg).expect("has shadow") as usize;
            // Copy the shift register first: the config is updated at the
            // very end of the CSU, after all shifting.
            let bits = state.shift[seg.index()].clone();
            for (i, b) in bits.iter().enumerate() {
                state.config.set_bit(off + i, *b);
            }
        }

        Ok(CsuOutcome {
            shifted_out: out,
            path,
        })
    }

    /// Convenience: performs a full-path CSU that shifts `value` into
    /// segment `target` (and zeros elsewhere) and updates. The target must
    /// be on the current active path.
    ///
    /// # Errors
    ///
    /// Returns an error if the target is not on the active path (reported as
    /// [`Error::AccessPlanFailed`](crate::Error::AccessPlanFailed)) or if
    /// the CSU itself fails.
    pub fn csu_write(
        &self,
        state: &mut SimState,
        target: NodeId,
        value: &[bool],
    ) -> Result<CsuOutcome> {
        let path = self.trace_path(&state.config)?;
        if !path.contains(target) {
            return Err(crate::Error::AccessPlanFailed {
                target,
                reason: "target segment is not on the active scan path".into(),
            });
        }
        // Build the scan-in stream so that after shift_length cycles the
        // value sits in the target register. The first bit shifted in ends
        // at the chain position farthest from scan-in that it can reach,
        // i.e. the stream is consumed in order with the last bits of the
        // stream ending nearest to scan-in.
        let segs: Vec<NodeId> = path.segments(self).collect();
        let total: usize = segs
            .iter()
            .map(|&s| self.node(s).as_segment().expect("segment").length as usize)
            .sum();
        let tlen = value.len();
        assert_eq!(
            tlen,
            self.node(target).as_segment().expect("segment").length as usize,
            "value length must match target register length"
        );
        // After `total` shift cycles, the bit injected at cycle k (0-based)
        // sits at chain position total-1-k. We want chain[offset + i] =
        // value[i], so the bit for chain position p is injected at cycle
        // total-1-p. Every other on-path register is re-streamed with its
        // current contents so the write does not tear down the scan
        // configuration (control registers live on the same chain!).
        let mut stream = vec![false; total];
        let mut pos = 0usize;
        for &s in &segs {
            let len = self.node(s).as_segment().expect("segment").length as usize;
            if s == target {
                for (i, &v) in value.iter().enumerate() {
                    stream[total - 1 - (pos + i)] = v;
                }
            } else {
                for (i, &b) in state.shift_register(s).to_vec().iter().enumerate() {
                    stream[total - 1 - (pos + i)] = b;
                }
            }
            pos += len;
        }
        self.csu(state, &stream, &|_| None)
    }

    /// Convenience: performs a CSU that captures and shifts out the entire
    /// active path, returning the captured bits of segment `target`.
    ///
    /// `capture_data` provides the instrument data captured into each
    /// segment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rsn::csu_write`].
    pub fn csu_read(
        &self,
        state: &mut SimState,
        target: NodeId,
        capture_data: &dyn Fn(NodeId) -> Option<Vec<bool>>,
    ) -> Result<Vec<bool>> {
        let path = self.trace_path(&state.config)?;
        if !path.contains(target) {
            return Err(crate::Error::AccessPlanFailed {
                target,
                reason: "target segment is not on the active scan path".into(),
            });
        }
        let segs: Vec<NodeId> = path.segments(self).collect();
        let total: usize = segs
            .iter()
            .map(|&s| self.node(s).as_segment().expect("segment").length as usize)
            .sum();
        let mut offset = 0usize;
        for &s in &segs {
            if s == target {
                break;
            }
            offset += self.node(s).as_segment().expect("segment").length as usize;
        }
        let tlen = self.node(target).as_segment().expect("segment").length as usize;
        // Re-stream every on-path register's current contents so the read
        // is non-destructive for the configuration.
        let mut stream = vec![false; total];
        let mut pos = 0usize;
        for &s in &segs {
            let len = self.node(s).as_segment().expect("segment").length as usize;
            for (i, &b) in state.shift_register(s).to_vec().iter().enumerate() {
                stream[total - 1 - (pos + i)] = b;
            }
            pos += len;
        }
        let outcome = self.csu(state, &stream, capture_data)?;
        // Chain position p is emitted at cycle total-1-p; target occupies
        // positions offset..offset+tlen.
        let mut out = Vec::with_capacity(tlen);
        for i in 0..tlen {
            let p = offset + i;
            out.push(outcome.shifted_out[total - 1 - p]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ControlExpr;
    use crate::network::RsnBuilder;

    fn two_chain() -> (Rsn, NodeId, NodeId) {
        let mut b = RsnBuilder::new("c2");
        let s1 = b.add_segment("S1", 3);
        let s2 = b.add_segment("S2", 2);
        b.set_select(s1, ControlExpr::TRUE);
        b.set_select(s2, ControlExpr::TRUE);
        b.connect(b.scan_in(), s1);
        b.connect(s1, s2);
        b.connect(s2, b.scan_out());
        (b.finish().expect("valid"), s1, s2)
    }

    #[test]
    fn shift_moves_data_through_chain() {
        let (rsn, s1, s2) = two_chain();
        let mut st = SimState::reset(&rsn);
        // Shift in pattern 10110 (5 bits = chain length).
        let stream = [true, false, true, true, false];
        let outcome = rsn.csu(&mut st, &stream, &|_| None).expect("csu");
        // Everything shifted out was the initial zeros.
        assert_eq!(outcome.shifted_out, vec![false; 5]);
        // First bit injected (true) has travelled to the far end (s2 bit 1).
        assert_eq!(st.shift_register(s1), &[false, true, true]);
        assert_eq!(st.shift_register(s2), &[false, true]);
    }

    #[test]
    fn update_latches_into_shadow() {
        let (rsn, s1, _) = two_chain();
        let mut st = SimState::reset(&rsn);
        let stream = [true, true, true, false, false];
        rsn.csu(&mut st, &stream, &|_| None).expect("csu");
        let shadow = st.shadow_register(&rsn, s1).expect("shadow");
        assert_eq!(shadow, st.shift_register(s1).to_vec());
    }

    #[test]
    fn csu_write_places_value_in_target() {
        let (rsn, s1, s2) = two_chain();
        let mut st = SimState::reset(&rsn);
        rsn.csu_write(&mut st, s1, &[true, false, true])
            .expect("write");
        assert_eq!(st.shift_register(s1), &[true, false, true]);
        assert_eq!(
            st.shadow_register(&rsn, s1).expect("shadow"),
            vec![true, false, true]
        );
        // s2 untouched (zeros written).
        assert_eq!(st.shift_register(s2), &[false, false]);

        let mut st = SimState::reset(&rsn);
        rsn.csu_write(&mut st, s2, &[true, true]).expect("write");
        assert_eq!(st.shift_register(s2), &[true, true]);
    }

    #[test]
    fn csu_read_returns_captured_data() {
        let (rsn, s1, s2) = two_chain();
        let mut st = SimState::reset(&rsn);
        let data = |seg: NodeId| -> Option<Vec<bool>> {
            if seg == s2 {
                Some(vec![true, false])
            } else {
                None
            }
        };
        let bits = rsn.csu_read(&mut st, s2, &data).expect("read");
        assert_eq!(bits, vec![true, false]);
        let bits = rsn.csu_read(&mut st, s1, &|_| None).expect("read");
        assert_eq!(bits.len(), 3);
    }

    #[test]
    fn capture_disable_blocks_capture() {
        let mut b = RsnBuilder::new("cd");
        let s = b.add_segment("S", 2);
        b.set_select(s, ControlExpr::TRUE);
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        // capture disabled unconditionally
        if let crate::network::NodeKind::Segment(seg) = &mut b.node_mut(s).kind {
            seg.capture_disable = ControlExpr::TRUE;
        }
        let rsn = b.finish().expect("valid");
        let mut st = SimState::reset(&rsn);
        let bits = rsn
            .csu_read(&mut st, s, &|_| Some(vec![true, true]))
            .expect("read");
        assert_eq!(bits, vec![false, false], "capture must be suppressed");
    }

    #[test]
    fn update_disable_blocks_update() {
        let mut b = RsnBuilder::new("ud");
        let s = b.add_segment("S", 2);
        b.set_select(s, ControlExpr::TRUE);
        b.set_update_disable(s, ControlExpr::TRUE);
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("valid");
        let mut st = SimState::reset(&rsn);
        rsn.csu(&mut st, &[true, true], &|_| None).expect("csu");
        assert_eq!(st.shift_register(s), &[true, true]);
        assert_eq!(
            st.shadow_register(&rsn, s).expect("shadow"),
            vec![false, false],
            "shadow must keep reset value under update disable"
        );
    }

    #[test]
    fn csu_write_rejects_off_path_target() {
        let mut b = RsnBuilder::new("sib");
        let sib = b.add_segment("SIB", 1);
        b.connect(b.scan_in(), sib);
        let seg = b.add_segment("S", 2);
        b.connect(sib, seg);
        let m = b.add_mux("M", vec![sib, seg], vec![ControlExpr::reg(sib, 0)]);
        b.connect(m, b.scan_out());
        b.set_select(sib, ControlExpr::TRUE);
        b.set_select(seg, ControlExpr::reg(sib, 0));
        let rsn = b.finish().expect("valid");
        let mut st = SimState::reset(&rsn);
        let err = rsn.csu_write(&mut st, seg, &[true, true]).unwrap_err();
        assert!(matches!(err, crate::Error::AccessPlanFailed { .. }));
    }

    #[test]
    fn writing_sib_register_reconfigures_path() {
        let mut b = RsnBuilder::new("sib");
        let sib = b.add_segment("SIB", 1);
        b.connect(b.scan_in(), sib);
        let seg = b.add_segment("S", 2);
        b.connect(sib, seg);
        let m = b.add_mux("M", vec![sib, seg], vec![ControlExpr::reg(sib, 0)]);
        b.connect(m, b.scan_out());
        b.set_select(sib, ControlExpr::TRUE);
        b.set_select(seg, ControlExpr::reg(sib, 0));
        let rsn = b.finish().expect("valid");
        let mut st = SimState::reset(&rsn);
        // CSU 1: write 1 into the SIB register -> opens the segment.
        rsn.csu_write(&mut st, sib, &[true]).expect("open");
        let path = rsn.active_path(&st.config).expect("valid");
        assert!(path.contains(seg));
        // CSU 2: now the segment is writable.
        rsn.csu_write(&mut st, seg, &[true, false])
            .expect("write seg");
        assert_eq!(st.shift_register(seg), &[true, false]);
    }
}
