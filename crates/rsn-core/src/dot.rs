//! Graphviz (DOT) export of RSN structures, for debugging and the figure
//! reproductions.

use std::fmt::Write as _;

use crate::config::Config;
use crate::network::{NodeKind, Rsn};

impl Rsn {
    /// Renders the network as a Graphviz digraph. If a configuration is
    /// given, the active scan path is highlighted.
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_core::examples::fig2;
    ///
    /// let rsn = fig2();
    /// let dot = rsn.to_dot(Some(&rsn.reset_config()));
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("\"A\""));
    /// ```
    pub fn to_dot(&self, cfg: Option<&Config>) -> String {
        let path = cfg.and_then(|c| self.trace_path(c).ok());
        let on_path = |id| path.as_ref().is_some_and(|p| p.contains(id));

        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for id in self.node_ids() {
            let n = self.node(id);
            let (shape, label) = match n.kind() {
                NodeKind::ScanIn => ("circle", n.name().to_string()),
                NodeKind::ScanOut => ("doublecircle", n.name().to_string()),
                NodeKind::Segment(s) => ("box", format!("{} [{}b]", n.name(), s.length)),
                NodeKind::Mux(_) => ("trapezium", n.name().to_string()),
            };
            let style = if on_path(id) {
                ", style=filled, fillcolor=lightblue"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{label}\"{style}];",
                n.name()
            );
        }
        for id in self.node_ids() {
            for p in self.predecessors(id) {
                let bold = on_path(id) && on_path(p);
                let attr = if bold {
                    " [penwidth=2, color=blue]"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\"{attr};",
                    self.node(p).name(),
                    self.node(id).name()
                );
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::examples::fig2;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let rsn = fig2();
        let dot = rsn.to_dot(None);
        for id in rsn.node_ids() {
            assert!(dot.contains(&format!("\"{}\"", rsn.node(id).name())));
        }
        assert!(dot.contains("->"));
    }

    #[test]
    fn dot_highlights_active_path() {
        let rsn = fig2();
        let dot = rsn.to_dot(Some(&rsn.reset_config()));
        assert!(dot.contains("lightblue"));
    }
}
