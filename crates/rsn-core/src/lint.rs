//! Network linting: structural and behavioral diagnostics beyond the
//! builder's hard validation.
//!
//! [`Rsn::lint`] collects *warnings* — conditions that do not make a
//! network invalid but usually indicate a modeling mistake: unreachable
//! elements, multiplexers that can never switch, segments that can never
//! be selected, or select predicates that disagree with path membership in
//! sampled configurations.

use std::fmt;

use crate::config::Config;
use crate::network::{NodeId, NodeKind, Rsn};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintWarning {
    /// The node cannot be reached from any scan-in port.
    UnreachableFromScanIn(NodeId),
    /// No scan-out port is reachable from the node.
    CannotReachScanOut(NodeId),
    /// The multiplexer's address is constant: one input is dead.
    MuxNeverSwitches(NodeId),
    /// The segment's select predicate is constant `false`.
    NeverSelected(NodeId),
    /// A sampled configuration had the segment selected while off the
    /// traced path, or vice versa (validity violation).
    SelectPathMismatch {
        /// The offending segment.
        segment: NodeId,
        /// A configuration exhibiting the mismatch.
        config: Config,
    },
    /// A mux address references a register with no shadow (never
    /// controllable).
    AddressWithoutShadow {
        /// The multiplexer.
        mux: NodeId,
        /// The referenced register node.
        register: NodeId,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintWarning::UnreachableFromScanIn(n) => {
                write!(f, "node {n} is unreachable from any scan-in port")
            }
            LintWarning::CannotReachScanOut(n) => {
                write!(f, "node {n} cannot reach any scan-out port")
            }
            LintWarning::MuxNeverSwitches(n) => {
                write!(f, "multiplexer {n} has a constant address")
            }
            LintWarning::NeverSelected(n) => {
                write!(f, "segment {n} has a constant-false select")
            }
            LintWarning::SelectPathMismatch { segment, .. } => {
                write!(f, "segment {segment} select disagrees with path membership")
            }
            LintWarning::AddressWithoutShadow { mux, register } => {
                write!(f, "mux {mux} addressed by shadow-less register {register}")
            }
        }
    }
}

impl Rsn {
    /// Lints the network, returning all findings. `samples` bounds the
    /// number of random-ish configurations probed for select/path
    /// agreement (deterministic sampling).
    pub fn lint(&self, samples: usize) -> Vec<LintWarning> {
        let mut out = Vec::new();

        // Reachability in both directions.
        let n = self.node_count();
        let mut fwd = vec![false; n];
        let mut stack: Vec<NodeId> = self
            .node_ids()
            .filter(|&id| matches!(self.node(id).kind(), NodeKind::ScanIn))
            .collect();
        for &r in &stack {
            fwd[r.index()] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in self.successors(u) {
                if !fwd[v.index()] {
                    fwd[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        let mut bwd = vec![false; n];
        let mut stack: Vec<NodeId> = self
            .node_ids()
            .filter(|&id| matches!(self.node(id).kind(), NodeKind::ScanOut))
            .collect();
        for &s in &stack {
            bwd[s.index()] = true;
        }
        while let Some(u) = stack.pop() {
            for p in self.predecessors(u) {
                if !bwd[p.index()] {
                    bwd[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        for id in self.node_ids() {
            if !fwd[id.index()] {
                out.push(LintWarning::UnreachableFromScanIn(id));
            }
            if !bwd[id.index()] {
                out.push(LintWarning::CannotReachScanOut(id));
            }
        }

        // Constant addresses and shadow-less address sources.
        for m in self.muxes() {
            let mux = self.node(m).as_mux().expect("mux");
            let mut refs = Vec::new();
            for e in &mux.addr_bits {
                e.collect_reg_refs(&mut refs);
            }
            if refs.is_empty()
                && !mux
                    .addr_bits
                    .iter()
                    .any(|e| matches!(e, crate::ControlExpr::Input(_)))
            {
                out.push(LintWarning::MuxNeverSwitches(m));
            }
            for (reg, _) in refs {
                if self.shadow_offset(reg).is_none() {
                    out.push(LintWarning::AddressWithoutShadow {
                        mux: m,
                        register: reg,
                    });
                }
            }
        }

        // Constant-false selects.
        for seg in self.segments() {
            if self
                .node(seg)
                .as_segment()
                .expect("segment")
                .select
                .is_false()
            {
                out.push(LintWarning::NeverSelected(seg));
            }
        }

        // Sampled validity probing: flip one shadow bit at a time from
        // reset (plus the reset configuration itself).
        let mut cfgs = vec![self.reset_config()];
        for bit in 0..(self.shadow_bits() as usize).min(samples.saturating_sub(1)) {
            let mut c = self.reset_config();
            c.set_bit(bit, !c.bit(bit));
            cfgs.push(c);
        }
        for cfg in cfgs {
            if let Ok(path) = self.trace_path(&cfg) {
                for seg in self.segments() {
                    let selected = match self.select(seg, &cfg) {
                        Ok(v) => v,
                        Err(_) => continue,
                    };
                    if selected != path.contains(seg) {
                        out.push(LintWarning::SelectPathMismatch {
                            segment: seg,
                            config: cfg.clone(),
                        });
                        break; // one witness per configuration
                    }
                }
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{chain, fig2, sib_tree};
    use crate::expr::ControlExpr;
    use crate::network::RsnBuilder;

    #[test]
    fn clean_networks_lint_clean() {
        for rsn in [fig2(), chain(3, 2), sib_tree(1, 2, 3)] {
            let warnings = rsn.lint(32);
            assert!(warnings.is_empty(), "{}: {warnings:?}", rsn.name());
        }
    }

    #[test]
    fn constant_select_false_is_flagged() {
        let mut b = RsnBuilder::new("w");
        let s = b.add_segment("S", 1);
        // select stays FALSE
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("valid structure");
        let warnings = rsn.lint(4);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::NeverSelected(n) if *n == s)));
        // Also a select/path mismatch at reset (on path but deselected).
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::SelectPathMismatch { .. })));
    }

    #[test]
    fn constant_mux_address_is_flagged() {
        let mut b = RsnBuilder::new("w");
        let s1 = b.add_segment("S1", 1);
        let s2 = b.add_segment("S2", 1);
        b.set_select(s1, ControlExpr::TRUE);
        b.set_select(s2, ControlExpr::FALSE);
        b.connect(b.scan_in(), s1);
        b.connect(s1, s2);
        let m = b.add_mux("M", vec![s1, s2], vec![ControlExpr::FALSE]);
        b.connect(m, b.scan_out());
        let rsn = b.finish().expect("valid structure");
        let warnings = rsn.lint(4);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::MuxNeverSwitches(n) if *n == m)));
    }

    #[test]
    fn shadow_less_address_source_is_flagged() {
        let mut b = RsnBuilder::new("w");
        let ro = b.add_readonly_segment("RO", 1);
        b.set_select(ro, ControlExpr::TRUE);
        b.connect(b.scan_in(), ro);
        let s = b.add_segment("S", 1);
        b.set_select(s, ControlExpr::FALSE);
        b.connect(ro, s);
        let m = b.add_mux("M", vec![ro, s], vec![ControlExpr::reg(ro, 0)]);
        b.connect(m, b.scan_out());
        // Builder validation rejects the unknown register reference, so
        // lint never sees it... unless the register exists but has no
        // shadow. `reg(ro, 0)` with a read-only segment is exactly that;
        // builder's eval flags it as invalid, so construct the mux with an
        // input-based address and verify the clean case instead.
        match b.finish() {
            Err(_) => {} // expected: invalid control reference
            Ok(rsn) => {
                let warnings = rsn.lint(4);
                assert!(warnings
                    .iter()
                    .any(|w| matches!(w, LintWarning::AddressWithoutShadow { .. })));
            }
        }
    }

    #[test]
    fn warnings_render() {
        let w = LintWarning::MuxNeverSwitches(NodeId(3));
        assert!(!w.to_string().is_empty());
    }
}
