//! Network linting: structural and behavioral diagnostics beyond the
//! builder's hard validation.
//!
//! [`Rsn::lint`] collects *warnings* — conditions that do not make a
//! network invalid but usually indicate a modeling mistake: unreachable
//! elements, multiplexers that can never switch, segments that can never
//! be selected, or select predicates that disagree with path membership in
//! sampled configurations.
//!
//! `Rsn::lint` is the legacy sampling-based entry point, kept as a thin
//! compatibility wrapper: its structural passes live in
//! [`structural_findings`] so the exhaustive `rsn-verify` engine reuses
//! them verbatim, and only the select/path probing here is
//! sample-bounded (`rsn-verify` replaces it with a SAT proof).

use std::fmt;

use crate::config::Config;
use crate::network::{NodeId, NodeKind, Rsn};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintWarning {
    /// The node cannot be reached from any scan-in port.
    UnreachableFromScanIn(NodeId),
    /// No scan-out port is reachable from the node.
    CannotReachScanOut(NodeId),
    /// The multiplexer's address is constant: one input is dead.
    MuxNeverSwitches(NodeId),
    /// The segment's select predicate is constant `false`.
    NeverSelected(NodeId),
    /// A sampled configuration had the segment selected while off the
    /// traced path, or vice versa (validity violation).
    SelectPathMismatch {
        /// The offending segment.
        segment: NodeId,
        /// A configuration exhibiting the mismatch.
        config: Config,
    },
    /// A mux address references a register with no shadow (never
    /// controllable).
    AddressWithoutShadow {
        /// The multiplexer.
        mux: NodeId,
        /// The referenced register node.
        register: NodeId,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintWarning::UnreachableFromScanIn(n) => {
                write!(f, "node {n} is unreachable from any scan-in port")
            }
            LintWarning::CannotReachScanOut(n) => {
                write!(f, "node {n} cannot reach any scan-out port")
            }
            LintWarning::MuxNeverSwitches(n) => {
                write!(f, "multiplexer {n} has a constant address")
            }
            LintWarning::NeverSelected(n) => {
                write!(f, "segment {n} has a constant-false select")
            }
            LintWarning::SelectPathMismatch { segment, .. } => {
                write!(f, "segment {segment} select disagrees with path membership")
            }
            LintWarning::AddressWithoutShadow { mux, register } => {
                write!(f, "mux {mux} addressed by shadow-less register {register}")
            }
        }
    }
}

/// Findings of the purely structural lint passes: no configuration is
/// evaluated, only graph reachability and expression syntax.
///
/// The same passes back both the legacy [`Rsn::lint`] and the exhaustive
/// `rsn-verify` engine (which upgrades the syntactic constancy checks to
/// SAT proofs and maps each field onto a stable diagnostic code).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructuralFindings {
    /// Nodes unreachable from every scan-in port.
    pub unreachable: Vec<NodeId>,
    /// Nodes from which no scan-out port is reachable.
    pub unobservable: Vec<NodeId>,
    /// Muxes whose address expressions reference no register and no
    /// primary input (syntactically constant address).
    pub constant_address_muxes: Vec<NodeId>,
    /// Segments whose select is the syntactic constant `false`.
    pub never_selected: Vec<NodeId>,
    /// `(mux, register)` pairs where a mux address reads a register
    /// without a shadow (never controllable).
    pub shadowless_addresses: Vec<(NodeId, NodeId)>,
}

/// Runs the structural lint passes (reachability in both directions,
/// constant mux addresses, constant-false selects, shadow-less address
/// sources). Exhaustive by construction — no sampling is involved.
pub fn structural_findings(rsn: &Rsn) -> StructuralFindings {
    let mut out = StructuralFindings::default();

    // Reachability in both directions.
    let n = rsn.node_count();
    let mut fwd = vec![false; n];
    let mut stack: Vec<NodeId> = rsn
        .node_ids()
        .filter(|&id| matches!(rsn.node(id).kind(), NodeKind::ScanIn))
        .collect();
    for &r in &stack {
        fwd[r.index()] = true;
    }
    while let Some(u) = stack.pop() {
        for &v in rsn.successors(u) {
            if !fwd[v.index()] {
                fwd[v.index()] = true;
                stack.push(v);
            }
        }
    }
    let mut bwd = vec![false; n];
    let mut stack: Vec<NodeId> = rsn
        .node_ids()
        .filter(|&id| matches!(rsn.node(id).kind(), NodeKind::ScanOut))
        .collect();
    for &s in &stack {
        bwd[s.index()] = true;
    }
    while let Some(u) = stack.pop() {
        for p in rsn.predecessors(u) {
            if !bwd[p.index()] {
                bwd[p.index()] = true;
                stack.push(p);
            }
        }
    }
    for id in rsn.node_ids() {
        if !fwd[id.index()] {
            out.unreachable.push(id);
        }
        if !bwd[id.index()] {
            out.unobservable.push(id);
        }
    }

    // Constant addresses and shadow-less address sources.
    for m in rsn.muxes() {
        let mux = rsn.node(m).as_mux().expect("mux");
        let mut refs = Vec::new();
        for e in &mux.addr_bits {
            e.collect_reg_refs(&mut refs);
        }
        if refs.is_empty()
            && !mux
                .addr_bits
                .iter()
                .any(|e| matches!(e, crate::ControlExpr::Input(_)))
        {
            out.constant_address_muxes.push(m);
        }
        for (reg, _) in refs {
            if rsn.shadow_offset(reg).is_none() {
                out.shadowless_addresses.push((m, reg));
            }
        }
    }

    // Constant-false selects.
    for seg in rsn.segments() {
        if rsn
            .node(seg)
            .as_segment()
            .expect("segment")
            .select
            .is_false()
        {
            out.never_selected.push(seg);
        }
    }

    out
}

impl StructuralFindings {
    /// Renders the findings as legacy [`LintWarning`]s.
    pub fn to_warnings(&self) -> Vec<LintWarning> {
        let mut out = Vec::new();
        let both: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = self
                .unreachable
                .iter()
                .chain(&self.unobservable)
                .copied()
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        for id in both {
            if self.unreachable.contains(&id) {
                out.push(LintWarning::UnreachableFromScanIn(id));
            }
            if self.unobservable.contains(&id) {
                out.push(LintWarning::CannotReachScanOut(id));
            }
        }
        for &m in &self.constant_address_muxes {
            out.push(LintWarning::MuxNeverSwitches(m));
        }
        for &(mux, register) in &self.shadowless_addresses {
            out.push(LintWarning::AddressWithoutShadow { mux, register });
        }
        for &seg in &self.never_selected {
            out.push(LintWarning::NeverSelected(seg));
        }
        out
    }
}

impl Rsn {
    /// Lints the network, returning all findings. `samples` bounds the
    /// number of random-ish configurations probed for select/path
    /// agreement (deterministic sampling).
    ///
    /// This is the legacy compatibility entry point: the structural
    /// passes are exhaustive ([`structural_findings`]), but select/path
    /// agreement is only *sampled*. The `rsn-verify` crate proves the
    /// same properties over every configuration via SAT and should be
    /// preferred for correctness gating.
    pub fn lint(&self, samples: usize) -> Vec<LintWarning> {
        let mut out = structural_findings(self).to_warnings();

        // Sampled validity probing: flip one shadow bit at a time from
        // reset (plus the reset configuration itself).
        let mut cfgs = vec![self.reset_config()];
        for bit in 0..(self.shadow_bits() as usize).min(samples.saturating_sub(1)) {
            let mut c = self.reset_config();
            c.set_bit(bit, !c.bit(bit));
            cfgs.push(c);
        }
        // A segment is "on path" when any scan-out port's traced path
        // contains it — secondary ports observe segments just like the
        // primary one does.
        let sinks: Vec<NodeId> = self
            .node_ids()
            .filter(|&id| matches!(self.node(id).kind(), NodeKind::ScanOut))
            .collect();
        for cfg in cfgs {
            // Skip configurations that fail to decode somewhere, as the
            // single-port version always did.
            let Ok(paths) = sinks
                .iter()
                .map(|&p| self.trace_path_from(p, &cfg))
                .collect::<Result<Vec<_>, _>>()
            else {
                continue;
            };
            for seg in self.segments() {
                let selected = match self.select(seg, &cfg) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                if selected != paths.iter().any(|p| p.contains(seg)) {
                    out.push(LintWarning::SelectPathMismatch {
                        segment: seg,
                        config: cfg.clone(),
                    });
                    break; // one witness per configuration
                }
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{chain, fig2, sib_tree};
    use crate::expr::ControlExpr;
    use crate::network::RsnBuilder;

    #[test]
    fn clean_networks_lint_clean() {
        for rsn in [fig2(), chain(3, 2), sib_tree(1, 2, 3)] {
            let warnings = rsn.lint(32);
            assert!(warnings.is_empty(), "{}: {warnings:?}", rsn.name());
        }
    }

    #[test]
    fn constant_select_false_is_flagged() {
        let mut b = RsnBuilder::new("w");
        let s = b.add_segment("S", 1);
        // select stays FALSE
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("valid structure");
        let warnings = rsn.lint(4);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::NeverSelected(n) if *n == s)));
        // Also a select/path mismatch at reset (on path but deselected).
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::SelectPathMismatch { .. })));
    }

    #[test]
    fn constant_mux_address_is_flagged() {
        let mut b = RsnBuilder::new("w");
        let s1 = b.add_segment("S1", 1);
        let s2 = b.add_segment("S2", 1);
        b.set_select(s1, ControlExpr::TRUE);
        b.set_select(s2, ControlExpr::FALSE);
        b.connect(b.scan_in(), s1);
        b.connect(s1, s2);
        let m = b.add_mux("M", vec![s1, s2], vec![ControlExpr::FALSE]);
        b.connect(m, b.scan_out());
        let rsn = b.finish().expect("valid structure");
        let warnings = rsn.lint(4);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::MuxNeverSwitches(n) if *n == m)));
    }

    #[test]
    fn shadow_less_address_source_is_flagged() {
        let mut b = RsnBuilder::new("w");
        let ro = b.add_readonly_segment("RO", 1);
        b.set_select(ro, ControlExpr::TRUE);
        b.connect(b.scan_in(), ro);
        let s = b.add_segment("S", 1);
        b.set_select(s, ControlExpr::FALSE);
        b.connect(ro, s);
        let m = b.add_mux("M", vec![ro, s], vec![ControlExpr::reg(ro, 0)]);
        b.connect(m, b.scan_out());
        // Builder validation rejects the unknown register reference, so
        // lint never sees it... unless the register exists but has no
        // shadow. `reg(ro, 0)` with a read-only segment is exactly that;
        // builder's eval flags it as invalid, so construct the mux with an
        // input-based address and verify the clean case instead.
        match b.finish() {
            Err(_) => {} // expected: invalid control reference
            Ok(rsn) => {
                let warnings = rsn.lint(4);
                assert!(warnings
                    .iter()
                    .any(|w| matches!(w, LintWarning::AddressWithoutShadow { .. })));
            }
        }
    }

    #[test]
    fn warnings_render() {
        let w = LintWarning::MuxNeverSwitches(NodeId(3));
        assert!(!w.to_string().is_empty());
    }

    #[test]
    fn structural_findings_match_lint_on_clean_and_broken_networks() {
        for rsn in [fig2(), chain(4, 2), sib_tree(1, 2, 3)] {
            let s = structural_findings(&rsn);
            assert_eq!(s, StructuralFindings::default(), "{}", rsn.name());
            assert!(s.to_warnings().is_empty());
        }
        let mut b = RsnBuilder::new("w");
        let s = b.add_segment("S", 1);
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("valid structure");
        let f = structural_findings(&rsn);
        assert_eq!(f.never_selected, vec![s]);
        // Every structural warning also appears in the legacy lint.
        let lint = rsn.lint(4);
        for w in f.to_warnings() {
            assert!(lint.contains(&w), "{w}");
        }
    }
}
