//! Active-scan-path tracing and configuration validity.
//!
//! The *active scan path* is the unique path from the primary scan-in port
//! through selected segments and multiplexers to the primary scan-out port.
//! Tracing proceeds backward from the scan-out port: at a multiplexer the
//! configured address picks the unique predecessor, at any other node the
//! structural predecessor is unique. A configuration is *valid* iff the set
//! of segments whose select predicate holds equals exactly the set of
//! segments on the traced path (the paper's `Active` predicate / "exactly
//! one active scan path" condition).

use crate::config::Config;
use crate::error::{Error, Result};
use crate::network::{NodeId, NodeKind, Rsn};

/// The active scan path in a configuration: nodes from scan-in to scan-out
/// inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPath {
    nodes: Vec<NodeId>,
}

impl ScanPath {
    /// All nodes on the path, scan-in first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterator over the segments on the path, in scan order.
    pub fn segments<'a>(&'a self, rsn: &'a Rsn) -> impl Iterator<Item = NodeId> + 'a {
        self.nodes
            .iter()
            .copied()
            .filter(move |id| matches!(rsn.node(*id).kind(), NodeKind::Segment(_)))
    }

    /// `true` if the node lies on the path.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(&id)
    }

    /// Length of the shift portion of a CSU through this path: the sum of
    /// segment lengths.
    pub fn shift_length(&self, rsn: &Rsn) -> u64 {
        self.segments(rsn)
            .map(|id| rsn.node(id).as_segment().expect("segment").length as u64)
            .sum()
    }
}

impl Rsn {
    /// Traces the active scan path for a configuration, without checking
    /// validity.
    ///
    /// # Errors
    ///
    /// * [`Error::MuxAddressOutOfRange`] if a mux decodes an invalid address.
    /// * [`Error::SensitizedCycle`] if the trace revisits a node.
    /// * [`Error::NodeUnconnected`] should never occur on a validated
    ///   network.
    pub fn trace_path(&self, cfg: &Config) -> Result<ScanPath> {
        self.trace_path_from(self.scan_out(), cfg)
    }

    /// Traces backward from an arbitrary sink node (used for secondary
    /// scan-out ports).
    ///
    /// # Errors
    ///
    /// See [`Rsn::trace_path`].
    pub fn trace_path_from(&self, sink: NodeId, cfg: &Config) -> Result<ScanPath> {
        let mut rev = vec![sink];
        let mut cur = sink;
        let limit = self.node_count() + 1;
        while !matches!(self.node(cur).kind(), NodeKind::ScanIn) {
            let prev = match self.node(cur).kind() {
                NodeKind::Mux(_) => self.mux_selected_input(cur, cfg)?,
                _ => self.node(cur).source().ok_or(Error::NodeUnconnected(cur))?,
            };
            rev.push(prev);
            cur = prev;
            if rev.len() > limit {
                return Err(Error::SensitizedCycle);
            }
        }
        rev.reverse();
        Ok(ScanPath { nodes: rev })
    }

    /// Traces the active scan path and checks that the configuration is
    /// valid: every segment's select predicate holds iff the segment is on
    /// the path.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] with a witness segment on mismatch,
    /// or any tracing error from [`Rsn::trace_path`].
    pub fn active_path(&self, cfg: &Config) -> Result<ScanPath> {
        let path = self.trace_path(cfg)?;
        for seg in self.segments() {
            let selected = self.select(seg, cfg)?;
            let on_path = path.contains(seg);
            if selected != on_path {
                return Err(Error::InvalidConfiguration { witness: seg });
            }
        }
        Ok(path)
    }

    /// The paper's `Active(c, s)` predicate: `true` iff segment `s` is
    /// selected in configuration `c` and `c` is valid.
    ///
    /// # Errors
    ///
    /// Propagates tracing/evaluation errors; an invalid configuration yields
    /// `Ok(false)` rather than an error.
    pub fn is_active(&self, cfg: &Config, seg: NodeId) -> Result<bool> {
        match self.active_path(cfg) {
            Ok(path) => Ok(path.contains(seg)),
            Err(Error::InvalidConfiguration { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ControlExpr;
    use crate::network::RsnBuilder;

    /// scan_in -> SIB-controlled bypass of segment S -> scan_out.
    ///
    /// The SIB register (1 bit) drives a mux choosing between the bypass
    /// (SIB itself) and the segment.
    fn sib_network() -> (Rsn, NodeId, NodeId, NodeId) {
        let mut b = RsnBuilder::new("sib1");
        let sib = b.add_segment("SIB", 1);
        b.connect(b.scan_in(), sib);
        let seg = b.add_segment("S", 4);
        b.connect(sib, seg);
        let m = b.add_mux("M", vec![sib, seg], vec![ControlExpr::reg(sib, 0)]);
        b.connect(m, b.scan_out());
        // SIB is always on the path; S only when the SIB bit is set.
        b.set_select(sib, ControlExpr::TRUE);
        b.set_select(seg, ControlExpr::reg(sib, 0));
        let rsn = b.finish().expect("valid");
        (rsn, sib, seg, m)
    }

    #[test]
    fn reset_path_bypasses_segment() {
        let (rsn, sib, seg, _) = sib_network();
        let cfg = rsn.reset_config();
        let path = rsn.active_path(&cfg).expect("valid reset");
        assert!(path.contains(sib));
        assert!(!path.contains(seg));
        assert_eq!(path.shift_length(&rsn), 1);
    }

    #[test]
    fn opened_sib_includes_segment() {
        let (rsn, sib, seg, _) = sib_network();
        let mut cfg = rsn.reset_config();
        cfg.set_bit(rsn.shadow_offset(sib).expect("shadow") as usize, true);
        let path = rsn.active_path(&cfg).expect("valid opened");
        assert!(path.contains(sib));
        assert!(path.contains(seg));
        assert_eq!(path.shift_length(&rsn), 5);
    }

    #[test]
    fn is_active_matches_path_membership() {
        let (rsn, sib, seg, _) = sib_network();
        let mut cfg = rsn.reset_config();
        assert!(rsn.is_active(&cfg, sib).expect("ok"));
        assert!(!rsn.is_active(&cfg, seg).expect("ok"));
        cfg.set_bit(rsn.shadow_offset(sib).expect("shadow") as usize, true);
        assert!(rsn.is_active(&cfg, seg).expect("ok"));
    }

    #[test]
    fn select_path_mismatch_is_invalid() {
        // Segment whose select contradicts its path membership.
        let mut b = RsnBuilder::new("bad");
        let s = b.add_segment("S", 2);
        b.set_select(s, ControlExpr::FALSE); // on path but never selected
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("structurally valid");
        let cfg = rsn.reset_config();
        assert_eq!(
            rsn.active_path(&cfg).unwrap_err(),
            Error::InvalidConfiguration { witness: s }
        );
        assert!(!rsn
            .is_active(&cfg, s)
            .expect("invalid config is not an error"));
    }

    #[test]
    fn path_nodes_are_in_scan_order() {
        let (rsn, sib, _, m) = sib_network();
        let cfg = rsn.reset_config();
        let path = rsn.trace_path(&cfg).expect("ok");
        assert_eq!(path.nodes().first().copied(), Some(rsn.scan_in()));
        assert_eq!(path.nodes().last().copied(), Some(rsn.scan_out()));
        let pos_sib = path.nodes().iter().position(|&n| n == sib).expect("sib");
        let pos_m = path.nodes().iter().position(|&n| n == m).expect("mux");
        assert!(pos_sib < pos_m);
    }
}
