//! Access retargeting: merged multi-target accesses and latency analysis.
//!
//! The formal model of the paper's Sec. II-B computes a *time-optimal
//! series of CSU operations* for every access; the latency of an access is
//! the total number of clock cycles over that series (each CSU costs one
//! capture cycle, one shift cycle per active-path bit, and one update
//! cycle). This module implements the pattern-retargeting layer on top of
//! [`plan_access`](crate::Rsn::plan_access):
//!
//! * [`Rsn::plan_group_access`] merges accesses to several segments into
//!   one CSU series, opening all required hierarchy levels in parallel —
//!   the merging optimization of scan-pattern retargeting.
//! * Per-plan cycle accounting is generalized to
//!   [`LatencyReport`], the per-segment access latency table used by the
//!   latency-preservation experiment (T1-latency in DESIGN.md).

use crate::access::AccessPlan;
use crate::config::Config;
use crate::error::{Error, Result};
use crate::network::{NodeId, Rsn};

/// A merged access plan covering several target segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAccessPlan {
    /// The targets, in request order.
    pub targets: Vec<NodeId>,
    /// Configurations after each CSU operation.
    pub steps: Vec<Config>,
    /// Total latency in clock cycles (capture + shifts + update per CSU),
    /// including the final data CSU over the combined path.
    pub cycles: u64,
}

impl GroupAccessPlan {
    /// Number of CSU operations including the final data access.
    pub fn csu_count(&self) -> usize {
        self.steps.len() + 1
    }
}

/// Per-segment access latencies of a network, from the reset configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// `(segment, cycles)` pairs in arena order; `None` cycles for
    /// segments the greedy planner cannot reach (none in generated
    /// networks).
    pub per_segment: Vec<(NodeId, Option<u64>)>,
}

impl LatencyReport {
    /// Average access latency over all plannable segments.
    pub fn average(&self) -> f64 {
        let vals: Vec<u64> = self.per_segment.iter().filter_map(|&(_, c)| c).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<u64>() as f64 / vals.len() as f64
        }
    }

    /// Maximum access latency over all plannable segments.
    pub fn max(&self) -> Option<u64> {
        self.per_segment.iter().filter_map(|&(_, c)| c).max()
    }

    /// Latency of a specific segment.
    pub fn cycles(&self, seg: NodeId) -> Option<u64> {
        self.per_segment
            .iter()
            .find(|&&(s, _)| s == seg)
            .and_then(|&(_, c)| c)
    }
}

/// Cycle cost of one CSU over a path of `shift_bits` bits: one capture,
/// `shift_bits` shift cycles, one update.
fn csu_cycles(shift_bits: u64) -> u64 {
    shift_bits + 2
}

impl Rsn {
    /// Plans a merged access to several segments: one CSU series whose
    /// final configuration has *every* target on the active scan path.
    ///
    /// The planner iterates the greedy single-target requirement
    /// derivation for all targets simultaneously, so hierarchy levels
    /// shared between targets are opened once — fewer CSUs than planning
    /// each target separately (the retargeting merge optimization).
    ///
    /// # Errors
    ///
    /// * [`Error::WrongNodeKind`] if a target is not a segment.
    /// * [`Error::AccessPlanFailed`] if no single configuration routes all
    ///   targets (e.g. two targets on mutually exclusive branches) or the
    ///   greedy planner stalls.
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_core::examples::sib_tree;
    ///
    /// let rsn = sib_tree(1, 3, 4);
    /// let leaves: Vec<_> = rsn
    ///     .segments()
    ///     .filter(|&s| rsn.node(s).name().ends_with(".seg"))
    ///     .take(3)
    ///     .collect();
    /// let merged = rsn.plan_group_access(&leaves, &rsn.reset_config())?;
    /// // All leaves sit one SIB level deep: a single setup CSU suffices.
    /// assert_eq!(merged.csu_count(), 2);
    /// # Ok::<(), rsn_core::Error>(())
    /// ```
    pub fn plan_group_access(&self, targets: &[NodeId], from: &Config) -> Result<GroupAccessPlan> {
        for &t in targets {
            if self.node(t).as_segment().is_none() {
                return Err(Error::WrongNodeKind {
                    node: t,
                    expected: "segment",
                });
            }
        }

        let mut steps = Vec::new();
        let mut cur = from.clone();
        let mut cycles = 0u64;

        for _round in 0..=self.node_count() {
            let path = self.trace_path(&cur)?;
            if targets.iter().all(|&t| path.contains(t)) {
                cycles += csu_cycles(path.shift_length(self));
                return Ok(GroupAccessPlan {
                    targets: targets.to_vec(),
                    steps,
                    cycles,
                });
            }
            // Union of the requirements of all unsatisfied targets.
            let mut wrong: Vec<(NodeId, u32, bool)> = Vec::new();
            for &t in targets {
                if path.contains(t) {
                    continue;
                }
                let (req, input_req) = self.path_requirements_for(t, &cur)?;
                for (i, v) in input_req {
                    cur.set_input(i, v);
                }
                for (n, b, v) in req {
                    let off = self.shadow_offset(n).map(|o| (o + b) as usize);
                    let differs = match off {
                        Some(idx) => cur.bit(idx) != v,
                        None => true,
                    };
                    if differs && !wrong.contains(&(n, b, v)) {
                        // Conflicting requirements between targets?
                        if wrong
                            .iter()
                            .any(|&(n2, b2, v2)| n2 == n && b2 == b && v2 != v)
                        {
                            return Err(Error::AccessPlanFailed {
                                target: t,
                                reason: format!(
                                    "conflicting requirement on {n}[{b}] while merging accesses"
                                ),
                            });
                        }
                        wrong.push((n, b, v));
                    }
                }
            }
            if wrong.is_empty() {
                return Err(Error::AccessPlanFailed {
                    target: targets[0],
                    reason: "requirements satisfied but some target still off-path".into(),
                });
            }
            let mut next = cur.clone();
            let mut progressed = false;
            for (n, b, v) in wrong {
                let active = path.contains(n);
                let updis = match self.node(n).as_segment() {
                    Some(s) => self.eval(&s.update_disable, &cur)?,
                    None => true,
                };
                if active && !updis {
                    let off = self
                        .shadow_offset(n)
                        .ok_or(Error::InvalidRegisterRef { node: n, bit: b })?;
                    next.set_bit((off + b) as usize, v);
                    progressed = true;
                }
            }
            if !progressed {
                return Err(Error::AccessPlanFailed {
                    target: targets[0],
                    reason: "no required control register is writable".into(),
                });
            }
            cycles += csu_cycles(path.shift_length(self));
            cur = next;
            steps.push(cur.clone());
        }

        Err(Error::AccessPlanFailed {
            target: targets.first().copied().unwrap_or(self.scan_out()),
            reason: "merged planner exceeded iteration bound".into(),
        })
    }

    /// Computes the access latency of every segment from the reset
    /// configuration (one CSU series per segment; cycle accounting per
    /// [`AccessPlan`] plus the final data CSU).
    pub fn latency_report(&self) -> LatencyReport {
        let reset = self.reset_config();
        let per_segment = self
            .segments()
            .map(|seg| {
                let cycles = self
                    .plan_access(seg, &reset)
                    .ok()
                    .map(|plan| plan_cycles(self, &plan, &reset));
                (seg, cycles)
            })
            .collect();
        LatencyReport { per_segment }
    }
}

/// Total cycles of a single-target plan: each setup CSU costs capture +
/// path shifts + update over the path of the *previous* configuration;
/// the final data CSU runs over the final path.
fn plan_cycles(rsn: &Rsn, plan: &AccessPlan, from: &Config) -> u64 {
    let mut cycles = 0u64;
    let mut cur = from.clone();
    for step in &plan.steps {
        let path = rsn.trace_path(&cur).expect("plan steps are traceable");
        cycles += csu_cycles(path.shift_length(rsn));
        cur = step.clone();
    }
    let final_path = rsn.trace_path(&cur).expect("final step is traceable");
    cycles + csu_cycles(final_path.shift_length(rsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{chain, fig2, sib_tree};

    #[test]
    fn merged_access_opens_shared_levels_once() {
        let rsn = sib_tree(2, 2, 4);
        // Two leaves under the same depth-2 hierarchy: separate plans need
        // 2 setup CSUs each; a merged plan needs 2 total.
        let leaves: Vec<NodeId> = rsn
            .segments()
            .filter(|&s| {
                rsn.node(s).name().starts_with("t0") && rsn.node(s).name().ends_with(".seg")
            })
            .collect();
        assert!(leaves.len() >= 2);
        let merged = rsn
            .plan_group_access(&leaves, &rsn.reset_config())
            .expect("merged plan");
        assert_eq!(merged.csu_count(), 3, "2 setup CSUs + 1 data CSU");
    }

    #[test]
    fn merged_access_across_branches() {
        let rsn = sib_tree(1, 3, 4);
        // One leaf from each of the three top SIBs.
        let mut targets = Vec::new();
        for i in 0..3 {
            let name = format!("t{i}0.seg");
            targets.push(rsn.find(&name).expect("leaf exists"));
        }
        let merged = rsn
            .plan_group_access(&targets, &rsn.reset_config())
            .expect("merged plan");
        // All three SIBs open in one CSU.
        assert_eq!(merged.csu_count(), 2);
        let last = merged.steps.last().expect("one setup step");
        let path = rsn.active_path(last).expect("valid");
        for &t in &targets {
            assert!(path.contains(t));
        }
    }

    #[test]
    fn conflicting_targets_are_rejected() {
        // In fig2, B and C are on mutually exclusive mux branches.
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let c = rsn.find("C").expect("C");
        let err = rsn
            .plan_group_access(&[b, c], &rsn.reset_config())
            .unwrap_err();
        assert!(matches!(err, Error::AccessPlanFailed { .. }));
    }

    #[test]
    fn single_target_group_matches_plan_access() {
        let rsn = sib_tree(1, 2, 3);
        for seg in rsn.segments() {
            let single = rsn.plan_access(seg, &rsn.reset_config()).expect("single");
            let group = rsn
                .plan_group_access(&[seg], &rsn.reset_config())
                .expect("group");
            assert_eq!(group.csu_count(), single.csu_count() + 1);
        }
    }

    #[test]
    fn chain_latency_is_uniform() {
        let rsn = chain(4, 8);
        let report = rsn.latency_report();
        // Every segment is on the single path: latency = 32 shifts + 2.
        for &(_, cycles) in &report.per_segment {
            assert_eq!(cycles, Some(34));
        }
        assert_eq!(report.average(), 34.0);
        assert_eq!(report.max(), Some(34));
    }

    #[test]
    fn deeper_segments_cost_more_cycles() {
        let rsn = sib_tree(2, 2, 4);
        let report = rsn.latency_report();
        let top_sib = rsn.find("t0.sib").expect("top sib");
        let leaf = rsn.find("t000.seg").expect("leaf");
        let top_cycles = report.cycles(top_sib).expect("plannable");
        let leaf_cycles = report.cycles(leaf).expect("plannable");
        assert!(leaf_cycles > top_cycles);
    }

    #[test]
    fn latency_report_covers_all_segments() {
        let rsn = sib_tree(1, 3, 5);
        let report = rsn.latency_report();
        assert_eq!(report.per_segment.len(), rsn.segments().count());
        assert!(report.per_segment.iter().all(|&(_, c)| c.is_some()));
    }

    #[test]
    fn group_plan_rejects_non_segment() {
        let rsn = fig2();
        let m = rsn.find("M").expect("mux");
        assert!(matches!(
            rsn.plan_group_access(&[m], &rsn.reset_config()),
            Err(Error::WrongNodeKind { .. })
        ));
    }
}
