//! Error types for RSN construction and operation.

use std::fmt;

use crate::network::NodeId;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or operating on an RSN.
///
/// # Example
///
/// ```
/// use rsn_core::{Error, RsnBuilder};
///
/// // A network without a connected scan-out port cannot be finished.
/// let builder = RsnBuilder::new("broken");
/// match builder.finish() {
///     Err(Error::ScanOutUnconnected) => {}
///     other => panic!("expected ScanOutUnconnected, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The primary scan-out port has no driver.
    ScanOutUnconnected,
    /// A node other than the primary scan-in port has no scan-input driver.
    NodeUnconnected(NodeId),
    /// The structural dataflow contains a cycle through the given node.
    ///
    /// IEEE Std 1687 only permits cycles that can never be sensitized; this
    /// model requires structurally acyclic dataflow.
    StructuralCycle(NodeId),
    /// A multiplexer was declared with fewer than two data inputs.
    MuxTooFewInputs(NodeId),
    /// A multiplexer address evaluated to an input index that does not exist.
    MuxAddressOutOfRange {
        /// The multiplexer whose address was out of range.
        mux: NodeId,
        /// The decoded address value.
        address: usize,
        /// Number of data inputs of the multiplexer.
        inputs: usize,
    },
    /// A control expression referenced a shadow-register bit that does not
    /// exist (no shadow register, or bit index past the register length).
    InvalidRegisterRef {
        /// The referenced node.
        node: NodeId,
        /// The referenced bit index.
        bit: u32,
    },
    /// A control expression referenced a primary input that does not exist.
    InvalidInputRef(u32),
    /// The traced scan path does not match the set of selected segments, so
    /// the configuration is not valid (it does not describe exactly one
    /// active scan path).
    InvalidConfiguration {
        /// A segment that is selected but not on the traced path, or on the
        /// traced path but not selected.
        witness: NodeId,
    },
    /// A scan path trace exceeded the node count, indicating a cycle that is
    /// sensitized by the given configuration.
    SensitizedCycle,
    /// Access planning failed to find a CSU sequence for the target segment.
    AccessPlanFailed {
        /// The unreachable target segment.
        target: NodeId,
        /// Human-readable reason.
        reason: String,
    },
    /// The named node was expected to be a different kind (e.g. a segment
    /// was required but a multiplexer was found).
    WrongNodeKind {
        /// The offending node.
        node: NodeId,
        /// What the operation expected.
        expected: &'static str,
    },
    /// A duplicate node name was registered in the builder.
    DuplicateName(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ScanOutUnconnected => write!(f, "primary scan-out port has no driver"),
            Error::NodeUnconnected(n) => write!(f, "node {n} has no scan-input driver"),
            Error::StructuralCycle(n) => {
                write!(f, "structural dataflow cycle through node {n}")
            }
            Error::MuxTooFewInputs(n) => {
                write!(f, "multiplexer {n} has fewer than two data inputs")
            }
            Error::MuxAddressOutOfRange {
                mux,
                address,
                inputs,
            } => write!(
                f,
                "multiplexer {mux} address {address} out of range for {inputs} inputs"
            ),
            Error::InvalidRegisterRef { node, bit } => {
                write!(
                    f,
                    "invalid shadow-register reference: node {node} bit {bit}"
                )
            }
            Error::InvalidInputRef(i) => write!(f, "invalid primary input reference {i}"),
            Error::InvalidConfiguration { witness } => write!(
                f,
                "configuration is not valid: select/path mismatch at node {witness}"
            ),
            Error::SensitizedCycle => write!(f, "configuration sensitizes a structural cycle"),
            Error::AccessPlanFailed { target, reason } => {
                write!(f, "no access plan for segment {target}: {reason}")
            }
            Error::WrongNodeKind { node, expected } => {
                write!(f, "node {node} is not a {expected}")
            }
            Error::DuplicateName(name) => write!(f, "duplicate node name {name:?}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let errors = [
            Error::ScanOutUnconnected,
            Error::NodeUnconnected(NodeId(3)),
            Error::StructuralCycle(NodeId(1)),
            Error::MuxTooFewInputs(NodeId(0)),
            Error::MuxAddressOutOfRange {
                mux: NodeId(2),
                address: 5,
                inputs: 2,
            },
            Error::InvalidRegisterRef {
                node: NodeId(2),
                bit: 9,
            },
            Error::InvalidInputRef(7),
            Error::InvalidConfiguration { witness: NodeId(4) },
            Error::SensitizedCycle,
            Error::AccessPlanFailed {
                target: NodeId(8),
                reason: "x".into(),
            },
            Error::WrongNodeKind {
                node: NodeId(9),
                expected: "segment",
            },
            Error::DuplicateName("A".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
