//! Structural model of a reconfigurable scan network.
//!
//! An [`Rsn`] is an arena of [`Node`]s: the primary scan-in port (the unique
//! dataflow root), the primary scan-out port (the unique sink), scan
//! [`Segment`]s and scan multiplexers ([`Mux`]). Interconnects are stored as
//! each node's scan-input source(s); fan-out is implicit (a node's scan
//! output may drive any number of consumers).
//!
//! Networks are constructed through [`RsnBuilder`], which validates
//! structural well-formedness (single root/sink, acyclicity, connectedness,
//! control references) in [`RsnBuilder::finish`].

use std::collections::HashMap;
use std::fmt;

use crate::config::Config;
use crate::error::{Error, Result};
use crate::expr::ControlExpr;

/// Index of a node in an [`Rsn`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the arena index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A scan segment: a shift register of `length` bits between its scan-in and
/// scan-out port, optionally backed by a shadow register.
///
/// Segments with a shadow register provide write access to an attached
/// instrument or drive control logic (select signals, multiplexer
/// addresses); the shadow state is part of the scan configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Length of the shift register in bits (≥ 1).
    pub length: u32,
    /// Whether the segment has a shadow register (updatable).
    pub has_shadow: bool,
    /// Select predicate: the segment participates in CSU operations iff this
    /// evaluates to `true` in the current configuration.
    pub select: ControlExpr,
    /// Capture-disable predicate (paper: `Capdis`).
    pub capture_disable: ControlExpr,
    /// Update-disable predicate (paper: `Updis`).
    pub update_disable: ControlExpr,
}

impl Segment {
    /// Creates a plain updatable segment with a constant-false disable logic
    /// and a select predicate of `false` (to be set later).
    pub fn new(length: u32) -> Self {
        Segment {
            length,
            has_shadow: true,
            select: ControlExpr::FALSE,
            capture_disable: ControlExpr::FALSE,
            update_disable: ControlExpr::FALSE,
        }
    }
}

/// A scan multiplexer forwarding exactly one of its data inputs.
///
/// The address is binary-encoded in `addr_bits` (LSB first); each bit is a
/// [`ControlExpr`] over the scan configuration. A `hardened` multiplexer has
/// its address net protected by triple modular redundancy and is immune to
/// single stuck-at faults on the address (Sec. III-E-3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mux {
    /// Data inputs in address order (index 0 selected when all bits are 0).
    pub inputs: Vec<NodeId>,
    /// Binary-encoded address bits, least significant first.
    pub addr_bits: Vec<ControlExpr>,
    /// Whether the address net is TMR-hardened.
    pub hardened: bool,
}

/// The role a node plays in the dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary scan-in port (dataflow root). A network may have a secondary
    /// scan-in port after fault-tolerant synthesis; exactly one node is the
    /// *primary* root.
    ScanIn,
    /// Primary scan-out port (dataflow sink).
    ScanOut,
    /// A scan segment.
    Segment(Segment),
    /// A scan multiplexer.
    Mux(Mux),
}

/// A node in the RSN arena: its kind, name, and single-input source if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    /// Scan-input driver for ScanOut and Segment nodes (muxes use
    /// `Mux::inputs`, ScanIn has none).
    pub(crate) source: Option<NodeId>,
}

impl Node {
    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The single scan-input driver, if the node kind has one.
    pub fn source(&self) -> Option<NodeId> {
        self.source
    }

    /// Returns the segment payload, if this node is a segment.
    pub fn as_segment(&self) -> Option<&Segment> {
        match &self.kind {
            NodeKind::Segment(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the mux payload, if this node is a multiplexer.
    pub fn as_mux(&self) -> Option<&Mux> {
        match &self.kind {
            NodeKind::Mux(m) => Some(m),
            _ => None,
        }
    }

    /// All scan-input drivers of this node (mux inputs, or the single
    /// source).
    pub fn predecessors(&self) -> Vec<NodeId> {
        match &self.kind {
            NodeKind::Mux(m) => m.inputs.clone(),
            _ => self.source.into_iter().collect(),
        }
    }
}

/// A validated reconfigurable scan network.
///
/// Construct via [`RsnBuilder`]; the structure is immutable afterwards
/// except through dedicated synthesis transformations (which rebuild).
///
/// # Example
///
/// ```
/// use rsn_core::{ControlExpr, RsnBuilder};
///
/// let mut b = RsnBuilder::new("tiny");
/// let seg = b.add_segment("S", 8);
/// b.connect(b.scan_in(), seg);
/// b.connect(seg, b.scan_out());
/// b.set_select(seg, ControlExpr::TRUE);
/// let rsn = b.finish()?;
/// assert_eq!(rsn.segments().count(), 1);
/// # Ok::<(), rsn_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Rsn {
    name: String,
    nodes: Vec<Node>,
    scan_in: NodeId,
    scan_out: NodeId,
    /// Secondary scan ports added by fault-tolerant synthesis.
    secondary_scan_in: Option<NodeId>,
    secondary_scan_out: Option<NodeId>,
    num_inputs: u32,
    /// Successor lists (reverse of predecessor relation), indexed by node.
    successors: Vec<Vec<NodeId>>,
    /// Bit offset of each segment's shadow register in a `Config`, `None`
    /// for nodes without shadow state.
    shadow_offset: Vec<Option<u32>>,
    /// Total number of shadow bits.
    shadow_bits: u32,
    /// Topological order of the node arena (root first).
    topo: Vec<NodeId>,
    /// Reset values of shadow registers (by config bit index), defaults to 0.
    reset_bits: Vec<bool>,
}

impl Rsn {
    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary scan-in port (unique dataflow root).
    pub fn scan_in(&self) -> NodeId {
        self.scan_in
    }

    /// The primary scan-out port (unique dataflow sink).
    pub fn scan_out(&self) -> NodeId {
        self.scan_out
    }

    /// Secondary scan-in port, present only after fault-tolerant synthesis.
    pub fn secondary_scan_in(&self) -> Option<NodeId> {
        self.secondary_scan_in
    }

    /// Secondary scan-out port, present only after fault-tolerant synthesis.
    pub fn secondary_scan_out(&self) -> Option<NodeId> {
        self.secondary_scan_out
    }

    /// Number of primary control inputs.
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Total number of shadow-register bits (the configuration width minus
    /// primary inputs).
    pub fn shadow_bits(&self) -> u32 {
        self.shadow_bits
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this network.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all segment node ids.
    pub fn segments(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |id| matches!(self.node(*id).kind, NodeKind::Segment(_)))
    }

    /// Iterator over all multiplexer node ids.
    pub fn muxes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |id| matches!(self.node(*id).kind, NodeKind::Mux(_)))
    }

    /// Total scan bits across all segments.
    pub fn total_bits(&self) -> u64 {
        self.segments()
            .map(|id| {
                self.node(id)
                    .as_segment()
                    .expect("segments() yields segments")
                    .length as u64
            })
            .sum()
    }

    /// Successors (fan-out consumers) of a node.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.successors[id.index()]
    }

    /// Predecessors of a node (mux inputs or single source).
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.node(id).predecessors()
    }

    /// Topological order of the dataflow (scan-in first).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Bit offset of a segment's shadow register in a configuration, or
    /// `None` if the node has no shadow state.
    pub fn shadow_offset(&self, id: NodeId) -> Option<u32> {
        self.shadow_offset[id.index()]
    }

    /// Shadow-register length of a node (0 if none).
    pub fn shadow_len(&self, id: NodeId) -> u32 {
        match &self.node(id).kind {
            NodeKind::Segment(s) if s.has_shadow => s.length,
            _ => 0,
        }
    }

    /// Creates the reset configuration `c₀` (all shadow registers at their
    /// reset value, all primary inputs 0).
    pub fn reset_config(&self) -> Config {
        Config::from_bits(self.reset_bits.clone(), self.num_inputs)
    }

    /// Looks up a node by name, linear scan.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.node_ids().find(|id| self.node(*id).name == name)
    }

    /// Evaluates a control expression in a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRegisterRef`] or [`Error::InvalidInputRef`] if
    /// the expression references state that does not exist in this network.
    pub fn eval(&self, expr: &ControlExpr, cfg: &Config) -> Result<bool> {
        let err = std::cell::RefCell::new(None);
        let v = expr.eval_with(
            &mut |node, bit| match self.shadow_offset(node) {
                Some(off) if bit < self.shadow_len(node) => cfg.bit((off + bit) as usize),
                _ => {
                    err.borrow_mut()
                        .get_or_insert(Error::InvalidRegisterRef { node, bit });
                    false
                }
            },
            &mut |i| {
                if i.0 < self.num_inputs {
                    cfg.input(i)
                } else {
                    err.borrow_mut().get_or_insert(Error::InvalidInputRef(i.0));
                    false
                }
            },
        );
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(v),
        }
    }

    /// Evaluates the select predicate of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongNodeKind`] if `id` is not a segment, or an
    /// evaluation error from [`Rsn::eval`].
    pub fn select(&self, id: NodeId, cfg: &Config) -> Result<bool> {
        let seg = self.node(id).as_segment().ok_or(Error::WrongNodeKind {
            node: id,
            expected: "segment",
        })?;
        self.eval(&seg.select, cfg)
    }

    /// Decodes the address of a multiplexer in a configuration and returns
    /// the selected input node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongNodeKind`] if `id` is not a mux and
    /// [`Error::MuxAddressOutOfRange`] if the decoded address exceeds the
    /// input count.
    pub fn mux_selected_input(&self, id: NodeId, cfg: &Config) -> Result<NodeId> {
        let mux = self.node(id).as_mux().ok_or(Error::WrongNodeKind {
            node: id,
            expected: "mux",
        })?;
        let mut addr = 0usize;
        for (i, bit) in mux.addr_bits.iter().enumerate() {
            if self.eval(bit, cfg)? {
                addr |= 1 << i;
            }
        }
        mux.inputs
            .get(addr)
            .copied()
            .ok_or(Error::MuxAddressOutOfRange {
                mux: id,
                address: addr,
                inputs: mux.inputs.len(),
            })
    }

    /// A stable 64-bit content hash of the network.
    ///
    /// Covers everything that defines behavior — node names, kinds and
    /// payloads (segment lengths, shadow flags, control expressions, mux
    /// inputs/addresses/hardening), dataflow sources, scan ports, input
    /// count and reset values. Two structurally identical networks hash
    /// equal; any behavioral edit changes the hash with overwhelming
    /// probability. FNV-1a over an explicit serialization, so the value
    /// is stable across processes and runs (unlike `DefaultHasher`) —
    /// usable as an artifact-cache key (rsn-serve) or checkpoint
    /// identity.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.name);
        h.write_u32(self.num_inputs);
        h.write_u32(self.scan_in.0);
        h.write_u32(self.scan_out.0);
        h.write_opt_node(self.secondary_scan_in);
        h.write_opt_node(self.secondary_scan_out);
        h.write_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            h.write_str(&node.name);
            h.write_opt_node(node.source);
            match &node.kind {
                NodeKind::ScanIn => h.write_u8(0),
                NodeKind::ScanOut => h.write_u8(1),
                NodeKind::Segment(s) => {
                    h.write_u8(2);
                    h.write_u32(s.length);
                    h.write_u8(s.has_shadow as u8);
                    h.write_expr(&s.select);
                    h.write_expr(&s.capture_disable);
                    h.write_expr(&s.update_disable);
                }
                NodeKind::Mux(m) => {
                    h.write_u8(3);
                    h.write_u8(m.hardened as u8);
                    h.write_u64(m.inputs.len() as u64);
                    for &i in &m.inputs {
                        h.write_u32(i.0);
                    }
                    h.write_u64(m.addr_bits.len() as u64);
                    for e in &m.addr_bits {
                        h.write_expr(e);
                    }
                }
            }
        }
        h.write_u64(self.reset_bits.len() as u64);
        for &b in &self.reset_bits {
            h.write_u8(b as u8);
        }
        h.finish()
    }

    /// Consumes the network and returns a builder initialized with the same
    /// structure, for synthesis transformations.
    pub fn into_builder(self) -> RsnBuilder {
        RsnBuilder {
            name: self.name,
            nodes: self.nodes,
            scan_in: self.scan_in,
            scan_out: self.scan_out,
            secondary_scan_in: self.secondary_scan_in,
            secondary_scan_out: self.secondary_scan_out,
            num_inputs: self.num_inputs,
            names: HashMap::new(),
            reset: HashMap::new(),
            check_names: false,
        }
    }
}

/// FNV-1a, 64-bit: the serialization hasher behind [`Rsn::fingerprint`].
/// `std`'s `DefaultHasher` is explicitly not stable across releases or
/// processes, so the cache key rolls its own.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Length-prefixed so adjacent strings cannot alias.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for &b in s.as_bytes() {
            self.write_u8(b);
        }
    }

    /// Tagged so `None` differs from any node id.
    fn write_opt_node(&mut self, n: Option<NodeId>) {
        match n {
            None => self.write_u8(0),
            Some(id) => {
                self.write_u8(1);
                self.write_u32(id.0);
            }
        }
    }

    fn write_expr(&mut self, e: &ControlExpr) {
        match e {
            ControlExpr::Const(b) => {
                self.write_u8(10);
                self.write_u8(*b as u8);
            }
            ControlExpr::Reg(node, bit) => {
                self.write_u8(11);
                self.write_u32(node.0);
                self.write_u32(*bit);
            }
            ControlExpr::Input(i) => {
                self.write_u8(12);
                self.write_u32(i.0);
            }
            ControlExpr::Not(inner) => {
                self.write_u8(13);
                self.write_expr(inner);
            }
            ControlExpr::And(es) => {
                self.write_u8(14);
                self.write_u64(es.len() as u64);
                for x in es {
                    self.write_expr(x);
                }
            }
            ControlExpr::Or(es) => {
                self.write_u8(15);
                self.write_u64(es.len() as u64);
                for x in es {
                    self.write_expr(x);
                }
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Builder for [`Rsn`] networks.
///
/// The builder starts with the two primary scan ports already present. Nodes
/// are added, then connected, then control predicates assigned, and finally
/// the network is validated by [`RsnBuilder::finish`].
#[derive(Debug, Clone)]
pub struct RsnBuilder {
    name: String,
    nodes: Vec<Node>,
    scan_in: NodeId,
    scan_out: NodeId,
    secondary_scan_in: Option<NodeId>,
    secondary_scan_out: Option<NodeId>,
    num_inputs: u32,
    names: HashMap<String, NodeId>,
    /// Per-segment shadow reset values (bit index within segment → value).
    reset: HashMap<(NodeId, u32), bool>,
    check_names: bool,
}

impl RsnBuilder {
    /// Creates a builder holding only the primary scan-in and scan-out
    /// ports.
    pub fn new(name: impl Into<String>) -> Self {
        let nodes = vec![
            Node {
                name: "scan_in".into(),
                kind: NodeKind::ScanIn,
                source: None,
            },
            Node {
                name: "scan_out".into(),
                kind: NodeKind::ScanOut,
                source: None,
            },
        ];
        RsnBuilder {
            name: name.into(),
            nodes,
            scan_in: NodeId(0),
            scan_out: NodeId(1),
            secondary_scan_in: None,
            secondary_scan_out: None,
            num_inputs: 0,
            names: HashMap::new(),
            reset: HashMap::new(),
            check_names: true,
        }
    }

    /// The primary scan-in port.
    pub fn scan_in(&self) -> NodeId {
        self.scan_in
    }

    /// The primary scan-out port.
    pub fn scan_out(&self) -> NodeId {
        self.scan_out
    }

    /// Declares `n` primary control inputs and returns the id range start.
    pub fn add_inputs(&mut self, n: u32) -> u32 {
        let start = self.num_inputs;
        self.num_inputs += n;
        start
    }

    fn push(&mut self, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if self.check_names {
            self.names.insert(name.clone(), id);
        }
        self.nodes.push(Node {
            name,
            kind,
            source: None,
        });
        id
    }

    /// Adds an updatable scan segment of `length` bits with select
    /// defaulting to `false`.
    pub fn add_segment(&mut self, name: impl Into<String>, length: u32) -> NodeId {
        self.push(name.into(), NodeKind::Segment(Segment::new(length)))
    }

    /// Adds a segment without a shadow register (read-only data register).
    pub fn add_readonly_segment(&mut self, name: impl Into<String>, length: u32) -> NodeId {
        let mut seg = Segment::new(length);
        seg.has_shadow = false;
        self.push(name.into(), NodeKind::Segment(seg))
    }

    /// Adds a scan multiplexer with the given ordered inputs and
    /// binary-encoded address bits (LSB first).
    pub fn add_mux(
        &mut self,
        name: impl Into<String>,
        inputs: Vec<NodeId>,
        addr_bits: Vec<ControlExpr>,
    ) -> NodeId {
        self.push(
            name.into(),
            NodeKind::Mux(Mux {
                inputs,
                addr_bits,
                hardened: false,
            }),
        )
    }

    /// Marks a multiplexer's address net as TMR-hardened.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a multiplexer.
    pub fn harden_mux(&mut self, id: NodeId) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Mux(m) => m.hardened = true,
            _ => panic!("harden_mux on non-mux node {id}"),
        }
    }

    /// Replaces the data inputs of a multiplexer (used by synthesis
    /// rebuilds where inputs may reference nodes created later).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a multiplexer.
    pub fn set_mux_inputs(&mut self, id: NodeId, inputs: Vec<NodeId>) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Mux(m) => m.inputs = inputs,
            _ => panic!("set_mux_inputs on non-mux node {id}"),
        }
    }

    /// Replaces the address bits of a multiplexer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a multiplexer.
    pub fn set_mux_addr_bits(&mut self, id: NodeId, addr_bits: Vec<ControlExpr>) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Mux(m) => m.addr_bits = addr_bits,
            _ => panic!("set_mux_addr_bits on non-mux node {id}"),
        }
    }

    /// Sets the capture-disable predicate of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a segment.
    pub fn set_capture_disable(&mut self, id: NodeId, capdis: ControlExpr) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Segment(s) => s.capture_disable = capdis,
            _ => panic!("set_capture_disable on non-segment node {id}"),
        }
    }

    /// Declares a secondary scan-in port (a second dataflow root added by
    /// fault-tolerant synthesis).
    pub fn add_secondary_scan_in(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(name.into(), NodeKind::ScanIn);
        self.secondary_scan_in = Some(id);
        id
    }

    /// Declares a secondary scan-out port (a second sink added by
    /// fault-tolerant synthesis). Its driver is set with [`RsnBuilder::connect`].
    pub fn add_secondary_scan_out(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(name.into(), NodeKind::ScanOut);
        self.secondary_scan_out = Some(id);
        id
    }

    /// Connects `from`'s scan output to `to`'s scan input.
    ///
    /// For multiplexer targets use the mux input list instead; this method
    /// sets the single source of segments and scan-out ports.
    ///
    /// # Panics
    ///
    /// Panics if `to` is a mux or a scan-in port.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        match self.nodes[to.index()].kind {
            NodeKind::Mux(_) => panic!("connect to mux {to}: use mux input list"),
            NodeKind::ScanIn => panic!("connect to scan-in port {to}"),
            _ => self.nodes[to.index()].source = Some(from),
        }
    }

    /// Sets the select predicate of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a segment.
    pub fn set_select(&mut self, id: NodeId, select: ControlExpr) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Segment(s) => s.select = select,
            _ => panic!("set_select on non-segment node {id}"),
        }
    }

    /// Sets the update-disable predicate of a segment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a segment.
    pub fn set_update_disable(&mut self, id: NodeId, updis: ControlExpr) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Segment(s) => s.update_disable = updis,
            _ => panic!("set_update_disable on non-segment node {id}"),
        }
    }

    /// Sets the reset value of one shadow-register bit of a segment.
    pub fn set_reset_bit(&mut self, id: NodeId, bit: u32, value: bool) {
        self.reset.insert((id, bit), value);
    }

    /// Extends a segment's register by `extra` bits (e.g. routing bits
    /// appended by fault-tolerant synthesis). The new bits reset to 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a segment.
    pub fn extend_segment(&mut self, id: NodeId, extra: u32) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Segment(s) => s.length += extra,
            _ => panic!("extend_segment on non-segment node {id}"),
        }
    }

    /// Direct mutable access to a node, for synthesis transformations.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Direct access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes currently in the builder.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validates the structure and produces an immutable [`Rsn`].
    ///
    /// # Errors
    ///
    /// * [`Error::ScanOutUnconnected`] / [`Error::NodeUnconnected`] if a node
    ///   misses its scan-input driver.
    /// * [`Error::MuxTooFewInputs`] for degenerate multiplexers.
    /// * [`Error::StructuralCycle`] if the dataflow is not acyclic.
    /// * [`Error::DuplicateName`] if two nodes share a name (builder-created
    ///   networks only).
    /// * [`Error::InvalidRegisterRef`] / [`Error::InvalidInputRef`] if a
    ///   control expression references non-existent state.
    pub fn finish(self) -> Result<Rsn> {
        let RsnBuilder {
            name,
            nodes,
            scan_in,
            scan_out,
            secondary_scan_in,
            secondary_scan_out,
            num_inputs,
            names,
            reset,
            check_names,
        } = self;

        if check_names && names.len() + 2 != nodes.len() {
            // Some name was inserted twice; find it for the error message.
            let mut seen = HashMap::new();
            for n in &nodes {
                if seen.insert(n.name.clone(), ()).is_some() {
                    return Err(Error::DuplicateName(n.name.clone()));
                }
            }
        }

        // Connectivity of single-input nodes.
        for (i, n) in nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match &n.kind {
                NodeKind::ScanIn => {}
                NodeKind::ScanOut => {
                    if n.source.is_none() {
                        return Err(if id == scan_out {
                            Error::ScanOutUnconnected
                        } else {
                            Error::NodeUnconnected(id)
                        });
                    }
                }
                NodeKind::Segment(_) => {
                    if n.source.is_none() {
                        return Err(Error::NodeUnconnected(id));
                    }
                }
                NodeKind::Mux(m) => {
                    if m.inputs.len() < 2 {
                        return Err(Error::MuxTooFewInputs(id));
                    }
                }
            }
        }

        // Successor lists.
        let mut successors: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for p in n.predecessors() {
                successors[p.index()].push(id);
            }
        }

        // Topological sort (Kahn) over the dataflow; detects cycles.
        let mut indeg: Vec<usize> = nodes.iter().map(|n| n.predecessors().len()).collect();
        let mut queue: Vec<NodeId> = (0..nodes.len() as u32)
            .map(NodeId)
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(nodes.len());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            topo.push(id);
            for &s in &successors[id.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != nodes.len() {
            let witness = (0..nodes.len() as u32)
                .map(NodeId)
                .find(|id| indeg[id.index()] > 0)
                .expect("cycle implies a node with remaining indegree");
            return Err(Error::StructuralCycle(witness));
        }

        // Shadow register layout.
        let mut shadow_offset = vec![None; nodes.len()];
        let mut shadow_bits = 0u32;
        for (i, n) in nodes.iter().enumerate() {
            if let NodeKind::Segment(s) = &n.kind {
                if s.has_shadow {
                    shadow_offset[i] = Some(shadow_bits);
                    shadow_bits += s.length;
                }
            }
        }

        // Reset values.
        let mut reset_bits = vec![false; shadow_bits as usize];
        for ((node, bit), value) in reset {
            if let Some(off) = shadow_offset[node.index()] {
                if bit < nodes[node.index()].as_segment().map_or(0, |s| s.length) {
                    reset_bits[(off + bit) as usize] = value;
                } else {
                    return Err(Error::InvalidRegisterRef { node, bit });
                }
            } else {
                return Err(Error::InvalidRegisterRef { node, bit: 0 });
            }
        }

        let rsn = Rsn {
            name,
            nodes,
            scan_in,
            scan_out,
            secondary_scan_in,
            secondary_scan_out,
            num_inputs,
            successors,
            shadow_offset,
            shadow_bits,
            topo,
            reset_bits,
        };

        // Validate control references by evaluating every expression once.
        let cfg = rsn.reset_config();
        for id in rsn.node_ids() {
            match &rsn.node(id).kind {
                NodeKind::Segment(s) => {
                    rsn.eval(&s.select, &cfg)?;
                    rsn.eval(&s.capture_disable, &cfg)?;
                    rsn.eval(&s.update_disable, &cfg)?;
                }
                NodeKind::Mux(m) => {
                    for b in &m.addr_bits {
                        rsn.eval(b, &cfg)?;
                    }
                }
                _ => {}
            }
        }

        Ok(rsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Rsn {
        let mut b = RsnBuilder::new("chain");
        let mut prev = b.scan_in();
        for i in 0..n {
            let s = b.add_segment(format!("S{i}"), 4);
            b.set_select(s, ControlExpr::TRUE);
            b.connect(prev, s);
            prev = s;
        }
        b.connect(prev, b.scan_out());
        b.finish().expect("valid chain")
    }

    #[test]
    fn build_simple_chain() {
        let rsn = chain(3);
        assert_eq!(rsn.node_count(), 5);
        assert_eq!(rsn.segments().count(), 3);
        assert_eq!(rsn.total_bits(), 12);
        assert_eq!(rsn.shadow_bits(), 12);
    }

    #[test]
    fn unconnected_scan_out_is_rejected() {
        let b = RsnBuilder::new("x");
        assert_eq!(b.finish().unwrap_err(), Error::ScanOutUnconnected);
    }

    #[test]
    fn unconnected_segment_is_rejected() {
        let mut b = RsnBuilder::new("x");
        let s = b.add_segment("S", 1);
        b.connect(s, b.scan_out());
        assert_eq!(b.finish().unwrap_err(), Error::NodeUnconnected(s));
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = RsnBuilder::new("x");
        let s1 = b.add_segment("S1", 1);
        let s2 = b.add_segment("S2", 1);
        b.connect(s2, s1);
        b.connect(s1, s2);
        // scan_out driven by s2 so connectivity passes
        b.connect(s2, b.scan_out());
        assert!(matches!(b.finish().unwrap_err(), Error::StructuralCycle(_)));
    }

    #[test]
    fn mux_with_one_input_is_rejected() {
        let mut b = RsnBuilder::new("x");
        let s = b.add_segment("S", 1);
        b.connect(b.scan_in(), s);
        let m = b.add_mux("M", vec![s], vec![ControlExpr::FALSE]);
        b.connect(m, b.scan_out());
        assert_eq!(b.finish().unwrap_err(), Error::MuxTooFewInputs(m));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = RsnBuilder::new("x");
        let s1 = b.add_segment("S", 1);
        let s2 = b.add_segment("S", 1);
        b.connect(b.scan_in(), s1);
        b.connect(s1, s2);
        b.connect(s2, b.scan_out());
        assert_eq!(b.finish().unwrap_err(), Error::DuplicateName("S".into()));
    }

    #[test]
    fn invalid_control_reference_is_rejected() {
        let mut b = RsnBuilder::new("x");
        let s = b.add_segment("S", 2);
        b.set_select(s, ControlExpr::reg(s, 5)); // bit 5 of a 2-bit register
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        assert_eq!(
            b.finish().unwrap_err(),
            Error::InvalidRegisterRef { node: s, bit: 5 }
        );
    }

    #[test]
    fn topo_order_respects_edges() {
        let rsn = chain(4);
        let pos: Vec<usize> = {
            let mut pos = vec![0; rsn.node_count()];
            for (i, id) in rsn.topo_order().iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for id in rsn.node_ids() {
            for p in rsn.predecessors(id) {
                assert!(pos[p.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn successors_inverse_of_predecessors() {
        let rsn = chain(3);
        for id in rsn.node_ids() {
            for p in rsn.predecessors(id) {
                assert!(rsn.successors(p).contains(&id));
            }
            for &s in rsn.successors(id) {
                assert!(rsn.predecessors(s).contains(&id));
            }
        }
    }

    #[test]
    fn mux_selected_input_decodes_address() {
        let mut b = RsnBuilder::new("m");
        let ctl = b.add_segment("CTL", 1);
        b.set_select(ctl, ControlExpr::TRUE);
        b.connect(b.scan_in(), ctl);
        let s1 = b.add_segment("S1", 2);
        let s2 = b.add_segment("S2", 2);
        b.set_select(s1, ControlExpr::TRUE);
        b.set_select(s2, ControlExpr::TRUE);
        b.connect(ctl, s1);
        b.connect(ctl, s2);
        let m = b.add_mux("M", vec![s1, s2], vec![ControlExpr::reg(ctl, 0)]);
        b.connect(m, b.scan_out());
        let rsn = b.finish().expect("valid");
        let mut cfg = rsn.reset_config();
        assert_eq!(rsn.mux_selected_input(m, &cfg).expect("in range"), s1);
        cfg.set_bit(rsn.shadow_offset(ctl).expect("has shadow") as usize, true);
        assert_eq!(rsn.mux_selected_input(m, &cfg).expect("in range"), s2);
    }

    #[test]
    fn reset_values_are_applied() {
        let mut b = RsnBuilder::new("r");
        let s = b.add_segment("S", 3);
        b.set_select(s, ControlExpr::TRUE);
        b.set_reset_bit(s, 1, true);
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("valid");
        let cfg = rsn.reset_config();
        let off = rsn.shadow_offset(s).expect("shadow") as usize;
        assert!(!cfg.bit(off));
        assert!(cfg.bit(off + 1));
        assert!(!cfg.bit(off + 2));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let build = |reset: bool, length: u32| {
            let mut b = RsnBuilder::new("fp");
            let s = b.add_segment("S", length);
            b.set_select(s, ControlExpr::TRUE);
            b.set_reset_bit(s, 0, reset);
            b.connect(b.scan_in(), s);
            b.connect(s, b.scan_out());
            b.finish().expect("valid")
        };
        let a = build(false, 3);
        // Identical structure → identical hash (also across the clone).
        assert_eq!(a.fingerprint(), build(false, 3).fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // Any behavioral edit moves the hash.
        assert_ne!(a.fingerprint(), build(true, 3).fingerprint());
        assert_ne!(a.fingerprint(), build(false, 4).fingerprint());
        // Pinned value: fails if the serialization ever changes silently
        // (stale service caches / checkpoints would go undetected).
        assert_eq!(a.fingerprint(), 0x58dd_fde7_d924_b77c);
    }

    #[test]
    fn readonly_segment_has_no_shadow() {
        let mut b = RsnBuilder::new("r");
        let s = b.add_readonly_segment("RO", 8);
        b.set_select(s, ControlExpr::TRUE);
        b.connect(b.scan_in(), s);
        b.connect(s, b.scan_out());
        let rsn = b.finish().expect("valid");
        assert_eq!(rsn.shadow_offset(s), None);
        assert_eq!(rsn.shadow_bits(), 0);
        assert_eq!(rsn.total_bits(), 8);
    }
}
