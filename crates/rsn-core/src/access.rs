//! Fault-free access planning: computing a series of CSU operations that
//! routes the active scan path through a target segment.
//!
//! The planner mirrors the role of the formal access computation of the
//! paper's Section II-B, specialized to the structured networks this
//! toolchain generates (SIB-based and fault-tolerant synthesized RSNs):
//! multiplexer address bits in these networks are literals over shadow
//! registers, so the required register values to sensitize a path can be
//! derived syntactically, and hierarchical networks are opened level by
//! level — one CSU per hierarchy level, which is the time-optimal strategy
//! for SIB networks. For arbitrary RSNs the bounded-model-checking engine
//! in `rsn-bmc` provides a complete (but slower) alternative.

use crate::config::Config;
use crate::error::{Error, Result};
use crate::expr::{ControlExpr, InputId};
use crate::network::{NodeId, NodeKind, Rsn};

/// Register requirements `(segment, bit, value)` plus primary-input
/// requirements to sensitize a chosen path.
pub(crate) type PathRequirements = (Vec<(NodeId, u32, bool)>, Vec<(InputId, bool)>);

/// A fault-free access plan: the sequence of scan configurations reached
/// after each CSU operation. The final configuration has the target segment
/// on the active scan path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPlan {
    /// Target segment.
    pub target: NodeId,
    /// Configurations after each CSU, in order. Empty if the target is
    /// already active in the initial configuration.
    pub steps: Vec<Config>,
    /// Total access latency in shift cycles: the sum over all CSUs of the
    /// active-path shift length (plus the final read/write CSU).
    pub latency: u64,
}

impl AccessPlan {
    /// Number of CSU operations needed before the target is on the active
    /// path (excluding the final data CSU).
    pub fn csu_count(&self) -> usize {
        self.steps.len()
    }
}

/// Derives the partial register assignment that forces `expr` to evaluate
/// to `value`, for literal-shaped expressions.
///
/// Returns `None` if the expression is too complex to invert syntactically.
fn require(
    expr: &ControlExpr,
    value: bool,
    out: &mut Vec<(NodeId, u32, bool)>,
    inputs: &mut Vec<(InputId, bool)>,
) -> Option<()> {
    // XOR pattern (a ∧ ¬b) ∨ (¬a ∧ b): invert consistently — naive
    // child-wise inversion would demand contradictory values for `a`.
    if let Some((a, b)) = match_xor(expr) {
        if value {
            // a=1, b=0 (prefer driving the first operand).
            require(a, true, out, inputs)?;
            require(b, false, out, inputs)?;
        } else {
            // a=0, b=0 (the reset-friendly solution).
            require(a, false, out, inputs)?;
            require(b, false, out, inputs)?;
        }
        return Some(());
    }
    match expr {
        ControlExpr::Const(b) => {
            if *b == value {
                Some(())
            } else {
                None
            }
        }
        ControlExpr::Reg(n, bit) => {
            out.push((*n, *bit, value));
            Some(())
        }
        // Primary control inputs are freely drivable in every CSU.
        ControlExpr::Input(i) => {
            inputs.push((*i, value));
            Some(())
        }
        ControlExpr::Not(e) => require(e, !value, out, inputs),
        ControlExpr::And(es) if value => {
            for e in es {
                require(e, true, out, inputs)?;
            }
            Some(())
        }
        ControlExpr::Or(es) if !value => {
            for e in es {
                require(e, false, out, inputs)?;
            }
            Some(())
        }
        // AND=false / OR=true: satisfy through the first invertible child.
        ControlExpr::And(es) | ControlExpr::Or(es) => {
            for e in es {
                let mut tmp = Vec::new();
                let mut tmp_in = Vec::new();
                if require(e, value, &mut tmp, &mut tmp_in).is_some() {
                    out.extend(tmp);
                    inputs.extend(tmp_in);
                    return Some(());
                }
            }
            None
        }
    }
}

/// Matches the Tseitin-style XOR shape `(a ∧ ¬b) ∨ (¬a ∧ b)` and returns
/// the two operand expressions.
fn match_xor(expr: &ControlExpr) -> Option<(&ControlExpr, &ControlExpr)> {
    let ControlExpr::Or(or) = expr else {
        return None;
    };
    let [ControlExpr::And(c1), ControlExpr::And(c2)] = or.as_slice() else {
        return None;
    };
    let ([a1, n_b1], [n_a2, b2]) = (c1.as_slice(), c2.as_slice()) else {
        return None;
    };
    let (ControlExpr::Not(b1), ControlExpr::Not(a2)) = (n_b1, n_a2) else {
        return None;
    };
    (a1 == a2.as_ref() && b1.as_ref() == b2).then_some((a1, b2))
}

impl Rsn {
    /// Chooses a structural path from scan-in through `target` to scan-out,
    /// preferring edges already sensitized by `cfg` (0/1-BFS on address
    /// changes), and returns the register requirements to sensitize it.
    pub(crate) fn path_requirements_for(
        &self,
        target: NodeId,
        cfg: &Config,
    ) -> Result<PathRequirements> {
        let mut req = Vec::new();
        let mut input_req = Vec::new();

        // Backward half: target .. scan-in, following unique sources and
        // choosing mux inputs.
        let mut cur = target;
        let mut hops = 0usize;
        while cur != self.scan_in() {
            hops += 1;
            if hops > self.node_count() + 1 {
                return Err(Error::SensitizedCycle);
            }
            let prev = match self.node(cur).kind() {
                NodeKind::Mux(m) => {
                    // Prefer the currently selected input, else input 0.
                    let selected = self.mux_selected_input(cur, cfg).ok();
                    let (idx, prev) =
                        match selected.and_then(|s| m.inputs.iter().position(|&i| i == s)) {
                            Some(i) => (i, m.inputs[i]),
                            None => (0, m.inputs[0]),
                        };
                    self.require_mux_address(cur, idx, &mut req, &mut input_req)?;
                    prev
                }
                NodeKind::ScanIn => break,
                _ => self.node(cur).source().ok_or(Error::NodeUnconnected(cur))?,
            };
            cur = prev;
        }

        // Forward half: shortest path from target to scan-out over
        // successor edges (Dijkstra). Edge weights: 0 for the currently
        // selected mux input, 1 for an address change whose required
        // registers all sit on the *current* active path (writable this
        // CSU), and a heavy penalty for changes that need off-path
        // register writes first (they cost extra CSU rounds and can stall
        // the greedy planner).
        let cur_path: std::collections::HashSet<NodeId> = self
            .trace_path(cfg)
            .map(|p| p.nodes().iter().copied().collect())
            .unwrap_or_default();
        let edge_weight = |u: NodeId, v: NodeId| -> usize {
            match self.node(v).kind() {
                NodeKind::Mux(m) => {
                    if self.mux_selected_input(v, cfg).ok() == Some(u) {
                        return 0;
                    }
                    let Some(idx) = m.inputs.iter().position(|&i| i == u) else {
                        return usize::MAX;
                    };
                    let mut regs = Vec::new();
                    let mut ins = Vec::new();
                    let invertible = m.addr_bits.iter().enumerate().all(|(bit, e)| {
                        let want = (idx >> bit) & 1 == 1;
                        require(e, want, &mut regs, &mut ins).is_some()
                    });
                    if !invertible {
                        return usize::MAX;
                    }
                    if regs.iter().any(|&(owner, _, _)| owner == target) {
                        // The edge is steered by the target's own routing
                        // bits, which are only writable once the target is
                        // already on the path: circular, use only as a
                        // last resort.
                        16
                    } else if regs.iter().all(|&(owner, _, _)| cur_path.contains(&owner)) {
                        1
                    } else {
                        4
                    }
                }
                _ => 0,
            }
        };
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[target.index()] = 0;
        heap.push(std::cmp::Reverse((0usize, target)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            if u == self.scan_out() {
                break;
            }
            for &v in self.successors(u) {
                let w = edge_weight(u, v);
                if w == usize::MAX {
                    continue;
                }
                let nd = d.saturating_add(w);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some(u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if dist[self.scan_out().index()] == usize::MAX {
            return Err(Error::AccessPlanFailed {
                target,
                reason: "no structural path from segment to scan-out".into(),
            });
        }
        // Walk the forward path and record mux requirements.
        let mut v = self.scan_out();
        while v != target {
            let u = parent[v.index()].expect("path reconstructed");
            if let NodeKind::Mux(m) = self.node(v).kind() {
                let idx = m
                    .inputs
                    .iter()
                    .position(|&i| i == u)
                    .expect("parent is a mux input");
                self.require_mux_address(v, idx, &mut req, &mut input_req)?;
            }
            v = u;
        }

        Ok((req, input_req))
    }

    /// Adds the register requirements for mux `id` to select input `idx`.
    fn require_mux_address(
        &self,
        id: NodeId,
        idx: usize,
        req: &mut Vec<(NodeId, u32, bool)>,
        input_req: &mut Vec<(InputId, bool)>,
    ) -> Result<()> {
        let m = self.node(id).as_mux().expect("mux");
        for (bit_pos, expr) in m.addr_bits.iter().enumerate() {
            let want = (idx >> bit_pos) & 1 == 1;
            let mut partial = Vec::new();
            let mut partial_in = Vec::new();
            if require(expr, want, &mut partial, &mut partial_in).is_none() {
                return Err(Error::AccessPlanFailed {
                    target: id,
                    reason: format!(
                        "mux address bit {bit_pos} is not syntactically invertible: {expr}"
                    ),
                });
            }
            req.extend(partial);
            input_req.extend(partial_in);
        }
        Ok(())
    }

    /// Computes a fault-free access plan for `target` starting from `from`.
    ///
    /// The plan is a series of valid scan configurations, each reachable
    /// from the previous by one CSU operation (only registers of segments
    /// active in the previous configuration change), whose final
    /// configuration routes the active scan path through `target`.
    ///
    /// # Errors
    ///
    /// * [`Error::WrongNodeKind`] if `target` is not a segment.
    /// * [`Error::AccessPlanFailed`] if the greedy planner stalls (for such
    ///   networks use the BMC engine).
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_core::examples::fig2;
    ///
    /// let rsn = fig2();
    /// let c = rsn.find("C").expect("segment C exists");
    /// let plan = rsn.plan_access(c, &rsn.reset_config())?;
    /// // C is deselected at reset; one CSU reconfigures the path.
    /// assert_eq!(plan.csu_count(), 1);
    /// # Ok::<(), rsn_core::Error>(())
    /// ```
    pub fn plan_access(&self, target: NodeId, from: &Config) -> Result<AccessPlan> {
        if self.node(target).as_segment().is_none() {
            return Err(Error::WrongNodeKind {
                node: target,
                expected: "segment",
            });
        }

        let mut steps = Vec::new();
        let mut cur = from.clone();
        let mut latency = 0u64;

        // Iterate: re-derive requirements against the evolving config and
        // write every currently-writable wrong bit each CSU.
        for _round in 0..=self.node_count() {
            // Structural trace: generated networks are valid by
            // construction; fault-tolerant networks may carry placeholder
            // selects (SelectMode::Never), so validity is not re-checked
            // here.
            let path = self.trace_path(&cur)?;
            if path.contains(target) {
                latency += path.shift_length(self);
                return Ok(AccessPlan {
                    target,
                    steps,
                    latency,
                });
            }
            let (req, input_req) = self.path_requirements_for(target, &cur)?;
            // Primary inputs are applied directly (no CSU needed).
            let mut inputs_changed = false;
            for (i, v) in input_req {
                if cur.input(i) != v {
                    cur.set_input(i, v);
                    inputs_changed = true;
                }
            }
            if inputs_changed {
                continue;
            }
            let wrong: Vec<(NodeId, u32, bool)> = req
                .iter()
                .copied()
                .filter(|&(n, b, v)| {
                    let off = self.shadow_offset(n).map(|o| (o + b) as usize);
                    match off {
                        Some(idx) => cur.bit(idx) != v,
                        None => true,
                    }
                })
                .collect();
            if wrong.is_empty() {
                // Requirements met but target still not on path: give up.
                return Err(Error::AccessPlanFailed {
                    target,
                    reason: "requirements satisfied but target not on active path".into(),
                });
            }
            let mut next = cur.clone();
            let mut progressed = false;
            for &(n, b, v) in &wrong {
                let active = path.contains(n);
                let updis = match self.node(n).as_segment() {
                    Some(s) => self.eval(&s.update_disable, &cur)?,
                    None => true,
                };
                if active && !updis {
                    let off = self
                        .shadow_offset(n)
                        .ok_or(Error::InvalidRegisterRef { node: n, bit: b })?;
                    next.set_bit((off + b) as usize, v);
                    progressed = true;
                }
            }
            if !progressed {
                if rsn_obs::log_enabled(rsn_obs::Level::Debug) {
                    let names: Vec<String> = wrong
                        .iter()
                        .map(|&(n, b, v)| format!("{}[{b}]={}", self.node(n).name(), u8::from(v)))
                        .collect();
                    let on: Vec<&str> = path.segments(self).map(|s| self.node(s).name()).collect();
                    rsn_obs::debug!(
                        "plan stall for {}: wrong {names:?} path {on:?}",
                        self.node(target).name()
                    );
                }
                return Err(Error::AccessPlanFailed {
                    target,
                    reason: "no required control register is writable".into(),
                });
            }
            latency += path.shift_length(self);
            cur = next;
            steps.push(cur.clone());
        }

        Err(Error::AccessPlanFailed {
            target,
            reason: "planner exceeded iteration bound".into(),
        })
    }

    /// Checks fault-free accessibility: `true` iff [`Rsn::plan_access`]
    /// succeeds for `target` from the reset configuration.
    pub fn is_accessible(&self, target: NodeId) -> bool {
        self.plan_access(target, &self.reset_config()).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RsnBuilder;

    /// Two-level SIB hierarchy: SIB1 guards (SIB2 guards S).
    fn nested_sib() -> (Rsn, NodeId, NodeId, NodeId) {
        let mut b = RsnBuilder::new("nested");
        let sib1 = b.add_segment("SIB1", 1);
        b.connect(b.scan_in(), sib1);
        let sib2 = b.add_segment("SIB2", 1);
        b.connect(sib1, sib2);
        let s = b.add_segment("S", 4);
        b.connect(sib2, s);
        let m2 = b.add_mux("M2", vec![sib2, s], vec![ControlExpr::reg(sib2, 0)]);
        let m1 = b.add_mux("M1", vec![sib1, m2], vec![ControlExpr::reg(sib1, 0)]);
        b.connect(m1, b.scan_out());
        b.set_select(sib1, ControlExpr::TRUE);
        b.set_select(sib2, ControlExpr::reg(sib1, 0));
        b.set_select(s, ControlExpr::reg(sib1, 0) & ControlExpr::reg(sib2, 0));
        let rsn = b.finish().expect("valid");
        (rsn, sib1, sib2, s)
    }

    #[test]
    fn immediate_target_needs_no_csu() {
        let (rsn, sib1, _, _) = nested_sib();
        let plan = rsn.plan_access(sib1, &rsn.reset_config()).expect("plan");
        assert_eq!(plan.csu_count(), 0);
    }

    #[test]
    fn nested_segment_opens_level_by_level() {
        let (rsn, _, sib2, s) = nested_sib();
        let plan = rsn.plan_access(s, &rsn.reset_config()).expect("plan");
        // Depth 2 hierarchy: open SIB1, then SIB2.
        assert_eq!(plan.csu_count(), 2);
        let last = plan.steps.last().expect("nonempty");
        let path = rsn.active_path(last).expect("valid");
        assert!(path.contains(s));
        assert!(path.contains(sib2));
    }

    #[test]
    fn intermediate_configurations_are_valid() {
        let (rsn, _, _, s) = nested_sib();
        let plan = rsn.plan_access(s, &rsn.reset_config()).expect("plan");
        for cfg in &plan.steps {
            rsn.active_path(cfg).expect("every step must be valid");
        }
    }

    #[test]
    fn plan_transitions_respect_csu_semantics() {
        // Each step may only change registers active in the previous step.
        let (rsn, _, _, s) = nested_sib();
        let plan = rsn.plan_access(s, &rsn.reset_config()).expect("plan");
        let mut prev = rsn.reset_config();
        for cfg in &plan.steps {
            let path = rsn.active_path(&prev).expect("valid");
            for seg in rsn.segments() {
                if let Some(off) = rsn.shadow_offset(seg) {
                    let len = rsn.shadow_len(seg);
                    for bit in 0..len {
                        let idx = (off + bit) as usize;
                        if prev.bit(idx) != cfg.bit(idx) {
                            assert!(
                                path.contains(seg),
                                "changed register of inactive segment {seg}"
                            );
                        }
                    }
                }
            }
            prev = cfg.clone();
        }
    }

    #[test]
    fn latency_accumulates_shift_lengths() {
        let (rsn, _, _, s) = nested_sib();
        let plan = rsn.plan_access(s, &rsn.reset_config()).expect("plan");
        // CSU1 over path of length 1 (SIB1), CSU2 over length 2 (SIB1+SIB2),
        // final access path length 1+1+4 = 6. Total 1+2+6 = 9.
        assert_eq!(plan.latency, 9);
    }

    #[test]
    fn non_segment_target_is_rejected() {
        let (rsn, ..) = nested_sib();
        let m = rsn.find("M1").expect("mux");
        assert!(matches!(
            rsn.plan_access(m, &rsn.reset_config()),
            Err(Error::WrongNodeKind { .. })
        ));
    }

    #[test]
    fn all_segments_accessible_in_nested_network() {
        let (rsn, ..) = nested_sib();
        for seg in rsn.segments() {
            assert!(rsn.is_accessible(seg), "segment {seg} must be accessible");
        }
    }
}
