//! Scan configurations: the state of all shadow registers and primary
//! inputs.
//!
//! A [`Config`] corresponds to one element of the set `C = {0,1}^|D|` of the
//! paper's formal model, where `D = H ∪ I` is the union of shadow registers
//! and primary inputs.

use std::fmt;

use crate::expr::InputId;

/// Assignment of values to every shadow-register bit and primary input.
///
/// Bits are laid out per the owning [`Rsn`](crate::Rsn)'s shadow offsets;
/// primary inputs are stored separately.
///
/// # Example
///
/// ```
/// use rsn_core::Config;
///
/// let mut cfg = Config::zeroed(4, 1);
/// cfg.set_bit(2, true);
/// assert!(cfg.bit(2));
/// assert!(!cfg.bit(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Config {
    bits: Vec<bool>,
    inputs: Vec<bool>,
}

impl Config {
    /// All-zero configuration with `shadow_bits` register bits and
    /// `num_inputs` primary inputs.
    pub fn zeroed(shadow_bits: usize, num_inputs: u32) -> Self {
        Config {
            bits: vec![false; shadow_bits],
            inputs: vec![false; num_inputs as usize],
        }
    }

    /// Builds a configuration from explicit shadow bits (inputs zeroed).
    pub fn from_bits(bits: Vec<bool>, num_inputs: u32) -> Self {
        Config {
            bits,
            inputs: vec![false; num_inputs as usize],
        }
    }

    /// Value of shadow bit `idx` (global offset).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bit(&self, idx: usize) -> bool {
        self.bits[idx]
    }

    /// Sets shadow bit `idx` (global offset).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_bit(&mut self, idx: usize, value: bool) {
        self.bits[idx] = value;
    }

    /// Value of a primary control input.
    ///
    /// # Panics
    ///
    /// Panics if the input does not exist.
    pub fn input(&self, id: InputId) -> bool {
        self.inputs[id.0 as usize]
    }

    /// Sets a primary control input.
    ///
    /// # Panics
    ///
    /// Panics if the input does not exist.
    pub fn set_input(&mut self, id: InputId, value: bool) {
        self.inputs[id.0 as usize] = value;
    }

    /// Number of shadow bits in the configuration.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the configuration has no shadow bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Borrow the raw shadow bits.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// Hamming distance between the shadow parts of two configurations.
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different widths.
    pub fn distance(&self, other: &Config) -> usize {
        assert_eq!(self.bits.len(), other.bits.len(), "config width mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{}", if *b { '1' } else { '0' })?;
        }
        if !self.inputs.is_empty() {
            write!(f, "|")?;
            for b in &self.inputs {
                write!(f, "{}", if *b { '1' } else { '0' })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_false() {
        let cfg = Config::zeroed(8, 2);
        assert_eq!(cfg.len(), 8);
        assert_eq!(cfg.num_inputs(), 2);
        assert!(cfg.as_bits().iter().all(|b| !b));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut cfg = Config::zeroed(4, 1);
        cfg.set_bit(3, true);
        cfg.set_input(InputId(0), true);
        assert!(cfg.bit(3));
        assert!(cfg.input(InputId(0)));
        cfg.set_bit(3, false);
        assert!(!cfg.bit(3));
    }

    #[test]
    fn distance_counts_differing_bits() {
        let a = Config::from_bits(vec![true, false, true], 0);
        let b = Config::from_bits(vec![true, true, false], 0);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn display_shows_bits_and_inputs() {
        let mut cfg = Config::zeroed(3, 1);
        cfg.set_bit(1, true);
        cfg.set_input(InputId(0), true);
        assert_eq!(cfg.to_string(), "010|1");
    }

    #[test]
    #[should_panic(expected = "config width mismatch")]
    fn distance_panics_on_width_mismatch() {
        let a = Config::zeroed(2, 0);
        let b = Config::zeroed(3, 0);
        let _ = a.distance(&b);
    }
}
