//! High-level instrument access sessions.
//!
//! An [`AccessSession`] owns the dynamic state of an RSN and exposes the
//! operations a user of the scan infrastructure actually performs: *write
//! this value into that instrument register* and *read that instrument*.
//! Each operation plans the CSU series from the session's current
//! configuration ([`Rsn::plan_access`]), executes it on the bit-accurate
//! simulator, and accounts the consumed clock cycles — so consecutive
//! accesses to nearby instruments benefit from the already-open hierarchy
//! exactly as on silicon.
//!
//! # Example
//!
//! ```
//! use rsn_core::examples::sib_tree;
//! use rsn_core::session::AccessSession;
//!
//! let rsn = sib_tree(1, 2, 4);
//! let leaf = rsn.find("t00.seg").expect("leaf");
//! let mut session = AccessSession::new(&rsn);
//! session.write(leaf, &[true, false, true, true])?;
//! let (value, _cycles) = session.read(leaf)?;
//! assert_eq!(value, vec![true, false, true, true]);
//! # Ok::<(), rsn_core::Error>(())
//! ```

use crate::config::Config;
use crate::csu::SimState;
use crate::error::{Error, Result};
use crate::network::{NodeId, NodeKind, Rsn};

/// A stateful access session over one RSN.
#[derive(Debug, Clone)]
pub struct AccessSession<'a> {
    rsn: &'a Rsn,
    state: SimState,
    cycles: u64,
    accesses: u64,
}

impl<'a> AccessSession<'a> {
    /// Opens a session in the network's reset state.
    pub fn new(rsn: &'a Rsn) -> Self {
        AccessSession {
            rsn,
            state: SimState::reset(rsn),
            cycles: 0,
            accesses: 0,
        }
    }

    /// The current scan configuration.
    pub fn config(&self) -> &Config {
        &self.state.config
    }

    /// Total clock cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of completed read/write accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Applies the CSU series of a plan: each step writes the next
    /// configuration into the on-path registers.
    fn apply_steps(&mut self, steps: &[Config]) -> Result<()> {
        for step in steps {
            let path = self.rsn.trace_path(&self.state.config)?;
            let segs: Vec<NodeId> = path
                .nodes()
                .iter()
                .copied()
                .filter(|&n| matches!(self.rsn.node(n).kind(), NodeKind::Segment(_)))
                .collect();
            let total: usize = segs
                .iter()
                .map(|&s| self.state.shift_register(s).len())
                .sum();
            let mut stream = vec![false; total];
            let mut pos = 0usize;
            for &s in &segs {
                let len = self.state.shift_register(s).len();
                for i in 0..len {
                    let bit = match self.rsn.shadow_offset(s) {
                        Some(off) => step.bit((off + i as u32) as usize),
                        None => false,
                    };
                    stream[total - 1 - (pos + i)] = bit;
                }
                pos += len;
            }
            self.rsn.csu(&mut self.state, &stream, &|_| None)?;
            // Propagate planned primary-input values.
            for i in 0..step.num_inputs() {
                let id = crate::expr::InputId(i as u32);
                self.state.config.set_input(id, step.input(id));
            }
            self.cycles += total as u64 + 2;
        }
        Ok(())
    }

    /// Routes the scan path to `target` (planning from the current
    /// configuration) and returns the setup cycles spent.
    ///
    /// # Errors
    ///
    /// Propagates planning and CSU errors.
    pub fn navigate(&mut self, target: NodeId) -> Result<u64> {
        let before = self.cycles;
        let plan = self.rsn.plan_access(target, &self.state.config)?;
        self.apply_steps(&plan.steps)?;
        Ok(self.cycles - before)
    }

    /// Writes `value` into the target segment's shift and shadow
    /// registers, navigating there first. Returns the cycles spent.
    ///
    /// # Errors
    ///
    /// [`Error::WrongNodeKind`] for non-segments, planning errors, or a
    /// length mismatch reported by the simulator.
    pub fn write(&mut self, target: NodeId, value: &[bool]) -> Result<u64> {
        let before = self.cycles;
        self.navigate(target)?;
        let outcome = self.rsn.csu_write(&mut self.state, target, value)?;
        self.cycles += outcome.path.shift_length(self.rsn) + 2;
        self.accesses += 1;
        Ok(self.cycles - before)
    }

    /// Reads the target segment's current register value (as captured from
    /// the segment itself), navigating there first. Returns the bits and
    /// the cycles spent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AccessSession::write`].
    pub fn read(&mut self, target: NodeId) -> Result<(Vec<bool>, u64)> {
        let before = self.cycles;
        self.navigate(target)?;
        let shift_len = {
            let path = self.rsn.trace_path(&self.state.config)?;
            path.shift_length(self.rsn)
        };
        let current = self.state.shift_register(target).to_vec();
        let bits = self.rsn.csu_read(&mut self.state, target, &move |seg| {
            (seg == target).then(|| current.clone())
        })?;
        self.cycles += shift_len + 2;
        self.accesses += 1;
        Ok((bits, self.cycles - before))
    }

    /// Reads instrument data captured into the target segment (the
    /// `capture_data` closure supplies per-segment instrument values).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AccessSession::read`].
    pub fn read_instrument(
        &mut self,
        target: NodeId,
        capture_data: &dyn Fn(NodeId) -> Option<Vec<bool>>,
    ) -> Result<(Vec<bool>, u64)> {
        let before = self.cycles;
        self.navigate(target)?;
        let shift_len = {
            let path = self.rsn.trace_path(&self.state.config)?;
            path.shift_length(self.rsn)
        };
        let bits = self.rsn.csu_read(&mut self.state, target, capture_data)?;
        self.cycles += shift_len + 2;
        self.accesses += 1;
        Ok((bits, self.cycles - before))
    }

    /// Resolves a segment by name and writes to it.
    ///
    /// # Errors
    ///
    /// [`Error::AccessPlanFailed`] with an explanatory reason when the
    /// name does not exist, plus all [`AccessSession::write`] conditions.
    pub fn write_by_name(&mut self, name: &str, value: &[bool]) -> Result<u64> {
        let id = self.rsn.find(name).ok_or_else(|| Error::AccessPlanFailed {
            target: self.rsn.scan_out(),
            reason: format!("no segment named {name:?}"),
        })?;
        self.write(id, value)
    }

    /// Resolves a segment by name and reads it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AccessSession::write_by_name`].
    pub fn read_by_name(&mut self, name: &str) -> Result<(Vec<bool>, u64)> {
        let id = self.rsn.find(name).ok_or_else(|| Error::AccessPlanFailed {
            target: self.rsn.scan_out(),
            reason: format!("no segment named {name:?}"),
        })?;
        self.read(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{chain, sib_tree};

    #[test]
    fn write_then_read_roundtrip() {
        let rsn = sib_tree(1, 2, 4);
        let leaf = rsn.find("t00.seg").expect("leaf");
        let mut session = AccessSession::new(&rsn);
        let pattern = [true, true, false, true];
        session.write(leaf, &pattern).expect("write");
        let (value, _) = session.read(leaf).expect("read");
        assert_eq!(value, pattern.to_vec());
        assert_eq!(session.accesses(), 2);
    }

    #[test]
    fn locality_makes_second_access_cheaper() {
        // Two leaves under the same SIB: the second access skips the
        // hierarchy-opening CSU.
        let rsn = sib_tree(2, 2, 4);
        let l1 = rsn.find("t000.seg").expect("leaf 1");
        let l2 = rsn.find("t001.seg").expect("leaf 2");
        let far = rsn.find("t110.seg").expect("far leaf");

        let mut session = AccessSession::new(&rsn);
        let first = session.write(l1, &[true; 4]).expect("write 1");
        let neighbor = session.write(l2, &[true; 4]).expect("write 2");
        assert!(
            neighbor < first,
            "neighbor access ({neighbor}) must be cheaper than cold access ({first})"
        );
        // A far leaf needs new hierarchy opening again.
        let far_cost = session.write(far, &[true; 4]).expect("write far");
        assert!(far_cost > neighbor);
    }

    #[test]
    fn chain_session_has_no_setup_csus() {
        let rsn = chain(3, 4);
        let s1 = rsn.find("S1").expect("segment");
        let mut session = AccessSession::new(&rsn);
        let cycles = session
            .write(s1, &[true, false, false, true])
            .expect("write");
        // Single CSU over 12 bits + capture/update.
        assert_eq!(cycles, 14);
    }

    #[test]
    fn read_instrument_captures_external_data() {
        let rsn = sib_tree(1, 2, 3);
        let leaf = rsn.find("t10.seg").expect("leaf");
        let mut session = AccessSession::new(&rsn);
        let (bits, _) = session
            .read_instrument(leaf, &move |seg| {
                (seg == leaf).then(|| vec![true, false, true])
            })
            .expect("read");
        assert_eq!(bits, vec![true, false, true]);
    }

    #[test]
    fn by_name_helpers_resolve_and_reject() {
        let rsn = sib_tree(1, 2, 2);
        let mut session = AccessSession::new(&rsn);
        session
            .write_by_name("t00.seg", &[true, true])
            .expect("write");
        let (v, _) = session.read_by_name("t00.seg").expect("read");
        assert_eq!(v, vec![true, true]);
        assert!(session.write_by_name("nope", &[true]).is_err());
    }

    #[test]
    fn session_cycles_accumulate() {
        let rsn = sib_tree(1, 2, 4);
        let mut session = AccessSession::new(&rsn);
        assert_eq!(session.cycles(), 0);
        session
            .write_by_name("t00.seg", &[false; 4])
            .expect("write");
        let after_write = session.cycles();
        assert!(after_write > 0);
        session.read_by_name("t11.seg").expect("read");
        assert!(session.cycles() > after_write);
    }
}
