//! Ready-made example networks used in documentation, tests and the paper
//! figure reproductions.

use crate::expr::ControlExpr;
use crate::network::{NodeId, Rsn, RsnBuilder};

/// The paper's Fig. 2 network: scan segments A, B, C, D where A, B, D are on
/// the active path in the initial state and C is selected by writing bit 0
/// of segment A.
///
/// Structure: `scan_in → A → {B | C} → M → D → scan_out`, with the scan
/// multiplexer `M` addressed by `A[0]` (0 selects B, 1 selects C).
///
/// # Example
///
/// ```
/// use rsn_core::examples::fig2;
///
/// let rsn = fig2();
/// assert_eq!(rsn.segments().count(), 4);
/// assert_eq!(rsn.muxes().count(), 1);
/// ```
pub fn fig2() -> Rsn {
    let mut b = RsnBuilder::new("fig2");
    let a = b.add_segment("A", 2);
    b.connect(b.scan_in(), a);
    let seg_b = b.add_segment("B", 3);
    let seg_c = b.add_segment("C", 3);
    b.connect(a, seg_b);
    b.connect(a, seg_c);
    let m = b.add_mux("M", vec![seg_b, seg_c], vec![ControlExpr::reg(a, 0)]);
    let d = b.add_segment("D", 2);
    b.connect(m, d);
    b.connect(d, b.scan_out());
    b.set_select(a, ControlExpr::TRUE);
    b.set_select(seg_b, !ControlExpr::reg(a, 0));
    b.set_select(seg_c, ControlExpr::reg(a, 0));
    b.set_select(d, ControlExpr::TRUE);
    b.finish().expect("fig2 network is structurally valid")
}

/// A flat scan chain of `n` always-selected segments of `len` bits each.
pub fn chain(n: usize, len: u32) -> Rsn {
    let mut b = RsnBuilder::new(format!("chain{n}"));
    let mut prev = b.scan_in();
    for i in 0..n {
        let s = b.add_segment(format!("S{i}"), len);
        b.set_select(s, ControlExpr::TRUE);
        b.connect(prev, s);
        prev = s;
    }
    b.connect(prev, b.scan_out());
    b.finish().expect("chain is structurally valid")
}

/// Builds one SIB (segment-insertion bit) guarding `inner_entry ..
/// inner_exit`: a 1-bit control segment plus a bypass multiplexer.
///
/// Returns `(sib_segment, mux)`. The caller connects `sib_segment` as the
/// entry of the guarded hierarchy and uses `mux` as its exit. The guarded
/// segments' select predicates must conjoin `ControlExpr::reg(sib, 0)`.
pub fn add_sib(b: &mut RsnBuilder, name: &str, inner_exit: NodeId) -> (NodeId, NodeId) {
    let sib = b.add_segment(format!("{name}.sib"), 1);
    let mux = b.add_mux(
        format!("{name}.mux"),
        vec![sib, inner_exit],
        vec![ControlExpr::reg(sib, 0)],
    );
    (sib, mux)
}

/// A balanced SIB hierarchy: `depth` levels of SIBs with `fanout` children
/// per level; leaves are `seg_len`-bit instrument segments.
///
/// At `depth == 0` this is a flat chain of `fanout` leaf segments. The
/// total number of SIBs is `fanout + fanout² + … + fanout^depth`.
pub fn sib_tree(depth: u32, fanout: usize, seg_len: u32) -> Rsn {
    let mut b = RsnBuilder::new(format!("sib_tree_d{depth}_f{fanout}"));
    let scan_in = b.scan_in();
    let scan_out = b.scan_out();
    let exit = build_level(
        &mut b,
        "t",
        depth,
        fanout,
        seg_len,
        scan_in,
        ControlExpr::TRUE,
    );
    b.connect(exit, scan_out);
    b.finish().expect("sib tree is structurally valid")
}

/// Recursively builds one hierarchy level; returns the exit node of the
/// level. `guard` is the conjunction of all enclosing SIB bits.
fn build_level(
    b: &mut RsnBuilder,
    prefix: &str,
    depth: u32,
    fanout: usize,
    seg_len: u32,
    entry: NodeId,
    guard: ControlExpr,
) -> NodeId {
    let mut prev = entry;
    for i in 0..fanout {
        let name = format!("{prefix}{i}");
        if depth == 0 {
            let s = b.add_segment(format!("{name}.seg"), seg_len);
            b.set_select(s, guard.clone());
            b.connect(prev, s);
            prev = s;
        } else {
            // SIB guarding a sub-hierarchy.
            let sib = b.add_segment(format!("{name}.sib"), 1);
            b.set_select(sib, guard.clone());
            b.connect(prev, sib);
            let inner_guard = guard.clone() & ControlExpr::reg(sib, 0);
            let inner_exit = build_level(b, &name, depth - 1, fanout, seg_len, sib, inner_guard);
            let mux = b.add_mux(
                format!("{name}.mux"),
                vec![sib, inner_exit],
                vec![ControlExpr::reg(sib, 0)],
            );
            prev = mux;
        }
    }
    prev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_initial_path_is_a_b_d() {
        let rsn = fig2();
        let path = rsn.active_path(&rsn.reset_config()).expect("valid");
        let names: Vec<&str> = path.segments(&rsn).map(|s| rsn.node(s).name()).collect();
        assert_eq!(names, ["A", "B", "D"]);
    }

    #[test]
    fn fig2_c_selectable_via_a() {
        let rsn = fig2();
        let a = rsn.find("A").expect("A");
        let mut cfg = rsn.reset_config();
        cfg.set_bit(rsn.shadow_offset(a).expect("shadow") as usize, true);
        let path = rsn.active_path(&cfg).expect("valid");
        let names: Vec<&str> = path.segments(&rsn).map(|s| rsn.node(s).name()).collect();
        assert_eq!(names, ["A", "C", "D"]);
    }

    #[test]
    fn fig2_all_segments_accessible() {
        let rsn = fig2();
        for seg in rsn.segments() {
            assert!(
                rsn.is_accessible(seg),
                "{} inaccessible",
                rsn.node(seg).name()
            );
        }
    }

    #[test]
    fn chain_has_expected_size() {
        let rsn = chain(5, 8);
        assert_eq!(rsn.segments().count(), 5);
        assert_eq!(rsn.total_bits(), 40);
        assert_eq!(rsn.muxes().count(), 0);
    }

    #[test]
    fn sib_tree_counts() {
        // depth=1, fanout=3: 3 SIBs, 9 leaves.
        let rsn = sib_tree(1, 3, 4);
        let sibs = rsn
            .segments()
            .filter(|&s| rsn.node(s).name().ends_with(".sib"))
            .count();
        let leaves = rsn
            .segments()
            .filter(|&s| rsn.node(s).name().ends_with(".seg"))
            .count();
        assert_eq!(sibs, 3);
        assert_eq!(leaves, 9);
        assert_eq!(rsn.muxes().count(), 3);
    }

    #[test]
    fn sib_tree_reset_path_is_sibs_only() {
        let rsn = sib_tree(2, 2, 4);
        let path = rsn.active_path(&rsn.reset_config()).expect("valid");
        // Only the top-level SIBs are on the reset path.
        assert_eq!(path.segments(&rsn).count(), 2);
    }

    #[test]
    fn sib_tree_all_segments_accessible() {
        let rsn = sib_tree(2, 2, 4);
        for seg in rsn.segments() {
            assert!(
                rsn.is_accessible(seg),
                "{} inaccessible",
                rsn.node(seg).name()
            );
        }
    }

    #[test]
    fn sib_tree_leaf_access_depth() {
        let rsn = sib_tree(2, 2, 4);
        // A leaf sits behind 2 SIB levels: 2 CSUs to open.
        let leaf = rsn
            .segments()
            .find(|&s| rsn.node(s).name().ends_with(".seg"))
            .expect("leaf exists");
        let plan = rsn.plan_access(leaf, &rsn.reset_config()).expect("plan");
        assert_eq!(plan.csu_count(), 2);
    }
}
