//! Randomized validation of the simplex and branch-and-bound solvers.
//!
//! Previously written with proptest; now driven by a deterministic
//! generator so the workspace carries no external dependencies and every
//! run exercises the same cases.

use rsn_ilp::{solve_ilp, solve_lp, IlpError, LpOutcome, Problem, VarId};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Integer in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

#[test]
fn lp_optimum_is_feasible_and_not_beaten_by_samples() {
    // Bounded-variable LPs with nonnegative constraint coefficients:
    // feasible (origin) and bounded (upper bounds).
    let mut rng = Rng(0x11b_0001);
    for _case in 0..96 {
        let n = 2 + rng.below(3) as usize;
        let mut p = Problem::new();
        let vars: Vec<VarId> = (0..n)
            .map(|i| p.add_var(format!("x{i}"), rng.range(-5, 5) as f64, Some(3.0)))
            .collect();
        let n_rows = 1 + rng.below(4);
        for _ in 0..n_rows {
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, rng.range(0, 4) as f64)).collect();
            p.add_le(terms, rng.range(1, 12) as f64);
        }
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, x } => {
                assert!(p.is_feasible(&x, 1e-6), "optimum must be feasible");
                assert!((p.objective_value(&x) - objective).abs() < 1e-6);
                for _ in 0..12 {
                    let cand: Vec<f64> = (0..n).map(|_| rng.below(4) as f64).collect();
                    if p.is_feasible(&cand, 1e-9) {
                        assert!(
                            p.objective_value(&cand) >= objective - 1e-6,
                            "sampled point beats the optimum"
                        );
                    }
                }
            }
            other => panic!("must be solvable: {other:?}"),
        }
    }
}

#[test]
fn ilp_matches_exhaustive_enumeration() {
    let mut rng = Rng(0x11b_0002);
    for _case in 0..96 {
        let n = 2 + rng.below(3) as usize;
        let mut p = Problem::new();
        let vars: Vec<VarId> = (0..n)
            .map(|i| p.add_binary_var(format!("x{i}"), rng.range(-6, 6) as f64))
            .collect();
        let n_rows = 1 + rng.below(3);
        for _ in 0..n_rows {
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, rng.range(-3, 4) as f64)).collect();
            let rhs = rng.range(-2, 8) as f64;
            if rng.bool() {
                p.add_le(terms, rhs);
            } else {
                p.add_ge(terms, rhs);
            }
        }
        let mut best: Option<f64> = None;
        for m in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from((m >> j) & 1)).collect();
            if p.is_feasible(&x, 1e-9) {
                let v = p.objective_value(&x);
                best = Some(best.map_or(v, |b: f64| b.min(v)));
            }
        }
        match (solve_ilp(&p), best) {
            (Ok(sol), Some(b)) => {
                assert!(
                    (sol.objective - b).abs() < 1e-5,
                    "ilp {} vs brute {b}",
                    sol.objective
                );
                assert!(p.is_feasible(&sol.values, 1e-5));
            }
            (Err(IlpError::Infeasible), None) => {}
            (got, want) => panic!("mismatch {got:?} vs {want:?}"),
        }
    }
}

#[test]
fn lp_relaxation_bounds_the_ilp() {
    // Minimization with negative costs and packing constraints: both LP
    // and ILP are feasible; LP optimum ≤ ILP optimum.
    let mut rng = Rng(0x11b_0003);
    for _case in 0..96 {
        let n = 2 + rng.below(3) as usize;
        let mut p = Problem::new();
        let vars: Vec<VarId> = (0..n)
            .map(|i| p.add_binary_var(format!("x{i}"), rng.range(-6, 0) as f64))
            .collect();
        let n_rows = 1 + rng.below(3);
        for _ in 0..n_rows {
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, rng.range(0, 4) as f64)).collect();
            p.add_le(terms, rng.range(1, 10) as f64);
        }
        let lp = match solve_lp(&p) {
            LpOutcome::Optimal { objective, .. } => objective,
            other => panic!("lp must solve: {other:?}"),
        };
        let ilp = solve_ilp(&p).expect("feasible").objective;
        assert!(lp <= ilp + 1e-6, "lp {lp} must lower-bound ilp {ilp}");
    }
}

#[test]
fn solution_telemetry_is_populated() {
    // Every solved ILP reports at least one explored node and at least one
    // simplex iteration (the root relaxation).
    let mut p = Problem::new();
    let x = p.add_binary_var("x", 1.0);
    let y = p.add_binary_var("y", 1.0);
    p.add_ge([(x, 2.0), (y, 2.0)], 3.0);
    let sol = solve_ilp(&p).expect("solvable");
    assert!(sol.nodes >= 1, "nodes {}", sol.nodes);
    assert!(sol.simplex_iters >= 1, "iters {}", sol.simplex_iters);
    assert_eq!(sol.cut_rounds, 0, "plain solve performs no cut rounds");
}
