//! Property-based validation of the simplex and branch-and-bound solvers.

use proptest::prelude::*;
use rsn_ilp::{solve_ilp, solve_lp, IlpError, LpOutcome, Problem, VarId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lp_optimum_is_feasible_and_not_beaten_by_samples(
        costs in proptest::collection::vec(-5i32..5, 2..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0i32..4, 5), 1i32..12),
            1..5,
        ),
        samples in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 5),
            0..12,
        ),
    ) {
        // Bounded-variable LP with nonnegative constraint coefficients:
        // feasible (origin) and bounded (upper bounds).
        let n = costs.len();
        let mut p = Problem::new();
        let vars: Vec<VarId> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| p.add_var(format!("x{i}"), c as f64, Some(3.0)))
            .collect();
        for (coefs, rhs) in &rows {
            let terms: Vec<(VarId, f64)> =
                vars.iter().zip(coefs).map(|(&v, &a)| (v, a as f64)).collect();
            p.add_le(terms, *rhs as f64);
        }
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, x } => {
                prop_assert!(p.is_feasible(&x, 1e-6), "optimum must be feasible");
                prop_assert!((p.objective_value(&x) - objective).abs() < 1e-6);
                for s in &samples {
                    let cand: Vec<f64> = s.iter().take(n).map(|&v| v as f64).collect();
                    if cand.len() == n && p.is_feasible(&cand, 1e-9) {
                        prop_assert!(
                            p.objective_value(&cand) >= objective - 1e-6,
                            "sampled point beats the optimum"
                        );
                    }
                }
            }
            other => prop_assert!(false, "must be solvable: {other:?}"),
        }
    }

    #[test]
    fn ilp_matches_exhaustive_enumeration(
        costs in proptest::collection::vec(-6i32..6, 2..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(-3i32..4, 5), -2i32..8, any::<bool>()),
            1..4,
        ),
    ) {
        let n = costs.len();
        let mut p = Problem::new();
        let vars: Vec<VarId> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| p.add_binary_var(format!("x{i}"), c as f64))
            .collect();
        for (coefs, rhs, le) in &rows {
            let terms: Vec<(VarId, f64)> =
                vars.iter().zip(coefs).map(|(&v, &a)| (v, a as f64)).collect();
            if *le {
                p.add_le(terms, *rhs as f64);
            } else {
                p.add_ge(terms, *rhs as f64);
            }
        }
        let mut best: Option<f64> = None;
        for m in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from((m >> j) & 1)).collect();
            if p.is_feasible(&x, 1e-9) {
                let v = p.objective_value(&x);
                best = Some(best.map_or(v, |b: f64| b.min(v)));
            }
        }
        match (solve_ilp(&p), best) {
            (Ok(sol), Some(b)) => {
                prop_assert!((sol.objective - b).abs() < 1e-5,
                    "ilp {} vs brute {b}", sol.objective);
                prop_assert!(p.is_feasible(&sol.values, 1e-5));
            }
            (Err(IlpError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "mismatch {got:?} vs {want:?}"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_ilp(
        costs in proptest::collection::vec(-6i32..0, 2..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0i32..4, 5), 1i32..10),
            1..4,
        ),
    ) {
        // Minimization with negative costs and packing constraints: both
        // LP and ILP are feasible; LP optimum ≤ ILP optimum.
        let mut p = Problem::new();
        let vars: Vec<VarId> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| p.add_binary_var(format!("x{i}"), c as f64))
            .collect();
        for (coefs, rhs) in &rows {
            let terms: Vec<(VarId, f64)> =
                vars.iter().zip(coefs).map(|(&v, &a)| (v, a as f64)).collect();
            p.add_le(terms, *rhs as f64);
        }
        let lp = match solve_lp(&p) {
            LpOutcome::Optimal { objective, .. } => objective,
            other => return Err(TestCaseError::fail(format!("lp: {other:?}"))),
        };
        let ilp = solve_ilp(&p).expect("feasible").objective;
        prop_assert!(lp <= ilp + 1e-6, "lp {lp} must lower-bound ilp {ilp}");
    }
}
