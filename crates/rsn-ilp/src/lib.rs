//! A 0/1 integer linear programming solver.
//!
//! The connectivity-augmentation step of the fault-tolerant RSN synthesis
//! (paper Sec. III-D) is formulated as an ILP over binary edge variables
//! with vertex-degree constraints and lazily separated subtour-elimination
//! (acyclicity) constraints. The paper used a commercial solver; this crate
//! implements the same machinery from scratch:
//!
//! * [`Problem`] — model builder: variables with bounds and integrality,
//!   linear constraints, minimization objective ([`model`]).
//! * [`solve_lp`] — two-phase dense primal simplex with Bland anti-cycling
//!   fallback ([`simplex`]).
//! * [`solve_ilp`] / [`solve_ilp_with_cuts`] — best-first branch & bound
//!   over the LP relaxation, with a lazy-cut callback exactly like the
//!   "lazy constraint" interface of commercial solvers ([`branch`]).
//!
//! # Example
//!
//! ```
//! use rsn_ilp::{Problem, solve_ilp};
//!
//! // minimize x + 2y  s.t.  x + y >= 1.5, binary x, y  -> x = y = 1? No:
//! // x=1,y=1 costs 3; x=1,y=0 violates (1 < 1.5); x=0,y=1 violates.
//! // Optimum is x=1, y=1 with cost 3.
//! let mut p = Problem::new();
//! let x = p.add_binary_var("x", 1.0);
//! let y = p.add_binary_var("y", 2.0);
//! p.add_ge([(x, 1.0), (y, 1.0)], 1.5);
//! let sol = solve_ilp(&p)?;
//! assert_eq!(sol.value(x), 1.0);
//! assert_eq!(sol.value(y), 1.0);
//! # Ok::<(), rsn_ilp::IlpError>(())
//! ```

pub mod branch;
pub mod model;
pub mod simplex;

pub use branch::{
    solve_ilp, solve_ilp_under, solve_ilp_with_cuts, solve_ilp_with_cuts_under, IlpError,
    IlpSolution,
};
pub use model::{Constraint, ConstraintOp, Problem, VarId};
pub use simplex::{solve_lp, solve_lp_with_stats, LpOutcome, LpStats};
