//! ILP model building: variables, linear constraints, objective.

use std::fmt;

/// Index of a decision variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `∑ aᵢ·xᵢ ≤ rhs`
    Le,
    /// `∑ aᵢ·xᵢ ≥ rhs`
    Ge,
    /// `∑ aᵢ·xᵢ = rhs`
    Eq,
}

/// A linear constraint `∑ aᵢ·xᵢ (≤ | ≥ | =) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficient terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarDef {
    pub name: String,
    pub cost: f64,
    /// Inclusive upper bound, `None` = unbounded above. Lower bound is 0.
    pub upper: Option<f64>,
    pub integer: bool,
}

/// A minimization ILP/LP model.
///
/// All variables are non-negative; binary variables have an upper bound of
/// 1 and integrality. The objective is always minimization (negate costs to
/// maximize).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Problem {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty model.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Adds a continuous variable `x ≥ 0` with objective coefficient
    /// `cost` and optional upper bound.
    pub fn add_var(&mut self, name: impl Into<String>, cost: f64, upper: Option<f64>) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDef {
            name: name.into(),
            cost,
            upper,
            integer: false,
        });
        id
    }

    /// Adds a binary variable `x ∈ {0, 1}` with objective coefficient
    /// `cost`.
    pub fn add_binary_var(&mut self, name: impl Into<String>, cost: f64) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDef {
            name: name.into(),
            cost,
            upper: Some(1.0),
            integer: true,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective coefficient of a variable.
    pub fn cost(&self, v: VarId) -> f64 {
        self.vars[v.index()].cost
    }

    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// `true` if the variable is integral.
    pub fn is_integer(&self, v: VarId) -> bool {
        self.vars[v.index()].integer
    }

    /// Upper bound of a variable, if any.
    pub fn upper(&self, v: VarId) -> Option<f64> {
        self.vars[v.index()].upper
    }

    /// Fixes a variable to an exact value by pinching its bounds with an
    /// equality constraint.
    pub fn fix_var(&mut self, v: VarId, value: f64) {
        self.add_constraint(Constraint {
            terms: vec![(v, 1.0)],
            op: ConstraintOp::Eq,
            rhs: value,
        });
    }

    /// Adds a generic constraint.
    ///
    /// # Panics
    ///
    /// Panics if a term references an unknown variable or a non-finite
    /// coefficient/rhs.
    pub fn add_constraint(&mut self, c: Constraint) {
        for &(v, a) in &c.terms {
            assert!(v.index() < self.vars.len(), "unknown variable {v}");
            assert!(a.is_finite(), "non-finite coefficient");
        }
        assert!(c.rhs.is_finite(), "non-finite rhs");
        self.constraints.push(c);
    }

    /// Adds `∑ aᵢ·xᵢ ≤ rhs`.
    pub fn add_le(&mut self, terms: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) {
        self.add_constraint(Constraint {
            terms: terms.into_iter().collect(),
            op: ConstraintOp::Le,
            rhs,
        });
    }

    /// Adds `∑ aᵢ·xᵢ ≥ rhs`.
    pub fn add_ge(&mut self, terms: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) {
        self.add_constraint(Constraint {
            terms: terms.into_iter().collect(),
            op: ConstraintOp::Ge,
            rhs,
        });
    }

    /// Adds `∑ aᵢ·xᵢ = rhs`.
    pub fn add_eq(&mut self, terms: impl IntoIterator<Item = (VarId, f64)>, rhs: f64) {
        self.add_constraint(Constraint {
            terms: terms.into_iter().collect(),
            op: ConstraintOp::Eq,
            rhs,
        });
    }

    /// Evaluates the objective for a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.cost * xi).sum()
    }

    /// Checks whether an assignment satisfies all constraints and bounds
    /// within tolerance `eps`.
    pub fn is_feasible(&self, x: &[f64], eps: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < -eps {
                return false;
            }
            if let Some(u) = v.upper {
                if xi > u + eps {
                    return false;
                }
            }
            if v.integer && (xi - xi.round()).abs() > eps {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.index()]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + eps,
                ConstraintOp::Ge => lhs >= c.rhs - eps,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= eps,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_model() {
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, None);
        let y = p.add_binary_var("y", 2.0);
        p.add_le([(x, 1.0), (y, 3.0)], 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert!(p.is_integer(y));
        assert!(!p.is_integer(x));
        assert_eq!(p.upper(y), Some(1.0));
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.cost(y), 2.0);
    }

    #[test]
    fn objective_and_feasibility() {
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, Some(2.0));
        let y = p.add_binary_var("y", 2.0);
        p.add_ge([(x, 1.0), (y, 1.0)], 1.0);
        assert_eq!(p.objective_value(&[1.0, 1.0]), 3.0);
        assert!(p.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(!p.is_feasible(&[0.0, 0.0], 1e-9)); // violates >= 1
        assert!(!p.is_feasible(&[3.0, 0.0], 1e-9)); // above upper bound
        assert!(!p.is_feasible(&[1.0, 0.5], 1e-9)); // fractional binary
        let _ = x;
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_variable_panics() {
        let mut p = Problem::new();
        p.add_le([(VarId(3), 1.0)], 1.0);
    }

    #[test]
    fn fix_var_adds_equality() {
        let mut p = Problem::new();
        let x = p.add_binary_var("x", 1.0);
        p.fix_var(x, 1.0);
        assert!(p.is_feasible(&[1.0], 1e-9));
        assert!(!p.is_feasible(&[0.0], 1e-9));
    }
}
