//! Two-phase dense primal simplex.
//!
//! Solves the LP relaxation of a [`Problem`] (integrality ignored, upper
//! bounds materialized as constraint rows). Phase 1 minimizes the sum of
//! artificial variables to find a basic feasible solution; phase 2
//! minimizes the original objective. Dantzig pricing with a Bland-rule
//! fallback guarantees termination on degenerate instances.

#![allow(clippy::needless_range_loop)]
use crate::model::{ConstraintOp, Problem};

const EPS: f64 = 1e-9;

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal {
        /// Optimal objective value.
        objective: f64,
        /// Values of the structural variables, in [`Problem`] order.
        x: Vec<f64>,
    },
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LpOutcome {
    /// The optimal objective, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }
}

/// Work counters for one LP solve (both simplex phases combined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex iterations (pivot attempts), phases 1 and 2 together.
    pub iterations: u64,
    /// Iterations run under the Bland anti-cycling rule.
    pub bland_iterations: u64,
}

struct Tableau {
    /// Row-major coefficient matrix, `rows × cols`.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (always ≥ 0 for active rows).
    b: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Active row flags (rows can be dropped as redundant after phase 1).
    active: Vec<bool>,
    /// Column count.
    cols: usize,
    /// Columns barred from entering the basis (artificials in phase 2).
    barred: Vec<bool>,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for j in 0..self.cols {
            self.a[row][j] *= inv;
        }
        self.b[row] *= inv;
        self.a[row][col] = 1.0; // numerical exactness
        for i in 0..self.a.len() {
            if i == row || !self.active[i] {
                continue;
            }
            let f = self.a[i][col];
            if f.abs() <= EPS {
                self.a[i][col] = 0.0;
                continue;
            }
            for j in 0..self.cols {
                self.a[i][j] -= f * self.a[row][j];
            }
            self.a[i][col] = 0.0;
            self.b[i] -= f * self.b[row];
            if self.b[i].abs() < EPS {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop on the given cost vector. Returns `None` on
    /// unboundedness, otherwise the optimal objective value.
    fn optimize(&mut self, cost: &[f64], stats: &mut LpStats) -> Option<f64> {
        // Reduced-cost row, priced out for the current basis.
        let mut red: Vec<f64> = cost.to_vec();
        for i in 0..self.a.len() {
            if !self.active[i] {
                continue;
            }
            let cb = cost[self.basis[i]];
            if cb.abs() <= EPS {
                continue;
            }
            for j in 0..self.cols {
                red[j] -= cb * self.a[i][j];
            }
        }

        let mut iterations = 0usize;
        let bland_after = 50 * (self.a.len() + self.cols);
        loop {
            iterations += 1;
            stats.iterations += 1;
            let use_bland = iterations > bland_after;
            if use_bland {
                stats.bland_iterations += 1;
            }
            // Entering column.
            let mut enter = None;
            if use_bland {
                for j in 0..self.cols {
                    if !self.barred[j] && red[j] < -EPS {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for j in 0..self.cols {
                    if !self.barred[j] && red[j] < best {
                        best = red[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(col) = enter else {
                // Optimal: recompute the objective from the basis.
                let mut obj = 0.0;
                for i in 0..self.a.len() {
                    if self.active[i] {
                        obj += cost[self.basis[i]] * self.b[i];
                    }
                }
                return Some(obj);
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.a.len() {
                if !self.active[i] || self.a[i][col] <= EPS {
                    continue;
                }
                let ratio = self.b[i] / self.a[i][col];
                let better = ratio < best_ratio - EPS
                    || (use_bland
                        && (ratio - best_ratio).abs() <= EPS
                        && leave.is_none_or(|l| self.basis[i] < self.basis[l]));
                if better || leave.is_none() && ratio < best_ratio {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
            let Some(row) = leave else {
                return None; // unbounded
            };
            // Update reduced costs with the pivot.
            let piv = self.a[row][col];
            let factor = red[col] / piv;
            self.pivot(row, col);
            for j in 0..self.cols {
                red[j] -= factor * self.a[row][j] * piv;
            }
            red[col] = 0.0;
        }
    }
}

/// Solves the LP relaxation of `problem` with the two-phase primal simplex.
///
/// Integrality markers are ignored; variable upper bounds become explicit
/// rows.
///
/// # Example
///
/// ```
/// use rsn_ilp::{Problem, solve_lp, LpOutcome};
///
/// // minimize -x - y s.t. x + y <= 1: optimum -1 on the facet x + y = 1.
/// let mut p = Problem::new();
/// let x = p.add_var("x", -1.0, None);
/// let y = p.add_var("y", -1.0, None);
/// p.add_le([(x, 1.0), (y, 1.0)], 1.0);
/// match solve_lp(&p) {
///     LpOutcome::Optimal { objective, .. } => assert!((objective + 1.0).abs() < 1e-6),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn solve_lp(problem: &Problem) -> LpOutcome {
    solve_lp_with_stats(problem).0
}

/// Like [`solve_lp`], additionally returning the work counters of the
/// solve. Iteration totals are also exported into the global `rsn-obs`
/// registry as `ilp.simplex_iters`, `ilp.bland_iters` and `ilp.lp_solves`.
pub fn solve_lp_with_stats(problem: &Problem) -> (LpOutcome, LpStats) {
    let mut stats = LpStats::default();
    let outcome = solve_lp_inner(problem, &mut stats);
    rsn_obs::counter_add("ilp.lp_solves", 1);
    rsn_obs::counter_add("ilp.simplex_iters", stats.iterations);
    rsn_obs::counter_add("ilp.bland_iters", stats.bland_iterations);
    (outcome, stats)
}

fn solve_lp_inner(problem: &Problem, stats: &mut LpStats) -> LpOutcome {
    let n = problem.num_vars();

    // Collect rows: user constraints + upper-bound rows.
    struct Row {
        terms: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.num_constraints());
    for c in &problem.constraints {
        rows.push(Row {
            terms: c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
            op: c.op,
            rhs: c.rhs,
        });
    }
    for j in 0..n {
        if let Some(u) = problem.vars[j].upper {
            rows.push(Row {
                terms: vec![(j, 1.0)],
                op: ConstraintOp::Le,
                rhs: u,
            });
        }
    }

    // Normalize to b >= 0.
    for r in &mut rows {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for t in &mut r.terms {
                t.1 = -t.1;
            }
            r.op = match r.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structural | slack/surplus (one per inequality) |
    // artificials (for >= and =).
    let num_slack = rows
        .iter()
        .filter(|r| !matches!(r.op, ConstraintOp::Eq))
        .count();
    let num_art = rows
        .iter()
        .filter(|r| !matches!(r.op, ConstraintOp::Le))
        .count();
    let cols = n + num_slack + num_art;

    let mut a = vec![vec![0.0; cols]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![0usize; m];
    let mut is_artificial = vec![false; cols];

    let mut slack_next = n;
    let mut art_next = n + num_slack;
    for (i, r) in rows.iter().enumerate() {
        for &(j, coef) in &r.terms {
            a[i][j] += coef;
        }
        b[i] = r.rhs;
        match r.op {
            ConstraintOp::Le => {
                a[i][slack_next] = 1.0;
                basis[i] = slack_next;
                slack_next += 1;
            }
            ConstraintOp::Ge => {
                a[i][slack_next] = -1.0;
                slack_next += 1;
                a[i][art_next] = 1.0;
                is_artificial[art_next] = true;
                basis[i] = art_next;
                art_next += 1;
            }
            ConstraintOp::Eq => {
                a[i][art_next] = 1.0;
                is_artificial[art_next] = true;
                basis[i] = art_next;
                art_next += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        b,
        basis,
        active: vec![true; m],
        cols,
        barred: vec![false; cols],
    };

    // Phase 1.
    if num_art > 0 {
        let phase1_cost: Vec<f64> = (0..cols)
            .map(|j| if is_artificial[j] { 1.0 } else { 0.0 })
            .collect();
        match t.optimize(&phase1_cost, stats) {
            Some(v) if v > 1e-6 => return LpOutcome::Infeasible,
            Some(_) => {}
            None => return LpOutcome::Infeasible, // phase 1 is never unbounded
        }
        // Drive artificials out of the basis or drop redundant rows.
        for i in 0..m {
            if !t.active[i] || !is_artificial[t.basis[i]] {
                continue;
            }
            let mut pivoted = false;
            for j in 0..cols {
                if !is_artificial[j] && t.a[i][j].abs() > 1e-7 {
                    t.pivot(i, j);
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                t.active[i] = false; // redundant row
            }
        }
        for j in 0..cols {
            if is_artificial[j] {
                t.barred[j] = true;
            }
        }
    }

    // Phase 2.
    let mut phase2_cost = vec![0.0; cols];
    for j in 0..n {
        phase2_cost[j] = problem.vars[j].cost;
    }
    match t.optimize(&phase2_cost, stats) {
        None => LpOutcome::Unbounded,
        Some(obj) => {
            let mut x = vec![0.0; n];
            for i in 0..m {
                if t.active[i] && t.basis[i] < n {
                    x[t.basis[i]] = t.b[i];
                }
            }
            LpOutcome::Optimal { objective: obj, x }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Problem;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + y >= 2, x >= 0, y >= 0  -> objective 2.
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, None);
        let y = p.add_var("y", 1.0, None);
        p.add_ge([(x, 1.0), (y, 1.0)], 2.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, x } => {
                assert_close(objective, 2.0);
                assert_close(x.iter().sum::<f64>(), 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn maximization_via_negated_costs() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2 -> x=2, y=2, value 10.
        let mut p = Problem::new();
        let x = p.add_var("x", -3.0, Some(2.0));
        let y = p.add_var("y", -2.0, None);
        p.add_le([(x, 1.0), (y, 1.0)], 4.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, x } => {
                assert_close(objective, -10.0);
                assert_close(x[0], 2.0);
                assert_close(x[1], 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, Some(1.0));
        p.add_ge([(x, 1.0)], 2.0);
        assert_eq!(solve_lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, None);
        p.add_ge([(x, 1.0)], 0.0);
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 3, x - y = 1 -> x=2, y=1, obj 4.
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, None);
        let y = p.add_var("y", 2.0, None);
        p.add_eq([(x, 1.0), (y, 1.0)], 3.0);
        p.add_eq([(x, 1.0), (y, -1.0)], 1.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, x } => {
                assert_close(objective, 4.0);
                assert_close(x[0], 2.0);
                assert_close(x[1], 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -1  (i.e. y >= x + 1), min y -> x=0, y=1.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, None);
        let y = p.add_var("y", 1.0, None);
        p.add_le([(x, 1.0), (y, -1.0)], -1.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Duplicate equality rows produce a redundant row after phase 1.
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, None);
        let y = p.add_var("y", 1.0, None);
        p.add_eq([(x, 1.0), (y, 1.0)], 2.0);
        p.add_eq([(x, 1.0), (y, 1.0)], 2.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 2.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut p = Problem::new();
        let x = p.add_var("x", -1.0, None);
        let y = p.add_var("y", -1.0, None);
        p.add_le([(x, 1.0)], 1.0);
        p.add_le([(y, 1.0)], 1.0);
        p.add_le([(x, 1.0), (y, 1.0)], 2.0);
        p.add_le([(x, 1.0), (y, 2.0)], 3.0);
        p.add_le([(x, 2.0), (y, 1.0)], 3.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, -2.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fractional_lp_relaxation() {
        // min x+y s.t. 2x + 2y >= 3, x,y in [0,1]: LP optimum 1.5.
        let mut p = Problem::new();
        let x = p.add_binary_var("x", 1.0);
        let y = p.add_binary_var("y", 1.0);
        p.add_ge([(x, 2.0), (y, 2.0)], 3.0);
        match solve_lp(&p) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 1.5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_lps_feasible_solutions_respect_constraints() {
        // Deterministic pseudo-random LPs; verify claimed optima are
        // feasible and not improvable by sampled feasible points.
        let mut state = 0xdead_beef_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        for _ in 0..50 {
            let mut p = Problem::new();
            let n = 3;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(format!("x{i}"), next() - 5.0, Some(5.0)))
                .collect();
            for _ in 0..4 {
                let terms: Vec<_> = vars.iter().map(|&v| (v, next() - 5.0)).collect();
                p.add_le(terms, next());
            }
            if let LpOutcome::Optimal { objective, x } = solve_lp(&p) {
                assert!(p.is_feasible(&x, 1e-5), "infeasible optimum");
                assert_close(p.objective_value(&x), objective);
                // The origin is feasible for all-<= rows with rhs >= 0 only;
                // check improvement claim just on sampled feasible points.
                for _ in 0..20 {
                    let cand: Vec<f64> = (0..n).map(|_| next() / 2.0).collect();
                    if p.is_feasible(&cand, 1e-9) {
                        assert!(p.objective_value(&cand) >= objective - 1e-5);
                    }
                }
            }
        }
    }
}
