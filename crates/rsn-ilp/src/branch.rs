//! Branch & bound for 0/1 integer programs, with a lazy-cut callback.
//!
//! Nodes carry variable fixings; each node's LP relaxation is solved by the
//! two-phase simplex and the tree is explored best-first (lowest LP bound
//! first). Lazily separated constraints — the subtour-elimination cuts of
//! the RSN augmentation ILP — are added through
//! [`solve_ilp_with_cuts`], mirroring the "lazy constraints" interface of
//! commercial solvers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use rsn_budget::Budget;

use crate::model::{Constraint, Problem, VarId};
use crate::simplex::{solve_lp_with_stats, LpOutcome};

const INT_EPS: f64 = 1e-6;

/// Errors from the ILP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// The constraints admit no integral solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The node limit was exhausted before *any* integral solution was
    /// found. When an incumbent exists, exhaustion instead returns it
    /// with [`IlpSolution::proven_optimal`] `false`.
    NodeLimit,
    /// The [`Budget`] was exhausted before any integral solution was
    /// found (same incumbent rule as [`IlpError::NodeLimit`]).
    Budget,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "integer program is infeasible"),
            IlpError::Unbounded => write!(f, "integer program is unbounded"),
            IlpError::NodeLimit => write!(f, "node limit exhausted before a feasible solution"),
            IlpError::Budget => write!(f, "budget exhausted before a feasible solution"),
        }
    }
}

impl std::error::Error for IlpError {}

/// An optimal (or best-found) integral solution.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Objective value.
    pub objective: f64,
    /// Variable values (integral variables are exact 0/1 etc. after
    /// rounding within tolerance).
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored (accumulated across all
    /// re-solves when lazy cuts are in play).
    pub nodes: u64,
    /// Number of lazy-cut rounds that added at least one cut (0 for plain
    /// `solve_ilp`).
    pub cut_rounds: u32,
    /// Total simplex iterations across every LP relaxation solved.
    pub simplex_iters: u64,
    /// `true` if the search proved optimality; `false` if a node limit or
    /// budget stopped the search first, making this the best incumbent
    /// found so far (always feasible, possibly suboptimal).
    pub proven_optimal: bool,
}

impl IlpSolution {
    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of range.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// `true` if a binary variable is set (value > 0.5).
    pub fn is_set(&self, v: VarId) -> bool {
        self.values[v.index()] > 0.5
    }
}

#[derive(Debug)]
struct Node {
    bound: f64,
    fixings: Vec<(VarId, f64)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on the bound (BinaryHeap is a max-heap).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

fn lp_with_fixings(problem: &Problem, fixings: &[(VarId, f64)], iters: &mut u64) -> LpOutcome {
    let (outcome, stats) = if fixings.is_empty() {
        solve_lp_with_stats(problem)
    } else {
        let mut p = problem.clone();
        for &(v, val) in fixings {
            p.fix_var(v, val);
        }
        solve_lp_with_stats(&p)
    };
    *iters += stats.iterations;
    outcome
}

/// Solves a minimization 0/1 ILP to optimality by branch & bound.
///
/// # Errors
///
/// * [`IlpError::Infeasible`] if no integral solution exists.
/// * [`IlpError::Unbounded`] if the relaxation is unbounded.
/// * [`IlpError::NodeLimit`] after 200 000 nodes without *any* feasible
///   solution; if an incumbent exists it is returned instead, flagged
///   [`IlpSolution::proven_optimal`] `false`.
///
/// Each call exports `ilp.solves` and `ilp.nodes` into the global
/// `rsn-obs` registry (simplex iteration counters are exported by the LP
/// layer underneath).
pub fn solve_ilp(problem: &Problem) -> Result<IlpSolution, IlpError> {
    solve_ilp_under(problem, &Budget::unlimited())
}

/// Like [`solve_ilp`], bounded by a [`Budget`].
///
/// One work unit is spent per branch-and-bound node, so a work-unit
/// limit bounds the tree size and a deadline is honoured within one
/// clock stride of nodes. On exhaustion the best incumbent (if any) is
/// returned with [`IlpSolution::proven_optimal`] `false`; without an
/// incumbent the search fails with [`IlpError::Budget`]. Either way a
/// `budget.exhausted` event is counted.
///
/// # Errors
///
/// Those of [`solve_ilp`], plus [`IlpError::Budget`] when the budget ran
/// out before any feasible solution was found.
pub fn solve_ilp_under(problem: &Problem, budget: &Budget) -> Result<IlpSolution, IlpError> {
    // Chaos failpoint: injected errors / budget exhaustion cancel the
    // caller's budget so the search degrades (incumbent kept, or
    // `IlpError::Budget` and the synthesis greedy fallback) — it never
    // invents a result.
    if rsn_fail::eval("ilp.solve").is_some() {
        budget.cancel();
    }
    let _trace = rsn_obs::TraceGuard::new("ilp_solve");
    let start = std::time::Instant::now();
    let result = solve_ilp_impl(problem, 200_000, budget);
    rsn_obs::counter_add("ilp.solves", 1);
    rsn_obs::hist_record("ilp.solve_ns", start.elapsed().as_nanos() as u64);
    let trip = |budget: &Budget| {
        // An unproven result without an exhausted budget hit the
        // internal node cap instead.
        let reason = budget.exhausted().map_or("node_limit", |r| r.as_str());
        rsn_obs::record_budget_trip("ilp", reason);
    };
    if let Ok(sol) = &result {
        rsn_obs::counter_add("ilp.nodes", sol.nodes);
        // One budget unit per explored node (see above).
        rsn_obs::counter_add("budget.spent{engine=ilp}", sol.nodes);
        if !sol.proven_optimal {
            rsn_obs::counter_add("ilp.unproven", 1);
            rsn_obs::counter_add("budget.exhausted", 1);
            trip(budget);
        }
    } else if result == Err(IlpError::Budget) {
        rsn_obs::counter_add("budget.exhausted", 1);
        trip(budget);
    }
    result
}

/// Which resource stopped the tree search before an optimality proof.
enum LimitHit {
    Nodes,
    Budget,
}

fn solve_ilp_impl(
    problem: &Problem,
    node_limit: u64,
    budget: &Budget,
) -> Result<IlpSolution, IlpError> {
    let mut heap = BinaryHeap::new();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0u64;
    let mut simplex_iters = 0u64;
    let mut limit_hit: Option<LimitHit> = None;

    {
        let (outcome, stats) = solve_lp_with_stats(problem);
        simplex_iters += stats.iterations;
        match outcome {
            LpOutcome::Infeasible => return Err(IlpError::Infeasible),
            LpOutcome::Unbounded => return Err(IlpError::Unbounded),
            LpOutcome::Optimal { objective, .. } => {
                heap.push(Node {
                    bound: objective,
                    fixings: Vec::new(),
                });
            }
        }
    }

    while let Some(node) = heap.pop() {
        nodes += 1;
        if nodes > node_limit {
            limit_hit = Some(LimitHit::Nodes);
            break;
        }
        if budget.check().is_err() {
            limit_hit = Some(LimitHit::Budget);
            break;
        }
        // Drop guard so every explored node samples `ilp.node_ns`, the
        // bound-dominated `continue` paths included.
        struct NodeTimer(std::time::Instant);
        impl Drop for NodeTimer {
            fn drop(&mut self) {
                rsn_obs::hist_record("ilp.node_ns", self.0.elapsed().as_nanos() as u64);
            }
        }
        let _node_timer = NodeTimer(std::time::Instant::now());
        if let Some((best, _)) = &incumbent {
            if node.bound >= *best - INT_EPS {
                continue; // bound-dominated
            }
        }
        let outcome = lp_with_fixings(problem, &node.fixings, &mut simplex_iters);
        let (objective, x) = match outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return Err(IlpError::Unbounded),
            LpOutcome::Optimal { objective, x } => (objective, x),
        };
        if let Some((best, _)) = &incumbent {
            if objective >= *best - INT_EPS {
                continue;
            }
        }
        // Most fractional integral variable.
        let mut branch_var = None;
        let mut best_frac = INT_EPS;
        for (j, xj) in x.iter().enumerate().take(problem.num_vars()) {
            if !problem.vars[j].integer {
                continue;
            }
            let frac = (xj - xj.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(VarId(j as u32));
            }
        }
        match branch_var {
            None => {
                // Integral: new incumbent.
                let mut xi = x;
                for (j, v) in problem.vars.iter().enumerate() {
                    if v.integer {
                        xi[j] = xi[j].round();
                    }
                }
                let obj = problem.objective_value(&xi);
                let better = incumbent.as_ref().is_none_or(|(b, _)| obj < *b - INT_EPS);
                if better {
                    rsn_obs::trace_instant("ilp_incumbent");
                    incumbent = Some((obj, xi));
                }
            }
            Some(v) => {
                let floor = x[v.index()].floor();
                for val in [floor, floor + 1.0] {
                    let mut fixings = node.fixings.clone();
                    fixings.push((v, val));
                    // Cheap child bound: parent objective (LP re-solved on
                    // pop).
                    heap.push(Node {
                        bound: objective,
                        fixings,
                    });
                }
            }
        }
    }

    match (incumbent, limit_hit) {
        (Some((objective, values)), limit) => Ok(IlpSolution {
            objective,
            values,
            nodes,
            cut_rounds: 0,
            simplex_iters,
            proven_optimal: limit.is_none(),
        }),
        (None, None) => Err(IlpError::Infeasible),
        (None, Some(LimitHit::Nodes)) => Err(IlpError::NodeLimit),
        (None, Some(LimitHit::Budget)) => Err(IlpError::Budget),
    }
}

/// Solves an ILP with lazily separated constraints.
///
/// After each optimal integral solution, `separate` is called with the
/// solution vector; if it returns violated constraints they are added to
/// the model and the ILP is re-solved. Terminates when no cuts are
/// returned.
///
/// This is the mechanism used for the exponential family of
/// subtour-elimination constraints in the RSN augmentation ILP (paper
/// eq. 4): only cuts violated by an actual solution are materialized.
///
/// # Errors
///
/// Same as [`solve_ilp`], plus termination after 1000 cut rounds is
/// reported as [`IlpError::NodeLimit`].
pub fn solve_ilp_with_cuts(
    problem: &Problem,
    separate: impl FnMut(&[f64]) -> Vec<Constraint>,
) -> Result<IlpSolution, IlpError> {
    solve_ilp_with_cuts_under(problem, separate, &Budget::unlimited())
}

/// Like [`solve_ilp_with_cuts`], bounded by a [`Budget`] shared across
/// all cut rounds.
///
/// An incumbent returned under exhaustion satisfies every *separated*
/// constraint: if the budget trips mid-round and the unproven incumbent
/// still violates lazy cuts, it is unusable for the full model and the
/// call fails with [`IlpError::Budget`] instead of returning it.
///
/// # Errors
///
/// Those of [`solve_ilp_with_cuts`], plus [`IlpError::Budget`] when the
/// budget ran out before any fully lazily-feasible solution was found.
pub fn solve_ilp_with_cuts_under(
    problem: &Problem,
    mut separate: impl FnMut(&[f64]) -> Vec<Constraint>,
    budget: &Budget,
) -> Result<IlpSolution, IlpError> {
    let mut p = problem.clone();
    // Telemetry accumulated across re-solves: the caller sees total work,
    // not just the final round's.
    let mut total_nodes = 0u64;
    let mut total_iters = 0u64;
    for round in 0..1000u32 {
        let mut sol = solve_ilp_under(&p, budget)?;
        total_nodes += sol.nodes;
        total_iters += sol.simplex_iters;
        let cuts = separate(&sol.values);
        if cuts.is_empty() {
            sol.cut_rounds = round;
            sol.nodes = total_nodes;
            sol.simplex_iters = total_iters;
            rsn_obs::counter_add("ilp.cut_rounds", u64::from(round));
            return Ok(sol);
        }
        if !sol.proven_optimal {
            // Budget ran out and the incumbent still violates lazy
            // constraints: nothing feasible to hand back.
            return Err(IlpError::Budget);
        }
        rsn_obs::counter_add("ilp.cuts_added", cuts.len() as u64);
        for c in cuts {
            p.add_constraint(c);
        }
    }
    Err(IlpError::NodeLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Problem};

    #[test]
    fn knapsack_is_solved_optimally() {
        // max 10x0 + 13x1 + 7x2 s.t. 3x0 + 4x1 + 2x2 <= 6 (min of negation)
        // Optimum: x0 + x1 (7) weight ... let's enumerate: {x0,x1}: w=7 >6.
        // {x1,x2}: w=6, value 20. {x0,x2}: w=5, value 17. -> best 20.
        let mut p = Problem::new();
        let x0 = p.add_binary_var("x0", -10.0);
        let x1 = p.add_binary_var("x1", -13.0);
        let x2 = p.add_binary_var("x2", -7.0);
        p.add_le([(x0, 3.0), (x1, 4.0), (x2, 2.0)], 6.0);
        let sol = solve_ilp(&p).expect("solvable");
        assert!((sol.objective + 20.0).abs() < 1e-6);
        assert!(!sol.is_set(x0));
        assert!(sol.is_set(x1));
        assert!(sol.is_set(x2));
    }

    #[test]
    fn vertex_cover_on_a_triangle() {
        // Minimum vertex cover of a triangle needs 2 vertices.
        let mut p = Problem::new();
        let v: Vec<VarId> = (0..3)
            .map(|i| p.add_binary_var(format!("v{i}"), 1.0))
            .collect();
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            p.add_ge([(v[a], 1.0), (v[b], 1.0)], 1.0);
        }
        let sol = solve_ilp(&p).expect("solvable");
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp_is_reported() {
        let mut p = Problem::new();
        let x = p.add_binary_var("x", 1.0);
        let y = p.add_binary_var("y", 1.0);
        p.add_ge([(x, 1.0), (y, 1.0)], 3.0); // max achievable is 2
        assert_eq!(solve_ilp(&p), Err(IlpError::Infeasible));
    }

    #[test]
    fn integrality_gap_is_closed_by_branching() {
        // LP relaxation is fractional (1.5); ILP optimum is 2.
        let mut p = Problem::new();
        let x = p.add_binary_var("x", 1.0);
        let y = p.add_binary_var("y", 1.0);
        p.add_ge([(x, 2.0), (y, 2.0)], 3.0);
        let sol = solve_ilp(&p).expect("solvable");
        assert!((sol.objective - 2.0).abs() < 1e-6);
        assert!(sol.is_set(x) && sol.is_set(y));
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y + x, binary y, continuous x; x + 2y >= 2.5.
        // y=1 -> x >= 0.5, cost 1.5. y=0 -> x >= 2.5, cost 2.5.
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, None);
        let y = p.add_binary_var("y", 1.0);
        p.add_ge([(x, 1.0), (y, 2.0)], 2.5);
        let sol = solve_ilp(&p).expect("solvable");
        assert!((sol.objective - 1.5).abs() < 1e-6, "{}", sol.objective);
        assert!(sol.is_set(y));
        assert!((sol.value(x) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lazy_cuts_are_separated() {
        // min -x0 - x1 - x2 with xi binary; lazily forbid "all three set"
        // via the cut x0 + x1 + x2 <= 2.
        let mut p = Problem::new();
        let v: Vec<VarId> = (0..3)
            .map(|i| p.add_binary_var(format!("x{i}"), -1.0))
            .collect();
        let vs = v.clone();
        let sol = solve_ilp_with_cuts(&p, move |x| {
            let total: f64 = vs.iter().map(|&v| x[v.index()]).sum();
            if total > 2.5 {
                vec![Constraint {
                    terms: vs.iter().map(|&v| (v, 1.0)).collect(),
                    op: ConstraintOp::Le,
                    rhs: 2.0,
                }]
            } else {
                Vec::new()
            }
        })
        .expect("solvable");
        assert!((sol.objective + 2.0).abs() < 1e-6);
        assert_eq!(sol.cut_rounds, 1);
        let set = v.iter().filter(|&&x| sol.is_set(x)).count();
        assert_eq!(set, 2);
    }

    /// A knapsack with a known optimum of -20, feasible at every node
    /// depth (used for limit-exhaustion regressions).
    fn knapsack() -> (Problem, f64) {
        let mut p = Problem::new();
        let x0 = p.add_binary_var("x0", -10.0);
        let x1 = p.add_binary_var("x1", -13.0);
        let x2 = p.add_binary_var("x2", -7.0);
        p.add_le([(x0, 3.0), (x1, 4.0), (x2, 2.0)], 6.0);
        (p, -20.0)
    }

    #[test]
    fn node_limit_preserves_feasible_incumbent() {
        // Regression: a tripped node limit used to discard the incumbent
        // and surface as Err(NodeLimit) even for feasible problems. Walk
        // the limit up from 1: every outcome must be either a NodeLimit
        // error (no incumbent yet) or a *feasible* solution, and once the
        // limit stops binding the solution must be proven optimal.
        let (p, optimum) = knapsack();
        let unconstrained = solve_ilp(&p).expect("solvable");
        assert!(unconstrained.proven_optimal);
        let mut saw_unproven = false;
        for limit in 1..=unconstrained.nodes + 1 {
            match solve_ilp_impl(&p, limit, &Budget::unlimited()) {
                Ok(sol) => {
                    assert!(
                        p.is_feasible(&sol.values, 1e-6),
                        "limit {limit}: infeasible incumbent returned"
                    );
                    assert!(sol.objective >= optimum - 1e-6);
                    if sol.proven_optimal {
                        assert!((sol.objective - optimum).abs() < 1e-6);
                    } else {
                        saw_unproven = true;
                    }
                }
                Err(IlpError::NodeLimit) => {} // stopped before any incumbent
                Err(e) => panic!("limit {limit}: unexpected {e:?}"),
            }
        }
        assert!(saw_unproven, "no limit produced an unproven incumbent");
    }

    #[test]
    fn budget_exhaustion_returns_incumbent_or_budget_error() {
        let (p, optimum) = knapsack();
        for limit in 0..=40u64 {
            let budget = Budget::unlimited().with_work_limit(limit);
            match solve_ilp_under(&p, &budget) {
                Ok(sol) => {
                    assert!(p.is_feasible(&sol.values, 1e-6));
                    if budget.exhausted().is_some() {
                        assert!(!sol.proven_optimal);
                    } else {
                        assert!(sol.proven_optimal);
                        assert!((sol.objective - optimum).abs() < 1e-6);
                    }
                }
                Err(IlpError::Budget) => {
                    assert!(budget.exhausted().is_some());
                }
                Err(e) => panic!("budget {limit}: unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn zero_budget_fails_without_incumbent() {
        let (p, _) = knapsack();
        let budget = Budget::unlimited().with_work_limit(0);
        assert_eq!(solve_ilp_under(&p, &budget), Err(IlpError::Budget));
    }

    #[test]
    fn budgeted_cuts_never_return_lazily_infeasible_solutions() {
        // Same model as `lazy_cuts_are_separated`, under a budget tight
        // enough to trip in the first round on some runs: the result is
        // either Err(Budget) or a solution respecting the lazy cut.
        for limit in 0..=40u64 {
            let mut p = Problem::new();
            let v: Vec<VarId> = (0..3)
                .map(|i| p.add_binary_var(format!("x{i}"), -1.0))
                .collect();
            let vs = v.clone();
            let budget = Budget::unlimited().with_work_limit(limit);
            let result = solve_ilp_with_cuts_under(
                &p,
                move |x| {
                    let total: f64 = vs.iter().map(|&v| x[v.index()]).sum();
                    if total > 2.5 {
                        vec![Constraint {
                            terms: vs.iter().map(|&v| (v, 1.0)).collect(),
                            op: ConstraintOp::Le,
                            rhs: 2.0,
                        }]
                    } else {
                        Vec::new()
                    }
                },
                &budget,
            );
            match result {
                Ok(sol) => {
                    let set = v.iter().filter(|&&x| sol.is_set(x)).count();
                    assert!(set <= 2, "limit {limit}: lazy cut violated");
                }
                Err(IlpError::Budget) => {}
                Err(e) => panic!("limit {limit}: unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn exhaustive_cross_check_on_random_binary_ilps() {
        let mut state = 0xabcd_ef01_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _round in 0..40 {
            let n = 3 + (next() % 3) as usize; // 3..5 binaries
            let mut p = Problem::new();
            let vars: Vec<VarId> = (0..n)
                .map(|i| p.add_binary_var(format!("x{i}"), (next() % 21) as f64 - 10.0))
                .collect();
            for _ in 0..3 {
                let terms: Vec<(VarId, f64)> = vars
                    .iter()
                    .map(|&v| (v, (next() % 11) as f64 - 5.0))
                    .collect();
                let rhs = (next() % 11) as f64 - 2.0;
                if next() % 2 == 0 {
                    p.add_le(terms, rhs);
                } else {
                    p.add_ge(terms, rhs);
                }
            }
            // Brute force.
            let mut best: Option<f64> = None;
            for m in 0u32..(1 << n) {
                let x: Vec<f64> = (0..n).map(|j| f64::from((m >> j) & 1)).collect();
                if p.is_feasible(&x, 1e-9) {
                    let obj = p.objective_value(&x);
                    best = Some(best.map_or(obj, |b: f64| b.min(obj)));
                }
            }
            match (solve_ilp(&p), best) {
                (Ok(sol), Some(b)) => {
                    assert!(
                        (sol.objective - b).abs() < 1e-5,
                        "objective {} != brute {b}",
                        sol.objective
                    );
                    assert!(p.is_feasible(&sol.values, 1e-5));
                }
                (Err(IlpError::Infeasible), None) => {}
                (got, want) => panic!("mismatch: {got:?} vs brute {want:?}"),
            }
        }
    }
}
