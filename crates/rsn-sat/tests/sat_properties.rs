//! Property-based validation of the CDCL solver against brute force.

use proptest::prelude::*;
use rsn_sat::{dimacs::Dimacs, CnfBuilder, Lit, Solver, Var};

fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<u32> {
    (0u32..(1 << num_vars)).find(|&m| {
        clauses.iter().all(|c| {
            c.iter()
                .any(|&l| (((m >> l.var().0) & 1) == 1) == l.polarity())
        })
    })
}

fn clause_strategy(num_vars: u32) -> impl Strategy<Value = Vec<Lit>> {
    proptest::collection::vec((0..num_vars, any::<bool>()), 1..5).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, pos)| Lit::with_polarity(Var(v), pos))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_agrees_with_brute_force(
        clauses in proptest::collection::vec(clause_strategy(8), 1..40)
    ) {
        let mut s = Solver::new();
        for _ in 0..8 {
            s.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            if !s.add_clause(c.iter().copied()) {
                trivially_unsat = true;
            }
        }
        let expected = brute_force(8, &clauses).is_some();
        let got = if trivially_unsat { false } else { s.solve() };
        prop_assert_eq!(got, expected);
        if got {
            for c in &clauses {
                prop_assert!(c.iter().any(|&l| s.lit_value_model(l) == Some(true)));
            }
        }
    }

    #[test]
    fn assumptions_partition_the_search_space(
        clauses in proptest::collection::vec(clause_strategy(6), 1..20),
        pivot in 0u32..6,
    ) {
        // SAT(F) == SAT(F ∧ x) ∨ SAT(F ∧ ¬x) for any pivot variable.
        let mut s = Solver::new();
        for _ in 0..6 {
            s.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            if !s.add_clause(c.iter().copied()) {
                trivially_unsat = true;
            }
        }
        if trivially_unsat {
            return Ok(());
        }
        let v = Var(pivot);
        let pos = s.solve_with(&[Lit::pos(v)]);
        let neg = s.solve_with(&[Lit::neg(v)]);
        let plain = s.solve();
        prop_assert_eq!(plain, pos || neg);
    }

    #[test]
    fn dimacs_roundtrip_preserves_satisfiability(
        clauses in proptest::collection::vec(clause_strategy(6), 1..20)
    ) {
        let d = Dimacs { num_vars: 6, clauses: clauses.clone() };
        let text = d.to_dimacs();
        let d2 = Dimacs::parse(&text).expect("reparse");
        let mut s1 = d.to_solver();
        let mut s2 = d2.to_solver();
        prop_assert_eq!(s1.solve(), s2.solve());
    }

    #[test]
    fn tseitin_gates_respect_semantics(
        inputs in proptest::collection::vec(any::<bool>(), 3..6)
    ) {
        let mut cnf = CnfBuilder::new();
        let lits: Vec<Lit> = inputs.iter().map(|_| cnf.new_lit()).collect();
        let and = cnf.and(lits.iter().copied());
        let or = cnf.or(lits.iter().copied());
        for (l, &v) in lits.iter().zip(&inputs) {
            cnf.assert_lit(if v { *l } else { !*l });
        }
        prop_assert!(cnf.solver_mut().solve());
        let and_v = cnf.solver_mut().lit_value_model(and).expect("assigned");
        let or_v = cnf.solver_mut().lit_value_model(or).expect("assigned");
        prop_assert_eq!(and_v, inputs.iter().all(|&b| b));
        prop_assert_eq!(or_v, inputs.iter().any(|&b| b));
    }
}
