//! Randomized validation of the CDCL solver against brute force.
//!
//! Previously written with proptest; now driven by a deterministic
//! xorshift-style generator so the workspace carries no external
//! dependencies and every run exercises the same cases.

use rsn_sat::{dimacs::Dimacs, CnfBuilder, Lit, Solver, Var};

/// Deterministic splitmix64-style generator for reproducible cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn random_clauses(rng: &mut Rng, num_vars: u32, max_clauses: u64) -> Vec<Vec<Lit>> {
    let nc = 1 + rng.below(max_clauses) as usize;
    (0..nc)
        .map(|_| {
            let len = 1 + rng.below(4) as usize;
            (0..len)
                .map(|_| Lit::with_polarity(Var(rng.below(num_vars as u64) as u32), rng.bool()))
                .collect()
        })
        .collect()
}

fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<u32> {
    (0u32..(1 << num_vars)).find(|&m| {
        clauses.iter().all(|c| {
            c.iter()
                .any(|&l| (((m >> l.var().0) & 1) == 1) == l.polarity())
        })
    })
}

#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = Rng(0x5eed_0001);
    for _case in 0..128 {
        let clauses = random_clauses(&mut rng, 8, 40);
        let mut s = Solver::new();
        for _ in 0..8 {
            s.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            if !s.add_clause(c.iter().copied()) {
                trivially_unsat = true;
            }
        }
        let expected = brute_force(8, &clauses).is_some();
        let got = if trivially_unsat { false } else { s.solve() };
        assert_eq!(got, expected, "clauses: {clauses:?}");
        if got {
            for c in &clauses {
                assert!(
                    c.iter().any(|&l| s.lit_value_model(l) == Some(true)),
                    "model does not satisfy {c:?}"
                );
            }
        }
    }
}

#[test]
fn assumptions_partition_the_search_space() {
    // SAT(F) == SAT(F ∧ x) ∨ SAT(F ∧ ¬x) for any pivot variable.
    let mut rng = Rng(0x5eed_0002);
    for _case in 0..128 {
        let clauses = random_clauses(&mut rng, 6, 20);
        let pivot = rng.below(6) as u32;
        let mut s = Solver::new();
        for _ in 0..6 {
            s.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            if !s.add_clause(c.iter().copied()) {
                trivially_unsat = true;
            }
        }
        if trivially_unsat {
            continue;
        }
        let v = Var(pivot);
        let pos = s.solve_with(&[Lit::pos(v)]);
        let neg = s.solve_with(&[Lit::neg(v)]);
        let plain = s.solve();
        assert_eq!(plain, pos || neg, "pivot {pivot} clauses {clauses:?}");
    }
}

#[test]
fn extracted_cores_are_valid_and_shrunk_cores_are_minimal() {
    // For every unsatisfiable solve-with-assumptions: the extracted core
    // is a subset of the assumptions, re-solving with only the core is
    // still unsatisfiable, and after deletion-based minimization
    // dropping any single member makes the query satisfiable.
    let mut rng = Rng(0x5eed_0005);
    let budget = rsn_budget::Budget::unlimited();
    let mut unsat_cases = 0;
    for _case in 0..256 {
        let clauses = random_clauses(&mut rng, 6, 24);
        let mut s = Solver::new();
        for _ in 0..6 {
            s.new_var();
        }
        let mut trivially_unsat = false;
        for c in &clauses {
            if !s.add_clause(c.iter().copied()) {
                trivially_unsat = true;
            }
        }
        if trivially_unsat {
            continue;
        }
        let n_assum = 1 + rng.below(6) as usize;
        let assumptions: Vec<Lit> = (0..n_assum)
            .map(|_| Lit::with_polarity(Var(rng.below(6) as u32), rng.bool()))
            .collect();
        let Some(core) = s.solve_with_core(&assumptions) else {
            continue; // satisfiable under these assumptions
        };
        unsat_cases += 1;
        assert!(
            core.iter().all(|l| assumptions.contains(l)),
            "core {core:?} is not a subset of assumptions {assumptions:?}"
        );
        assert!(
            !s.solve_with(&core),
            "core {core:?} does not reproduce unsatisfiability ({clauses:?})"
        );
        let (shrunk, minimal) = s.shrink_core_under(&core, &budget);
        assert!(minimal, "unlimited budget must finish the pass");
        assert!(
            !s.solve_with(&shrunk),
            "shrunk core {shrunk:?} is no longer a core"
        );
        assert!(shrunk.len() <= core.len());
        for drop in 0..shrunk.len() {
            let without: Vec<Lit> = shrunk
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, &l)| l)
                .collect();
            assert!(
                s.solve_with(&without),
                "member {:?} of shrunk core {shrunk:?} is redundant",
                shrunk[drop]
            );
        }
    }
    assert!(unsat_cases >= 32, "seed produced too few unsat cases");
}

#[test]
fn core_shrinking_respects_budget() {
    // A zero-work budget degrades to the unminimized (but still valid)
    // core instead of hanging.
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
    // x0 ∧ x1 ∧ x2 ∧ x3 assumed, with clause ¬x1 ∨ ¬x2 — core {x1, x2}.
    s.add_clause([Lit::neg(vars[1]), Lit::neg(vars[2])]);
    let assumptions: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
    let core = s.solve_with_core(&assumptions).expect("unsat");
    let exhausted = rsn_budget::Budget::unlimited().with_work_limit(0);
    let _ = exhausted.check(); // trip it
    let (kept, minimal) = s.shrink_core_under(&core, &exhausted);
    assert_eq!(kept, core, "exhausted budget must return the input core");
    assert!(!minimal);
    // With a real budget the core shrinks to exactly {x1, x2}.
    let (shrunk, minimal) = s.shrink_core_under(&core, &rsn_budget::Budget::unlimited());
    assert!(minimal);
    let mut got = shrunk.clone();
    got.sort_unstable();
    assert_eq!(got, vec![Lit::pos(vars[1]), Lit::pos(vars[2])]);
}

#[test]
fn dimacs_roundtrip_preserves_satisfiability() {
    let mut rng = Rng(0x5eed_0003);
    for _case in 0..64 {
        let clauses = random_clauses(&mut rng, 6, 20);
        let d = Dimacs {
            num_vars: 6,
            clauses: clauses.clone(),
        };
        let text = d.to_dimacs();
        let d2 = Dimacs::parse(&text).expect("reparse");
        let mut s1 = d.to_solver();
        let mut s2 = d2.to_solver();
        assert_eq!(s1.solve(), s2.solve(), "clauses {clauses:?}");
    }
}

/// Random 3-SAT with three distinct variables per clause. The
/// clause/variable ratio swings below and above the phase transition,
/// so the generated suite contains both satisfiable and unsatisfiable
/// instances.
fn random_3sat(rng: &mut Rng, num_vars: u32, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            let mut vars: Vec<u32> = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.below(num_vars as u64) as u32;
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| Lit::with_polarity(Var(v), rng.bool()))
                .collect()
        })
        .collect()
}

#[test]
fn dimacs_emit_parse_emit_is_a_fixpoint() {
    // One emit→parse trip must be enough: re-emitting the parsed
    // instance reproduces the exact text, so DIMACS files written by
    // this crate are stable under round-tripping.
    let mut rng = Rng(0x5eed_0006);
    for case in 0..64 {
        let num_vars = 3 + (case % 8) as u32;
        let clauses = random_3sat(&mut rng, num_vars, 4 + case % 32);
        let d = Dimacs {
            num_vars: num_vars as usize,
            clauses,
        };
        let text = d.to_dimacs();
        let reparsed = Dimacs::parse(&text).expect("emitted DIMACS must parse");
        assert_eq!(reparsed.num_vars, d.num_vars);
        assert_eq!(reparsed.clauses, d.clauses);
        assert_eq!(reparsed.to_dimacs(), text, "emit∘parse is not a fixpoint");
    }
}

#[test]
fn portfolio_agrees_with_serial_on_parsed_3sat() {
    // Every parsed instance solves to the same verdict serially and
    // under a 4-worker portfolio, and a 1-worker portfolio is
    // bit-identical to the serial loop (same verdict, same statistics).
    let budget = rsn_budget::Budget::unlimited();
    let mut rng = Rng(0x5eed_0007);
    let (mut sat_seen, mut unsat_seen) = (0u32, 0u32);
    for case in 0..48usize {
        let num_vars = 8;
        // Sweep the clause count across the 3-SAT phase transition
        // (~4.26 · n) so both verdicts occur.
        let num_clauses = 16 + case;
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let d = Dimacs {
            num_vars: num_vars as usize,
            clauses,
        };
        let text = d.to_dimacs();
        let parsed = Dimacs::parse(&text).expect("parse");

        let mut serial = parsed.to_solver();
        let mut one = serial.clone();
        let mut wide = serial.clone();
        let serial_out = serial.solve_under(&budget);
        let one_out = one.solve_portfolio_under(&budget, 1);
        let wide_out = wide.solve_portfolio_under(&budget, 4);
        assert_eq!(serial_out, one_out, "case {case}: 1-thread diverged");
        assert_eq!(
            serial.stats(),
            one.stats(),
            "case {case}: threads==1 must replay the serial search exactly"
        );
        assert_eq!(
            serial_out, wide_out,
            "case {case}: portfolio verdict flipped"
        );
        match serial_out {
            rsn_sat::SolveOutcome::Sat => sat_seen += 1,
            rsn_sat::SolveOutcome::Unsat => unsat_seen += 1,
            rsn_sat::SolveOutcome::Unknown { .. } => {
                panic!("case {case}: unlimited budget cannot exhaust")
            }
        }
    }
    assert!(sat_seen >= 8, "suite too easy: only {sat_seen} sat cases");
    assert!(
        unsat_seen >= 8,
        "suite too easy: only {unsat_seen} unsat cases"
    );
}

#[test]
fn tseitin_gates_respect_semantics() {
    let mut rng = Rng(0x5eed_0004);
    for _case in 0..64 {
        let n = 3 + rng.below(3) as usize;
        let inputs: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
        let mut cnf = CnfBuilder::new();
        let lits: Vec<Lit> = inputs.iter().map(|_| cnf.new_lit()).collect();
        let and = cnf.and(lits.iter().copied());
        let or = cnf.or(lits.iter().copied());
        for (l, &v) in lits.iter().zip(&inputs) {
            cnf.assert_lit(if v { *l } else { !*l });
        }
        assert!(cnf.solver_mut().solve());
        let and_v = cnf.solver_mut().lit_value_model(and).expect("assigned");
        let or_v = cnf.solver_mut().lit_value_model(or).expect("assigned");
        assert_eq!(and_v, inputs.iter().all(|&b| b), "inputs {inputs:?}");
        assert_eq!(or_v, inputs.iter().any(|&b| b), "inputs {inputs:?}");
    }
}
