//! Bounded variable elimination (NiVER) for the portfolio escalation
//! path.
//!
//! BMC-style instances are dominated by Tseitin definition variables:
//! the hardest p93791 miter carries ~560k live variables of which the
//! overwhelming majority occur in only 4–5 short clauses (gate
//! definitions and chain buffers). Resolving such a variable out —
//! replacing its positive/negative occurrence lists by their pairwise
//! resolvents — keeps the clause count non-increasing (the NiVER rule,
//! Subbarayan & Pradhan 2004) while deleting the variable, so a few
//! passes collapse buffer chains and shrink the instance several-fold.
//! Unit propagation, conflict analysis and clause management all scale
//! with live instance size, so the reduced instance solves far faster
//! than the original.
//!
//! Soundness contract:
//!
//! * Elimination by clause distribution preserves equisatisfiability,
//!   and any model of the reduced formula extends to a model of the
//!   original by processing the elimination stack in reverse (each
//!   eliminated variable is set to satisfy its deleted occurrences).
//! * **Frozen variables are never eliminated.** The caller freezes the
//!   assumption variables, so an Unsat core of the reduced instance
//!   (a subset of the assumption literals) is a valid core of the
//!   original.
//! * Reconstructed models are *validated* against the untouched caller
//!   solver's clause database ([`Elimination::reconstruct`] extends the
//!   assignment; `Solver::check_model` and the replay in
//!   `Solver::adopt_model` both check every original clause), so an
//!   elimination bug can never surface as a wrong Sat verdict —
//!   validation failure falls back to the unreduced search.

use rsn_budget::Budget;

use crate::lit::{Lit, Var};

/// Hard cap on resolvent length: longer resolvents would slow
/// propagation on exactly the instances elimination is meant to help.
const MAX_RESOLVENT_LEN: usize = 12;

/// Variables occurring in more clauses than this are never candidates —
/// the pairwise resolvent scan is quadratic in the occurrence count.
const MAX_OCCURRENCES: usize = 10;

/// One eliminated variable: the variable and the deleted clauses that
/// mentioned it, kept for model reconstruction.
struct Elimstep {
    var: Var,
    clauses: Vec<Vec<Lit>>,
}

/// Result of an elimination pass over a clause list.
pub(crate) struct Elimination {
    /// The reduced clause list (original variable numbering).
    pub clauses: Vec<Vec<Lit>>,
    /// Reverse-order reconstruction script.
    steps: Vec<Elimstep>,
    /// Number of variables resolved out.
    pub eliminated: usize,
    /// `true` at the index of every eliminated variable.
    eliminated_mark: Vec<bool>,
}

/// Runs bounded variable elimination to fixpoint over `clauses`.
/// `num_vars` sizes the occurrence tables; literals in `frozen` (by
/// variable) are never eliminated. Tautological input clauses are
/// dropped up front. An exhausted budget stops the pass early — a
/// partial elimination is still an equisatisfiable reduction, just a
/// smaller one.
pub(crate) fn eliminate(
    clauses: Vec<Vec<Lit>>,
    num_vars: usize,
    frozen: &[Var],
    budget: &Budget,
) -> Elimination {
    let mut frozen_mark = vec![false; num_vars];
    for v in frozen {
        frozen_mark[v.index()] = true;
    }

    // Live clause store: `None` = deleted. Occurrence lists hold clause
    // indices; entries made stale by deletion are compacted away when
    // their variable is next examined.
    let mut store: Vec<Option<Vec<Lit>>> = Vec::with_capacity(clauses.len());
    for c in clauses {
        if is_tautology(&c) {
            continue;
        }
        store.push(Some(c));
    }
    let mut pos: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
    let mut neg: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
    for (i, c) in store.iter().enumerate() {
        let c = c.as_ref().expect("live on build");
        for l in c {
            let side = if l.is_neg() { &mut neg } else { &mut pos };
            side[l.var().index()].push(i as u32);
        }
    }

    let mut queue: Vec<u32> = (0..num_vars as u32).collect();
    let mut queued = vec![true; num_vars];
    let mut steps: Vec<Elimstep> = Vec::new();
    let mut eliminated_mark = vec![false; num_vars];
    let mut head = 0usize;

    while head < queue.len() {
        if head.is_multiple_of(4096) && budget.poll().is_some() {
            break;
        }
        let vi = queue[head] as usize;
        head += 1;
        queued[vi] = false;
        if frozen_mark[vi] || eliminated_mark[vi] {
            continue;
        }
        // Compact occurrence lists (drop deleted clauses).
        pos[vi].retain(|&ci| store[ci as usize].is_some());
        neg[vi].retain(|&ci| store[ci as usize].is_some());
        let (np, nn) = (pos[vi].len(), neg[vi].len());
        if np + nn == 0 || np + nn > MAX_OCCURRENCES {
            continue;
        }
        let v = Var(vi as u32);

        // Trial resolution: collect all non-tautological resolvents and
        // give up as soon as the NiVER bound (clause count must not
        // grow) or the length cap is exceeded.
        let mut resolvents: Vec<Vec<Lit>> = Vec::with_capacity(np + nn);
        let mut ok = true;
        'outer: for &pi in &pos[vi] {
            for &ni in &neg[vi] {
                let pc = store[pi as usize].as_ref().expect("retained");
                let nc = store[ni as usize].as_ref().expect("retained");
                if let Some(r) = resolve(pc, nc, v) {
                    if r.len() > MAX_RESOLVENT_LEN || resolvents.len() == np + nn {
                        ok = false;
                        break 'outer;
                    }
                    resolvents.push(r);
                }
            }
        }
        if !ok {
            continue;
        }

        // Commit: delete the occurrences, add the resolvents, requeue
        // every variable whose occurrence profile changed.
        let mut deleted: Vec<Vec<Lit>> = Vec::with_capacity(np + nn);
        for &ci in pos[vi].iter().chain(neg[vi].iter()) {
            let c = store[ci as usize].take().expect("retained");
            for l in &c {
                let u = l.var().index();
                if u != vi && !queued[u] && !eliminated_mark[u] {
                    queued[u] = true;
                    queue.push(u as u32);
                }
            }
            deleted.push(c);
        }
        for r in resolvents {
            let ci = store.len() as u32;
            for l in &r {
                let u = l.var().index();
                let side = if l.is_neg() { &mut neg } else { &mut pos };
                side[u].push(ci);
                if !queued[u] && !eliminated_mark[u] {
                    queued[u] = true;
                    queue.push(u as u32);
                }
            }
            store.push(Some(r));
        }
        eliminated_mark[vi] = true;
        steps.push(Elimstep {
            var: v,
            clauses: deleted,
        });
    }

    Elimination {
        clauses: store.into_iter().flatten().collect(),
        eliminated: steps.len(),
        steps,
        eliminated_mark,
    }
}

impl Elimination {
    /// Extends a model of the reduced formula to the original variable
    /// set: eliminated variables are assigned, in reverse elimination
    /// order, the polarity that satisfies every clause deleted on their
    /// behalf. `model[v] = polarity`; entries for eliminated variables
    /// are overwritten.
    pub(crate) fn reconstruct(&self, model: &mut [bool]) {
        for step in self.steps.iter().rev() {
            let vi = step.var.index();
            // A deleted clause not satisfied by the other literals
            // forces the eliminated variable's polarity; default false.
            let mut val = false;
            'clauses: for c in &step.clauses {
                let mut my_polarity = false;
                for l in c {
                    if l.var() == step.var {
                        my_polarity = !l.is_neg();
                    } else if model[l.var().index()] != l.is_neg() {
                        // Literal true under the model: clause satisfied.
                        continue 'clauses;
                    }
                }
                val = my_polarity;
                break;
            }
            model[vi] = val;
            // `val` satisfies every deleted clause: a clause whose other
            // literals are all false contains v with polarity `val`
            // (otherwise its resolvents with every opposite-polarity
            // occurrence would be falsified too, contradicting the
            // reduced model satisfying all resolvents).
        }
    }

    /// `true` if `v` was resolved out by this pass.
    pub(crate) fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated_mark[v.index()]
    }
}

/// Resolvent of `pc` (containing `v`) and `nc` (containing `¬v`) on
/// `v`; `None` when tautological.
fn resolve(pc: &[Lit], nc: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(pc.len() + nc.len() - 2);
    for &l in pc {
        if l.var() != v {
            out.push(l);
        }
    }
    for &l in nc {
        if l.var() == v {
            continue;
        }
        if out.contains(&!l) {
            return None;
        }
        if !out.contains(&l) {
            out.push(l);
        }
    }
    Some(out)
}

fn is_tautology(c: &[Lit]) -> bool {
    for (i, &l) in c.iter().enumerate() {
        if c[i + 1..].contains(&!l) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(v: u32) -> Lit {
        Lit::pos(Var(v))
    }
    fn ln(v: u32) -> Lit {
        Lit::neg(Var(v))
    }
    fn satisfies(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
        clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var().index()] != l.is_neg()))
    }

    #[test]
    fn buffer_chain_collapses() {
        // x0 = x1 = x2 = x3 via binary equivalences; only x0, x3 frozen.
        let mut clauses = Vec::new();
        for i in 0..3u32 {
            clauses.push(vec![lp(i), ln(i + 1)]);
            clauses.push(vec![ln(i), lp(i + 1)]);
        }
        let e = eliminate(clauses.clone(), 4, &[Var(0), Var(3)], &Budget::unlimited());
        assert_eq!(e.eliminated, 2);
        assert!(e.is_eliminated(Var(1)) && e.is_eliminated(Var(2)));
        // What remains must link x0 and x3 (two binary clauses).
        assert_eq!(e.clauses.len(), 2);
        let mut model = vec![true, false, false, true];
        e.reconstruct(&mut model);
        assert!(satisfies(&clauses, &model));
        assert!(model[1] && model[2], "chain propagates x0=true");
    }

    #[test]
    fn frozen_variables_survive() {
        let clauses = vec![vec![lp(0), lp(1)], vec![ln(0), lp(1)]];
        let e = eliminate(clauses, 2, &[Var(0), Var(1)], &Budget::unlimited());
        assert_eq!(e.eliminated, 0);
        assert_eq!(e.clauses.len(), 2);
    }

    #[test]
    fn tautologies_are_dropped_and_resolution_skips_them() {
        let clauses = vec![
            vec![lp(0), ln(0), lp(1)], // tautology: dropped
            vec![lp(0), lp(1)],
            vec![ln(0), lp(2)],
        ];
        let e = eliminate(clauses.clone(), 3, &[Var(1), Var(2)], &Budget::unlimited());
        assert_eq!(e.eliminated, 1);
        assert_eq!(e.clauses, vec![vec![lp(1), lp(2)]]);
        let mut model = vec![false, true, false];
        e.reconstruct(&mut model);
        assert!(satisfies(&clauses[1..], &model));
    }

    #[test]
    fn unsat_stays_unsat_under_elimination() {
        // (a)(¬a ∨ b)(¬b) is unsat; eliminating b must keep it so (the
        // reduced clauses still conflict on a or are empty).
        let clauses = vec![vec![lp(0)], vec![ln(0), lp(1)], vec![ln(1)]];
        let e = eliminate(clauses, 2, &[Var(0)], &Budget::unlimited());
        assert_eq!(e.eliminated, 1);
        assert!(e.clauses.iter().any(|c| c.len() <= 1));
    }

    #[test]
    fn exhausted_budget_stops_the_pass_early() {
        let mut clauses = Vec::new();
        for i in 0..9u32 {
            clauses.push(vec![lp(i), ln(i + 1)]);
            clauses.push(vec![ln(i), lp(i + 1)]);
        }
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let e = eliminate(clauses, 10, &[Var(0), Var(9)], &budget);
        // A dead budget aborts before the first batch of variables.
        assert_eq!(e.eliminated, 0);
    }
}
