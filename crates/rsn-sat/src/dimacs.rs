//! DIMACS CNF parsing and emission.

use std::fmt;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A parsed DIMACS CNF problem.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dimacs {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses, each a list of literals.
    pub clauses: Vec<Vec<Lit>>,
}

/// Error produced when DIMACS parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

impl Dimacs {
    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed headers, non-integer
    /// tokens, unterminated clauses or out-of-range variables.
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_sat::dimacs::Dimacs;
    ///
    /// let d = Dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
    /// assert_eq!(d.num_vars, 2);
    /// assert_eq!(d.clauses.len(), 2);
    /// # Ok::<(), rsn_sat::dimacs::ParseDimacsError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Dimacs, ParseDimacsError> {
        let mut num_vars = None;
        let mut clauses = Vec::new();
        let mut current = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 4 || parts[1] != "cnf" {
                    return Err(ParseDimacsError {
                        line: lineno + 1,
                        message: format!("malformed problem line {line:?}"),
                    });
                }
                let nv = parts[2].parse::<usize>().map_err(|e| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad variable count: {e}"),
                })?;
                num_vars = Some(nv);
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|e| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad literal {tok:?}: {e}"),
                })?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let var = Var((v.unsigned_abs() - 1) as u32);
                    if let Some(nv) = num_vars {
                        if var.index() >= nv {
                            return Err(ParseDimacsError {
                                line: lineno + 1,
                                message: format!("literal {v} exceeds declared {nv} vars"),
                            });
                        }
                    }
                    current.push(Lit::with_polarity(var, v > 0));
                }
            }
        }
        if !current.is_empty() {
            return Err(ParseDimacsError {
                line: text.lines().count(),
                message: "unterminated clause (missing trailing 0)".into(),
            });
        }
        let num_vars = num_vars.unwrap_or_else(|| {
            clauses
                .iter()
                .flatten()
                .map(|l| l.var().index() + 1)
                .max()
                .unwrap_or(0)
        });
        Ok(Dimacs { num_vars, clauses })
    }

    /// Emits DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let n = (l.var().index() + 1) as i64;
                let _ = write!(out, "{} ", if l.is_neg() { -n } else { n });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads the problem into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_solve_sat_instance() {
        let d = Dimacs::parse("c comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").expect("parse");
        assert_eq!(d.num_vars, 3);
        let mut s = d.to_solver();
        assert!(s.solve());
    }

    #[test]
    fn parse_unsat_instance() {
        let d = Dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").expect("parse");
        let mut s = d.to_solver();
        assert!(!s.solve());
    }

    #[test]
    fn roundtrip_preserves_clauses() {
        let d = Dimacs::parse("p cnf 3 2\n1 -2 0\n-3 2 1 0\n").expect("parse");
        let d2 = Dimacs::parse(&d.to_dimacs()).expect("reparse");
        assert_eq!(d, d2);
    }

    #[test]
    fn missing_terminator_is_error() {
        let err = Dimacs::parse("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn out_of_range_literal_is_error() {
        let err = Dimacs::parse("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn header_is_optional() {
        let d = Dimacs::parse("1 -2 0\n3 0\n").expect("parse");
        assert_eq!(d.num_vars, 3);
        assert_eq!(d.clauses.len(), 2);
    }

    #[test]
    fn malformed_header_is_error() {
        assert!(Dimacs::parse("p sat 2 1\n").is_err());
        assert!(Dimacs::parse("p cnf x 1\n").is_err());
    }
}
