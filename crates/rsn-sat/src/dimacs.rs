//! DIMACS CNF parsing and emission.

use std::fmt;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A parsed DIMACS CNF problem.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dimacs {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses, each a list of literals.
    pub clauses: Vec<Vec<Lit>>,
}

/// What class of malformed input a [`ParseDimacsError`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DimacsErrorKind {
    /// The `p cnf <vars> <clauses>` line is malformed (wrong shape,
    /// wrong format tag, non-numeric or out-of-range counts).
    MalformedHeader,
    /// A second `p` line was encountered.
    DuplicateHeader,
    /// A clause token is not a valid integer literal.
    BadLiteral,
    /// A literal's magnitude cannot be represented as a [`Var`] index.
    LiteralOutOfRange,
    /// A literal references a variable beyond the declared count.
    UndeclaredVariable,
    /// The input ended inside a clause (missing trailing `0`).
    UnterminatedClause,
    /// The clause count found differs from the header's declaration.
    ClauseCountMismatch,
}

impl DimacsErrorKind {
    /// Stable lowercase name for logs.
    pub fn as_str(self) -> &'static str {
        match self {
            DimacsErrorKind::MalformedHeader => "malformed_header",
            DimacsErrorKind::DuplicateHeader => "duplicate_header",
            DimacsErrorKind::BadLiteral => "bad_literal",
            DimacsErrorKind::LiteralOutOfRange => "literal_out_of_range",
            DimacsErrorKind::UndeclaredVariable => "undeclared_variable",
            DimacsErrorKind::UnterminatedClause => "unterminated_clause",
            DimacsErrorKind::ClauseCountMismatch => "clause_count_mismatch",
        }
    }
}

/// Error produced when DIMACS parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Machine-matchable failure class.
    pub kind: DimacsErrorKind,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

fn err(line: usize, kind: DimacsErrorKind, message: String) -> ParseDimacsError {
    ParseDimacsError {
        line,
        kind,
        message,
    }
}

impl Dimacs {
    /// Parses DIMACS CNF text.
    ///
    /// The `p cnf <vars> <clauses>` header is optional (the variable
    /// count is then inferred), but when present it is enforced: at most
    /// one header, counts must be valid numbers, literals must stay
    /// within the declared variables and the clause count must match.
    /// Malformed input of any kind yields a typed [`ParseDimacsError`];
    /// this function never panics.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] with a [`DimacsErrorKind`]
    /// classifying the failure — see that enum for the full catalog.
    ///
    /// # Example
    ///
    /// ```
    /// use rsn_sat::dimacs::Dimacs;
    ///
    /// let d = Dimacs::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
    /// assert_eq!(d.num_vars, 2);
    /// assert_eq!(d.clauses.len(), 2);
    /// # Ok::<(), rsn_sat::dimacs::ParseDimacsError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Dimacs, ParseDimacsError> {
        let mut header: Option<(usize, usize)> = None;
        let mut clauses = Vec::new();
        let mut current = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                if header.is_some() {
                    return Err(err(
                        lineno + 1,
                        DimacsErrorKind::DuplicateHeader,
                        "duplicate problem line".into(),
                    ));
                }
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 4 || parts[1] != "cnf" {
                    return Err(err(
                        lineno + 1,
                        DimacsErrorKind::MalformedHeader,
                        format!("malformed problem line {line:?}"),
                    ));
                }
                let nv = parts[2].parse::<usize>().map_err(|e| {
                    err(
                        lineno + 1,
                        DimacsErrorKind::MalformedHeader,
                        format!("bad variable count: {e}"),
                    )
                })?;
                if nv > u32::MAX as usize {
                    return Err(err(
                        lineno + 1,
                        DimacsErrorKind::MalformedHeader,
                        format!("variable count {nv} exceeds the supported 2^32-1"),
                    ));
                }
                let nc = parts[3].parse::<usize>().map_err(|e| {
                    err(
                        lineno + 1,
                        DimacsErrorKind::MalformedHeader,
                        format!("bad clause count: {e}"),
                    )
                })?;
                header = Some((nv, nc));
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|e| {
                    err(
                        lineno + 1,
                        DimacsErrorKind::BadLiteral,
                        format!("bad literal {tok:?}: {e}"),
                    )
                })?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let magnitude = v.unsigned_abs();
                    if magnitude > u32::MAX as u64 {
                        return Err(err(
                            lineno + 1,
                            DimacsErrorKind::LiteralOutOfRange,
                            format!("literal {v} exceeds the supported 2^32-1 variables"),
                        ));
                    }
                    let var = Var((magnitude - 1) as u32);
                    if let Some((nv, _)) = header {
                        if var.index() >= nv {
                            return Err(err(
                                lineno + 1,
                                DimacsErrorKind::UndeclaredVariable,
                                format!("literal {v} exceeds declared {nv} vars"),
                            ));
                        }
                    }
                    current.push(Lit::with_polarity(var, v > 0));
                }
            }
        }
        if !current.is_empty() {
            return Err(err(
                text.lines().count(),
                DimacsErrorKind::UnterminatedClause,
                "unterminated clause (missing trailing 0)".into(),
            ));
        }
        if let Some((_, nc)) = header {
            if clauses.len() != nc {
                return Err(err(
                    text.lines().count(),
                    DimacsErrorKind::ClauseCountMismatch,
                    format!("header declares {nc} clauses but found {}", clauses.len()),
                ));
            }
        }
        let num_vars = match header {
            Some((nv, _)) => nv,
            None => clauses
                .iter()
                .flatten()
                .map(|l| l.var().index() + 1)
                .max()
                .unwrap_or(0),
        };
        Ok(Dimacs { num_vars, clauses })
    }

    /// Emits DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let n = (l.var().index() + 1) as i64;
                let _ = write!(out, "{} ", if l.is_neg() { -n } else { n });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads the problem into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_solve_sat_instance() {
        let d = Dimacs::parse("c comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").expect("parse");
        assert_eq!(d.num_vars, 3);
        let mut s = d.to_solver();
        assert!(s.solve());
    }

    #[test]
    fn parse_unsat_instance() {
        let d = Dimacs::parse("p cnf 1 2\n1 0\n-1 0\n").expect("parse");
        let mut s = d.to_solver();
        assert!(!s.solve());
    }

    #[test]
    fn roundtrip_preserves_clauses() {
        let d = Dimacs::parse("p cnf 3 2\n1 -2 0\n-3 2 1 0\n").expect("parse");
        let d2 = Dimacs::parse(&d.to_dimacs()).expect("reparse");
        assert_eq!(d, d2);
    }

    #[test]
    fn missing_terminator_is_error() {
        let err = Dimacs::parse("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn out_of_range_literal_is_error() {
        let err = Dimacs::parse("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn header_is_optional() {
        let d = Dimacs::parse("1 -2 0\n3 0\n").expect("parse");
        assert_eq!(d.num_vars, 3);
        assert_eq!(d.clauses.len(), 2);
    }

    #[test]
    fn malformed_header_is_error() {
        assert!(Dimacs::parse("p sat 2 1\n").is_err());
        assert!(Dimacs::parse("p cnf x 1\n").is_err());
    }

    #[test]
    fn malformed_inputs_yield_typed_errors_without_panicking() {
        use DimacsErrorKind as K;
        // (input, expected kind, expected 1-based error line)
        let cases: &[(&str, K, usize)] = &[
            // Headers.
            ("p\n", K::MalformedHeader, 1),
            ("p cnf\n", K::MalformedHeader, 1),
            ("p cnf 2\n", K::MalformedHeader, 1),
            ("p cnf 2 1 extra\n", K::MalformedHeader, 1),
            ("p sat 2 1\n1 0\n", K::MalformedHeader, 1),
            ("p cnf x 1\n", K::MalformedHeader, 1),
            ("p cnf 2 x\n", K::MalformedHeader, 1),
            ("p cnf -2 1\n", K::MalformedHeader, 1),
            ("p cnf 2 -1\n", K::MalformedHeader, 1),
            ("p cnf 99999999999999999999 1\n", K::MalformedHeader, 1),
            ("p cnf 4294967296 1\n", K::MalformedHeader, 1),
            ("c ok\np cnf 1 1\np cnf 1 1\n1 0\n", K::DuplicateHeader, 3),
            // Literals.
            ("p cnf 2 1\n1 two 0\n", K::BadLiteral, 2),
            ("p cnf 2 1\n1 2.5 0\n", K::BadLiteral, 2),
            ("p cnf 2 1\n1 99999999999999999999 0\n", K::BadLiteral, 2),
            ("5000000000 0\n", K::LiteralOutOfRange, 1),
            ("-5000000000 0\n", K::LiteralOutOfRange, 1),
            ("p cnf 1 1\n2 0\n", K::UndeclaredVariable, 2),
            ("p cnf 1 1\n-2 0\n", K::UndeclaredVariable, 2),
            // Clause-list structure.
            ("p cnf 2 1\n1 2\n", K::UnterminatedClause, 2),
            ("p cnf 2 2\n1 0\n2\n", K::UnterminatedClause, 3),
            ("1 -2\n", K::UnterminatedClause, 1),
            ("p cnf 2 2\n1 0\n", K::ClauseCountMismatch, 2),
            ("p cnf 2 1\n1 0\n2 0\n", K::ClauseCountMismatch, 3),
            ("p cnf 2 1\n", K::ClauseCountMismatch, 1),
        ];
        for &(input, kind, line) in cases {
            let e = Dimacs::parse(input)
                .expect_err(&format!("input {input:?} should fail with {kind:?}"));
            assert_eq!(e.kind, kind, "input {input:?}: got {e:?}");
            assert_eq!(e.line, line, "input {input:?}: got {e:?}");
            // Display stays informative.
            assert!(e.to_string().contains("dimacs parse error"));
        }
    }

    #[test]
    fn well_formed_edge_cases_still_parse() {
        // Empty input, comment-only input, empty clause, clause split
        // across lines, leading/trailing whitespace.
        assert_eq!(Dimacs::parse("").expect("empty").num_vars, 0);
        assert_eq!(
            Dimacs::parse("c only\nc comments\n").expect("comments"),
            Dimacs::default()
        );
        let empty_clause = Dimacs::parse("p cnf 1 1\n0\n").expect("empty clause");
        assert_eq!(empty_clause.clauses, vec![Vec::<Lit>::new()]);
        let split = Dimacs::parse("p cnf 3 1\n1\n2\n3 0\n").expect("split clause");
        assert_eq!(split.clauses.len(), 1);
        assert_eq!(split.clauses[0].len(), 3);
        let padded = Dimacs::parse("  p cnf 1 1  \n  1 0  \n").expect("padded");
        assert_eq!(padded.num_vars, 1);
    }
}
