//! Lock-light shared learnt-clause pool for portfolio solving.
//!
//! A fixed-capacity ring of sequence-stamped slots. Writers claim a
//! monotonically increasing sequence number and overwrite the slot at
//! `seq % capacity`; readers scan for slots stamped after their last
//! import. Both sides use `try_lock` on the per-slot mutex and simply
//! skip on contention — losing a clause (or reading one twice) is always
//! sound because every shared clause is implied by the formula alone, so
//! no path ever blocks on another worker.
//!
//! Memory ordering: the slot stamp is stored with `Release` *while the
//! slot mutex is held*, and readers load it with `Acquire` before taking
//! the same mutex, so a reader that observes stamp `s` and wins the lock
//! sees the clause data of stamp `s` or newer — never a torn or stale
//! clause. A worker thread killed mid-publish (chaos testing) poisons
//! only one slot mutex; both sides recover the guard with
//! [`std::sync::PoisonError::into_inner`], and slot data is always left
//! whole because the stamp/data pair is written under the lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};

use crate::lit::Lit;

/// Only clauses this short are worth the sharing traffic.
pub const MAX_SHARED_LEN: usize = 12;
/// Only clauses at most this "glued" (LBD) are shared.
pub const MAX_SHARED_LBD: u32 = 6;

#[derive(Default)]
struct SlotData {
    lits: Vec<Lit>,
    lbd: u32,
    author: usize,
}

struct Slot {
    /// Sequence number of the clause currently in the slot; 0 = empty.
    stamp: AtomicU64,
    data: Mutex<SlotData>,
}

/// A fixed-capacity ring of short learnt clauses shared between
/// portfolio workers. See the module docs for the protocol.
pub struct ClausePool {
    slots: Vec<Slot>,
    /// Next sequence number to hand out, minus one: the stamp of the
    /// youngest published clause.
    next_seq: AtomicU64,
    imports: AtomicU64,
    exports: AtomicU64,
}

impl ClausePool {
    /// Creates a pool holding at most `capacity` clauses (older entries
    /// are overwritten ring-wise).
    pub fn new(capacity: usize) -> ClausePool {
        let capacity = capacity.max(1);
        ClausePool {
            slots: (0..capacity)
                .map(|_| Slot {
                    stamp: AtomicU64::new(0),
                    data: Mutex::new(SlotData::default()),
                })
                .collect(),
            next_seq: AtomicU64::new(0),
            imports: AtomicU64::new(0),
            exports: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Clauses successfully published so far.
    pub fn exports(&self) -> u64 {
        self.exports.load(Ordering::Relaxed)
    }

    /// Clauses handed to importing workers so far (one clause imported
    /// by three workers counts three).
    pub fn imports(&self) -> u64 {
        self.imports.load(Ordering::Relaxed)
    }

    /// Publishes a learnt clause if it passes the sharing filter
    /// (`1 ≤ len ≤ 12`, LBD ≤ 6). Returns `true` if the clause landed in
    /// a slot; contention drops the clause rather than blocking.
    pub fn publish(&self, lits: &[Lit], lbd: u32, author: usize) -> bool {
        if lits.is_empty() || lits.len() > MAX_SHARED_LEN || lbd > MAX_SHARED_LBD {
            return false;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = match slot.data.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return false,
        };
        guard.lits.clear();
        guard.lits.extend_from_slice(lits);
        guard.lbd = lbd;
        guard.author = author;
        // Publish the stamp while still holding the data lock (see the
        // module docs for why the ordering matters).
        slot.stamp.store(seq, Ordering::Release);
        drop(guard);
        self.exports.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Collects every clause stamped after `last_seen` that was not
    /// authored by `author` into `out` and returns the new watermark to
    /// pass as `last_seen` next time. Slots locked by a concurrent
    /// writer are skipped (their clause is younger than the returned
    /// watermark and therefore lost to this worker — sound, see module
    /// docs).
    pub fn collect_since(
        &self,
        last_seen: u64,
        author: usize,
        out: &mut Vec<(Vec<Lit>, u32)>,
    ) -> u64 {
        let watermark = self.next_seq.load(Ordering::Acquire);
        if watermark == last_seen {
            return watermark;
        }
        for slot in &self.slots {
            if slot.stamp.load(Ordering::Acquire) <= last_seen {
                continue;
            }
            let guard = match slot.data.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => continue,
            };
            if guard.author == author || guard.lits.is_empty() {
                continue;
            }
            out.push((guard.lits.clone(), guard.lbd));
        }
        self.imports.fetch_add(out.len() as u64, Ordering::Relaxed);
        watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&v| Lit::pos(Var(v))).collect()
    }

    #[test]
    fn publish_collect_roundtrip() {
        let pool = ClausePool::new(8);
        assert!(pool.publish(&lits(&[0, 1]), 2, 0));
        assert!(pool.publish(&lits(&[2, 3, 4]), 3, 0));
        let mut got = Vec::new();
        let mark = pool.collect_since(0, 1, &mut got);
        assert_eq!(mark, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(pool.exports(), 2);
        assert_eq!(pool.imports(), 2);
        // Nothing new since the watermark.
        let mut again = Vec::new();
        assert_eq!(pool.collect_since(mark, 1, &mut again), mark);
        assert!(again.is_empty());
    }

    #[test]
    fn own_clauses_are_skipped() {
        let pool = ClausePool::new(8);
        pool.publish(&lits(&[0, 1]), 2, 7);
        let mut got = Vec::new();
        pool.collect_since(0, 7, &mut got);
        assert!(got.is_empty(), "a worker must not re-import its own clause");
    }

    #[test]
    fn filter_rejects_long_or_high_lbd_clauses() {
        let pool = ClausePool::new(8);
        assert!(!pool.publish(&lits(&(0..13).collect::<Vec<_>>()), 2, 0));
        assert!(!pool.publish(&lits(&[0, 1]), MAX_SHARED_LBD + 1, 0));
        assert!(!pool.publish(&[], 1, 0));
        assert_eq!(pool.exports(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let pool = ClausePool::new(2);
        for i in 0..5u32 {
            assert!(pool.publish(&lits(&[i, i + 10]), 2, 0));
        }
        let mut got = Vec::new();
        let mark = pool.collect_since(0, 1, &mut got);
        assert_eq!(mark, 5);
        assert_eq!(got.len(), 2, "ring keeps only the youngest `capacity`");
    }

    #[test]
    fn concurrent_hammer_stays_consistent() {
        let pool = ClausePool::new(64);
        std::thread::scope(|scope| {
            for author in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    let mut seen = 0u64;
                    for i in 0..500u32 {
                        pool.publish(&lits(&[i % 7, 7 + (i % 5)]), 1 + (i % 6), author);
                        if i % 50 == 0 {
                            let mut buf = Vec::new();
                            seen = pool.collect_since(seen, author, &mut buf);
                            for (c, lbd) in buf {
                                assert!(!c.is_empty() && c.len() <= MAX_SHARED_LEN);
                                assert!(lbd <= MAX_SHARED_LBD);
                            }
                        }
                    }
                });
            }
        });
        assert!(pool.exports() > 0);
    }
}
