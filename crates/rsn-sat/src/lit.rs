//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity, packed into a `u32`
/// (`2 * var + sign`, sign 1 = negated).
///
/// # Example
///
/// ```
/// use rsn_sat::{Lit, Var};
///
/// let a = Var(3);
/// let l = Lit::pos(a);
/// assert_eq!(!l, Lit::neg(a));
/// assert_eq!(l.var(), a);
/// assert!(!l.is_neg());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// A literal of `v` with the given polarity (`true` = positive).
    pub fn with_polarity(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The packed code (`2 * var + sign`), usable as an array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its packed code.
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// The value this literal requires its variable to take to be true.
    pub fn polarity(self) -> bool {
        !self.is_neg()
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrip() {
        let v = Var(42);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::neg(v).is_neg());
        assert!(!Lit::pos(v).is_neg());
        assert_eq!(Lit::from_code(Lit::neg(v).code()), Lit::neg(v));
    }

    #[test]
    fn negation_is_involutive() {
        let l = Lit::pos(Var(7));
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
    }

    #[test]
    fn with_polarity_matches_constructors() {
        let v = Var(1);
        assert_eq!(Lit::with_polarity(v, true), Lit::pos(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::neg(v));
        assert!(Lit::pos(v).polarity());
        assert!(!Lit::neg(v).polarity());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Lit::pos(Var(3)).to_string(), "x3");
        assert_eq!(Lit::neg(Var(3)).to_string(), "¬x3");
    }
}
