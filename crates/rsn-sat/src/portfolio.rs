//! Portfolio CDCL with shared learnt clauses and cube-and-conquer.
//!
//! [`Solver::solve_portfolio_under`] (and any budgeted solve on a solver
//! configured with [`Solver::set_threads`] > 1) races `N` diversified
//! CDCL workers, each a clone of the caller's solver:
//!
//! * **Diversification** — each worker gets a different restart schedule
//!   (Luby bases / geometric), VSIDS decay and phase-polarity seed, so
//!   the workers walk different parts of the search space (the
//!   SatSwarm-style grid of heterogeneous solver nodes, collapsed into
//!   one process).
//! * **Clause sharing** — every learnt clause with LBD ≤ 6 and at most
//!   12 literals is published to a lock-light ring ([`ClausePool`]);
//!   workers import foreign clauses at restart boundaries, at decision
//!   level 0. Learnt clauses are implied by the formula alone, so
//!   sharing is sound across workers regardless of their (cube)
//!   assumptions.
//! * **First winner cancels the rest** — via a portfolio-local stop
//!   flag checked at conflict and decision boundaries. The caller's
//!   [`Budget`] (deadline / work / `CancelToken`) is shared by all
//!   workers, so external cancellation still tears the whole solve down.
//! * **Cube-and-conquer escalation** — an instance on which every
//!   worker exhausts its conflict quota is split on the top-k VSIDS
//!   variables into `2^k` assumption cubes, drained through an
//!   atomic-cursor claiming loop (the `sweep.rs` batch-claiming pattern,
//!   batch size 1 — cubes are few and heavy). A Sat cube wins globally;
//!   if every cube is refuted the union of the per-cube assumption
//!   cores is a valid core for the whole query.
//!
//! The winner's solver is copied back into the caller's, so models
//! ([`Solver::value`]), failed-assumption cores ([`Solver::core`]) and
//! incremental re-solving behave exactly as after a serial solve. If
//! chaos (the `sat.worker` failpoint) kills every worker, the portfolio
//! degrades to the serial loop in the calling thread — a verdict is
//! still produced and the caller never deadlocks.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rsn_budget::{Budget, Reason};

use crate::lit::{Lit, Var};
use crate::pool::ClausePool;
use crate::solver::{RestartSchedule, SearchConfig, SolveOutcome, Solver, Stats};

/// Conflicts the calling thread spends on the plain serial search
/// before any worker is spawned. Almost every query in the verify/BMC
/// workloads decides within a few hundred conflicts — for those the
/// portfolio must cost nothing beyond the serial loop (no solver
/// clones, no thread spawns). Only instances that survive this burst
/// are worth parallel effort.
const PHASE0_QUOTA: u64 = 3_000;

/// Conflicts each phase-1 worker may spend before the instance is
/// declared portfolio-resistant and handed to cube-and-conquer.
const PHASE1_QUOTA: u64 = 30_000;

/// Slots in the shared clause ring.
const POOL_CAPACITY: usize = 4096;

/// Most-active variables examined per failed-literal probing round at
/// escalation, and the number of rounds run while probing keeps paying.
const PROBE_VARS: usize = 512;
const PROBE_ROUNDS: usize = 4;

/// Per-worker context threaded into the CDCL inner loop
/// ([`Solver::solve_inner_para`]). All hooks are no-ops on the serial
/// path (`para == None`).
pub(crate) struct ParaCtx<'a> {
    /// Set once by the first worker to reach a decisive verdict; checked
    /// by siblings at conflict and decision boundaries.
    pub stop: &'a AtomicBool,
    /// Shared learnt-clause ring (publish on learn, import at restarts).
    pub pool: Option<&'a ClausePool>,
    /// Worker id, used to skip own clauses on import.
    pub author: usize,
    /// Phase-1 conflict quota; `None` runs to verdict or budget.
    pub quota: Option<u64>,
    /// Pool watermark of this worker's last import.
    pub last_seen: Cell<u64>,
}

impl ParaCtx<'_> {
    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// The diversification table. Worker `i` takes row `i % len`; rows
/// beyond the table still differ because the phase seed is XORed with
/// the worker id. Row 0 is the exact serial configuration, so a
/// one-worker portfolio searches the same tree as the serial solver.
const STRATEGIES: [(&str, RestartSchedule, f64, Option<u64>); 8] = [
    ("baseline", RestartSchedule::Luby { base: 100 }, 0.95, None),
    (
        "luby-fast",
        RestartSchedule::Luby { base: 16 },
        0.92,
        Some(0x9e37_79b9_7f4a_7c15),
    ),
    (
        "geometric",
        RestartSchedule::Geometric {
            base: 128,
            factor: 1.3,
        },
        0.98,
        Some(0xd1b5_4a32_d192_ed03),
    ),
    (
        "luby-agile",
        RestartSchedule::Luby { base: 50 },
        0.90,
        Some(0x2545_f491_4f6c_dd1d),
    ),
    (
        "geo-slow",
        RestartSchedule::Geometric {
            base: 512,
            factor: 1.5,
        },
        0.95,
        Some(0x9e6c_63d0_876a_9a47),
    ),
    (
        "luby-wide",
        RestartSchedule::Luby { base: 256 },
        0.97,
        Some(0xbf58_476d_1ce4_e5b9),
    ),
    (
        "geo-fast",
        RestartSchedule::Geometric {
            base: 64,
            factor: 1.2,
        },
        0.93,
        Some(0x94d0_49bb_1331_11eb),
    ),
    (
        "luby-deep",
        RestartSchedule::Luby { base: 512 },
        0.99,
        Some(0x369d_ea0f_31a5_3f85),
    ),
];

fn strategy(i: usize) -> (&'static str, SearchConfig) {
    let (name, restart, var_decay, phase_seed) = STRATEGIES[i % STRATEGIES.len()];
    (
        name,
        SearchConfig {
            restart,
            var_decay,
            phase_seed,
            chrono: None,
        },
    )
}

struct PortfolioRun {
    outcome: SolveOutcome,
    /// Strategy name of the decisive worker, if any.
    winner: Option<&'static str>,
    cubes: u64,
    /// Root literals fixed by escalation failed-literal probing.
    probe_fixed: u64,
    /// Variables resolved out by escalation bounded variable
    /// elimination.
    eliminated: u64,
}

/// Entry point used by [`Solver::solve_with_under`] /
/// [`Solver::solve_portfolio_with_under`] when `threads > 1`. Owns the
/// whole observability export for the logical solve (the workers bypass
/// the instrumented wrapper), mirroring the serial counter set and
/// adding the portfolio-specific metrics.
pub(crate) fn solve_portfolio(
    base: &mut Solver,
    assumptions: &[Lit],
    budget: &Budget,
    threads: usize,
) -> SolveOutcome {
    let _trace = rsn_obs::TraceGuard::new("sat_solve");
    let start = std::time::Instant::now();
    let before = base.stats();
    let pool = ClausePool::new(POOL_CAPACITY);
    let run = run_portfolio(
        base,
        assumptions,
        budget,
        threads.min(64),
        &pool,
        PHASE0_QUOTA,
        PHASE1_QUOTA,
        true,
    );
    let after = base.stats();
    let conflicts = after.conflicts - before.conflicts;
    rsn_obs::counter_add("sat.solves", 1);
    rsn_obs::counter_add("sat.conflicts", conflicts);
    rsn_obs::counter_add("sat.decisions", after.decisions - before.decisions);
    rsn_obs::counter_add("sat.propagations", after.propagations - before.propagations);
    rsn_obs::counter_add("sat.restarts", after.restarts - before.restarts);
    rsn_obs::hist_record("sat.solve_ns", start.elapsed().as_nanos() as u64);
    rsn_obs::hist_record("sat.solve_conflicts", conflicts);
    rsn_obs::counter_add("budget.spent{engine=sat}", conflicts + 1);
    rsn_obs::counter_add("sat.pool_exports", pool.exports());
    rsn_obs::counter_add("sat.pool_imports", pool.imports());
    if run.cubes > 0 {
        rsn_obs::counter_add("sat.cubes", run.cubes);
    }
    if run.probe_fixed > 0 {
        rsn_obs::counter_add("sat.probe_units", run.probe_fixed);
    }
    if run.eliminated > 0 {
        rsn_obs::counter_add("sat.eliminated_vars", run.eliminated);
    }
    if let Some(name) = run.winner {
        rsn_obs::counter_add(&format!("sat.portfolio_winner{{strategy={name}}}"), 1);
    }
    let lbd = base.take_lbd_hist();
    if !lbd.is_empty() {
        rsn_obs::hist_merge("sat.learnt_lbd", &lbd);
    }
    match run.outcome {
        SolveOutcome::Sat => rsn_obs::counter_add("sat.sat", 1),
        SolveOutcome::Unsat => rsn_obs::counter_add("sat.unsat", 1),
        SolveOutcome::Unknown { reason, .. } => {
            rsn_obs::counter_add("sat.unknown", 1);
            rsn_obs::counter_add("budget.exhausted", 1);
            rsn_obs::record_budget_trip("sat", reason.as_str());
        }
    }
    run.outcome
}

struct WorkerReturn {
    solver: Solver,
    /// This worker claimed the decisive verdict.
    won: bool,
    outcome: SolveOutcome,
    /// Worker id (stable across phases, used as the pool author id).
    author: usize,
}

/// The quotas are parameters (rather than reading the constants
/// directly) so tests can pin each escalation phase deterministically;
/// production callers pass [`PHASE0_QUOTA`] / [`PHASE1_QUOTA`]. A zero
/// `phase0_quota` skips the serial burst outright. `inprocess` enables
/// the bounded-variable-elimination escalation step; tests pinning the
/// race/cube phases pass `false` to keep those paths reachable on any
/// instance.
#[allow(clippy::too_many_arguments)]
fn run_portfolio(
    base: &mut Solver,
    assumptions: &[Lit],
    budget: &Budget,
    threads: usize,
    pool: &ClausePool,
    phase0_quota: u64,
    phase1_quota: u64,
    inprocess: bool,
) -> PortfolioRun {
    let original_config = base.search_config();
    let original_threads = base.threads();
    let run = run_ladder(
        base,
        assumptions,
        budget,
        threads,
        pool,
        phase0_quota,
        phase1_quota,
        inprocess,
    );
    // `adopt` restores the caller's configuration on the adopting paths;
    // restore unconditionally so early returns and chaos losses cannot
    // leave a worker's configuration behind (idempotent).
    base.set_search_config(original_config);
    base.set_threads(original_threads);
    run
}

#[allow(clippy::too_many_arguments)]
fn run_ladder(
    base: &mut Solver,
    assumptions: &[Lit],
    budget: &Budget,
    threads: usize,
    pool: &ClausePool,
    phase0_quota: u64,
    phase1_quota: u64,
    inprocess: bool,
) -> PortfolioRun {
    let original_config = base.search_config();
    let original_threads = base.threads();
    // Mirror the serial entry check: a dead budget admits no search and
    // costs one unit.
    if let Err(e) = budget.check() {
        return PortfolioRun {
            outcome: SolveOutcome::Unknown {
                conflicts: 0,
                reason: e.reason,
            },
            winner: None,
            cubes: 0,
            probe_fixed: 0,
            eliminated: 0,
        };
    }
    // ---- Phase 0: serial burst on the calling thread ------------------
    // Cloning the solver per worker and spawning threads costs far more
    // than a typical verify/BMC query does in total, so the portfolio
    // first runs the plain serial loop under a small conflict quota.
    // Easy queries (the overwhelming majority) decide here and pay
    // nothing; only quota survivors escalate to phase 1.
    if phase0_quota > 0 {
        let never = AtomicBool::new(false);
        let burst = ParaCtx {
            stop: &never,
            pool: None,
            author: 0,
            quota: Some(phase0_quota),
            last_seen: Cell::new(0),
        };
        let outcome = base.solve_inner_para(assumptions, budget, Some(&burst));
        // `budget.exhausted()` separates a spent budget (give up, the
        // caller's contract) from the phase-0 quota tripping (escalate).
        if !outcome.is_unknown() {
            return PortfolioRun {
                outcome,
                winner: Some("phase0"),
                cubes: 0,
                probe_fixed: 0,
                eliminated: 0,
            };
        }
        if budget.exhausted().is_some() {
            return PortfolioRun {
                outcome,
                winner: None,
                cubes: 0,
                probe_fixed: 0,
                eliminated: 0,
            };
        }
    }

    // ---- Escalation inprocessing: root failed-literal probing --------
    // Quota survivors are the rare hard queries, and the burst's VSIDS
    // activity points straight at the variables the search keeps
    // fighting over. Before spending anything on clones or cubes, probe
    // the top-activity variables in both polarities at the root: failed
    // literals and both-branch implications become permanent level-0
    // units that every later phase inherits. On Tseitin-heavy miters
    // this collapses whole gate cones for the price of unit propagation.
    // Probing perturbs saved phases, so it lives on the parallel path
    // only — the `threads == 1` bit-identical contract never gets here.
    let mut probe_fixed = 0u64;
    for _ in 0..PROBE_ROUNDS {
        let fixed = base.probe_roots(PROBE_VARS, budget);
        probe_fixed += fixed;
        if fixed == 0 || budget.exhausted().is_some() {
            break;
        }
    }

    // ---- Escalation inprocessing: bounded variable elimination -------
    // The miter/BMC encodings are dominated by Tseitin definition
    // variables occurring in a handful of short clauses; NiVER-style
    // elimination (see [`crate::eliminate`]) shrinks such instances
    // several-fold, and every CDCL cost scales with live instance size.
    // The reduced formula is solved by a recursive ladder (burst, race,
    // cubes — minus this step) on a scratch solver; only the verdict
    // crosses back. An Unsat core maps over directly because assumption
    // variables are frozen; a model is extended over the eliminated
    // variables and then validated against the caller's untouched clause
    // database before adoption, so elimination bugs degrade to a
    // fall-through instead of a wrong verdict. The caller's solver keeps
    // its burst learnts either way — later incremental solves see the
    // exact clause database they would after a serial run.
    if inprocess && !base.unsat_latched() {
        let frozen: Vec<Var> = assumptions.iter().map(|l| l.var()).collect();
        let elim =
            crate::eliminate::eliminate(base.root_clauses(false), base.num_vars(), &frozen, budget);
        if elim.eliminated > 0 && budget.exhausted().is_none() {
            let eliminated = elim.eliminated as u64;
            let mut red = Solver::new();
            for _ in 0..base.num_vars() {
                red.new_var();
            }
            red.set_search_config(original_config);
            for c in &elim.clauses {
                if !red.add_clause(c.iter().copied()) {
                    break;
                }
            }
            // Burst learnts avoiding eliminated variables are implied by
            // the reduced formula too (every reduced model extends to an
            // original model, which satisfies them) — carry them over so
            // the phase-0 work is not thrown away.
            for c in base.root_clauses(true) {
                if c.iter().all(|l| !elim.is_eliminated(l.var())) {
                    red.add_clause(c);
                }
            }
            let sub = run_ladder(
                &mut red,
                assumptions,
                budget,
                threads,
                pool,
                phase0_quota,
                phase1_quota,
                false,
            );
            // The reduced solve's effort belongs to this logical solve.
            base.add_flow_stats(red.flow_delta_since(Stats::default()));
            base.merge_lbd_hist(&red.take_lbd_hist());
            match sub.outcome {
                SolveOutcome::Sat => {
                    let mut model: Vec<bool> = (0..red.num_vars())
                        .map(|i| red.value(Var(i as u32)).unwrap_or(false))
                        .collect();
                    elim.reconstruct(&mut model);
                    if base.check_model(&model) && base.adopt_model(&model) {
                        return PortfolioRun {
                            outcome: SolveOutcome::Sat,
                            winner: Some("eliminate"),
                            cubes: sub.cubes,
                            probe_fixed,
                            eliminated,
                        };
                    }
                    // Validation failed — a defect in the elimination,
                    // not in the formula. Fall through to the unreduced
                    // phases as if inprocessing never ran.
                }
                SolveOutcome::Unsat => {
                    base.set_core_direct(red.core().to_vec());
                    if assumptions.is_empty() {
                        base.mark_unsat();
                    }
                    return PortfolioRun {
                        outcome: SolveOutcome::Unsat,
                        winner: Some("eliminate"),
                        cubes: sub.cubes,
                        probe_fixed,
                        eliminated,
                    };
                }
                SolveOutcome::Unknown { .. } => {
                    return PortfolioRun {
                        outcome: sub.outcome,
                        winner: None,
                        cubes: sub.cubes,
                        probe_fixed,
                        eliminated,
                    };
                }
            }
        }
    }

    // Captured after the burst: workers clone `base` from this point, so
    // loser flow-deltas in `adopt` must not re-count phase-0 work.
    let before = base.stats();
    let stop = AtomicBool::new(false);
    let claimed = AtomicBool::new(false);

    // Racing diversified workers only pays off when they actually run
    // simultaneously: with fewer free cores than workers the race
    // time-slices on the same silicon and multiplies wall-clock by the
    // worker count without pruning anything. Cap the racing width at
    // the host's physical parallelism; a width of one means racing is
    // pure overhead, so the ladder skips from the burst straight to
    // cube-and-conquer (the requested thread count still sizes the
    // cube partition, and the burst's VSIDS activity picks the split).
    let race_width = threads.min(std::thread::available_parallelism().map_or(1, |n| n.get()));

    // ---- Phase 1: diversified portfolio under a conflict quota -------
    let mut returns: Vec<WorkerReturn> = Vec::new();
    if race_width > 1 {
        run_race(
            base,
            assumptions,
            budget,
            race_width,
            pool,
            phase1_quota,
            &stop,
            &claimed,
            &mut returns,
        );

        if let Some(w) = returns.iter().position(|r| r.won) {
            let winner = returns.swap_remove(w);
            let name = strategy(winner.author).0;
            let outcome = winner.outcome;
            adopt(
                base,
                winner.solver,
                returns,
                before,
                original_config,
                original_threads,
            );
            return PortfolioRun {
                outcome,
                winner: Some(name),
                cubes: 0,
                probe_fixed,
                eliminated: 0,
            };
        }
        if let Some(reason) = budget.exhausted() {
            // Keep the most-informed worker's learnt clauses so a
            // re-solve under a fresh budget resumes from real progress,
            // exactly like the serial Unknown contract.
            let outcome = unknown_outcome(base, &mut returns, before, reason);
            adopt_unknown(base, returns, before, original_config, original_threads);
            return PortfolioRun {
                outcome,
                winner: None,
                cubes: 0,
                probe_fixed,
                eliminated: 0,
            };
        }
        if returns.is_empty() {
            // Chaos killed every worker: degrade to the serial loop
            // (caller's exact config) so the caller still gets a sound
            // verdict.
            base.set_search_config(original_config);
            let outcome = base.solve_inner_para(assumptions, budget, None);
            return PortfolioRun {
                outcome,
                winner: Some("serial-fallback"),
                cubes: 0,
                probe_fixed,
                eliminated: 0,
            };
        }
    }

    // ---- Phase 2: cube-and-conquer -----------------------------------
    // Every surviving worker hit the conflict quota (or racing was
    // skipped on a saturated host). Split on the top-k VSIDS variables
    // of the most-informed solver and drain the 2^k assumption cubes
    // through a claiming loop, clauses still shared. With a single
    // drainer this is incremental cube solving: every cube's learnt
    // clauses (all implied by the formula alone) carry over to the
    // next, so refuting the partition can be far cheaper than the
    // undirected monolithic search.
    let mut solvers: Vec<(usize, Solver)> = if returns.is_empty() {
        vec![(0, base.clone())]
    } else {
        returns.into_iter().map(|r| (r.author, r.solver)).collect()
    };
    for (_, s) in &mut solvers {
        // Phases learned in phase 1 are informed now — stop scrambling.
        let mut c = s.search_config();
        c.phase_seed = None;
        s.set_search_config(c);
    }
    let chooser = solvers
        .iter()
        .map(|(_, s)| s)
        .max_by_key(|s| s.stats().conflicts)
        .expect("returns is non-empty");
    let assumption_vars: Vec<Var> = assumptions.iter().map(|l| l.var()).collect();
    let mut k = 1usize;
    while (1usize << k) < 2 * threads {
        k += 1;
    }
    let split = chooser.top_active_vars(k.min(4), &assumption_vars);
    let cubes: Vec<Vec<Lit>> = (0..(1usize << split.len()))
        .map(|m| {
            let mut cube = assumptions.to_vec();
            for (j, &v) in split.iter().enumerate() {
                cube.push(Lit::with_polarity(v, (m >> j) & 1 == 1));
            }
            cube
        })
        .collect();

    enum CubeVerdict {
        Sat,
        Unsat(Vec<Lit>),
        Unknown,
    }
    struct CubeWorker {
        solver: Solver,
        verdicts: Vec<CubeVerdict>,
        won: bool,
    }
    let cursor = AtomicUsize::new(0);
    let mut workers: Vec<CubeWorker> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = solvers
            .into_iter()
            .map(|(author, mut solver)| {
                let (stop, claimed, cursor, cubes, budget) =
                    (&stop, &claimed, &cursor, &cubes, budget.clone());
                scope.spawn(move || {
                    let mut verdicts = Vec::new();
                    // Same failpoint as phase 1: the eval sits before the
                    // claiming loop so an armed `panic` never orphans a
                    // claimed cube.
                    if rsn_fail::eval("sat.worker").is_some() {
                        return CubeWorker {
                            solver,
                            verdicts,
                            won: false,
                        };
                    }
                    let ctx = ParaCtx {
                        stop,
                        pool: Some(pool),
                        author,
                        quota: None,
                        last_seen: Cell::new(0),
                    };
                    let mut won = false;
                    loop {
                        if ctx.stopped() {
                            break;
                        }
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= cubes.len() {
                            break;
                        }
                        match solver.solve_inner_para(&cubes[ci], &budget, Some(&ctx)) {
                            SolveOutcome::Sat => {
                                if claimed
                                    .compare_exchange(
                                        false,
                                        true,
                                        Ordering::SeqCst,
                                        Ordering::SeqCst,
                                    )
                                    .is_ok()
                                {
                                    stop.store(true, Ordering::SeqCst);
                                    verdicts.push(CubeVerdict::Sat);
                                    won = true;
                                }
                                break;
                            }
                            SolveOutcome::Unsat => {
                                // Only the user-assumption part of the
                                // cube core contributes to the whole-query
                                // core; the cube literals partition the
                                // space and cancel out in the union.
                                let user: Vec<Lit> = solver
                                    .core()
                                    .iter()
                                    .filter(|l| assumptions.contains(l))
                                    .copied()
                                    .collect();
                                verdicts.push(CubeVerdict::Unsat(user));
                            }
                            SolveOutcome::Unknown { .. } => {
                                verdicts.push(CubeVerdict::Unknown);
                                break;
                            }
                        }
                    }
                    CubeWorker {
                        solver,
                        verdicts,
                        won,
                    }
                })
            })
            .collect();
        for h in handles {
            if let Ok(w) = h.join() {
                workers.push(w);
            }
        }
    });

    let cube_count = cubes.len() as u64;
    let mut unsat_cubes = 0usize;
    let mut core_union: Vec<Lit> = Vec::new();
    let mut winner: Option<Solver> = None;
    let mut losers: Vec<Solver> = Vec::new();
    for w in workers {
        for v in &w.verdicts {
            if let CubeVerdict::Unsat(user) = v {
                unsat_cubes += 1;
                for &l in user {
                    if !core_union.contains(&l) {
                        core_union.push(l);
                    }
                }
            }
        }
        if w.won {
            winner = Some(w.solver);
        } else {
            losers.push(w.solver);
        }
    }

    if let Some(w) = winner {
        adopt(
            base,
            w,
            to_returns(losers),
            before,
            original_config,
            original_threads,
        );
        return PortfolioRun {
            outcome: SolveOutcome::Sat,
            winner: Some("cube"),
            cubes: cube_count,
            probe_fixed,
            eliminated: 0,
        };
    }
    if unsat_cubes as u64 == cube_count && !losers.is_empty() {
        // Every branch of the partition is refuted: the query is Unsat
        // and the union of the per-cube assumption cores is a valid
        // core (any model satisfying the union would fall into exactly
        // one cube and contradict that cube's refutation).
        let mut carrier = losers.pop().expect("checked non-empty");
        carrier.set_core_direct(core_union);
        if assumptions.is_empty() {
            carrier.mark_unsat();
        }
        adopt(
            base,
            carrier,
            to_returns(losers),
            before,
            original_config,
            original_threads,
        );
        return PortfolioRun {
            outcome: SolveOutcome::Unsat,
            winner: Some("cube"),
            cubes: cube_count,
            probe_fixed,
            eliminated: 0,
        };
    }
    if let Some(reason) = budget.exhausted() {
        let mut returns = to_returns(losers);
        let outcome = unknown_outcome(base, &mut returns, before, reason);
        adopt_unknown(base, returns, before, original_config, original_threads);
        return PortfolioRun {
            outcome,
            winner: None,
            cubes: cube_count,
            probe_fixed,
            eliminated: 0,
        };
    }
    // Chaos losses left cubes unresolved with a live budget: finish
    // serially (caller's exact config) so the caller still gets a
    // verdict.
    adopt_unknown(
        base,
        to_returns(losers),
        before,
        original_config,
        original_threads,
    );
    base.set_search_config(original_config);
    let outcome = base.solve_inner_para(assumptions, budget, None);
    PortfolioRun {
        outcome,
        winner: Some("serial-fallback"),
        cubes: cube_count,
        probe_fixed,
        eliminated: 0,
    }
}

/// Phase-1 race: `race_width` diversified clones of `base` search under
/// a per-worker conflict quota, sharing learnt clauses through `pool`;
/// the first decisive worker claims the verdict and stops its siblings.
/// Workers killed by the `sat.worker` failpoint are dropped; survivors
/// (decided or quota-tripped) are appended to `returns`.
#[allow(clippy::too_many_arguments)]
fn run_race(
    base: &Solver,
    assumptions: &[Lit],
    budget: &Budget,
    race_width: usize,
    pool: &ClausePool,
    phase1_quota: u64,
    stop: &AtomicBool,
    claimed: &AtomicBool,
    returns: &mut Vec<WorkerReturn>,
) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..race_width)
            .map(|i| {
                let mut solver = base.clone();
                let (_, config) = strategy(i);
                solver.set_search_config(config);
                let budget = budget.clone();
                scope.spawn(move || {
                    // Chaos failpoint: `panic`/`delay` fire inside
                    // `eval`; an injected error aborts this worker only.
                    if rsn_fail::eval("sat.worker").is_some() {
                        return WorkerReturn {
                            solver,
                            won: false,
                            outcome: SolveOutcome::Unknown {
                                conflicts: 0,
                                reason: Reason::Cancelled,
                            },
                            author: i,
                        };
                    }
                    let ctx = ParaCtx {
                        stop,
                        pool: Some(pool),
                        author: i,
                        quota: Some(phase1_quota),
                        last_seen: Cell::new(0),
                    };
                    let outcome = solver.solve_inner_para(assumptions, &budget, Some(&ctx));
                    let won = !outcome.is_unknown()
                        && claimed
                            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok();
                    if won {
                        stop.store(true, Ordering::SeqCst);
                    }
                    WorkerReturn {
                        solver,
                        won,
                        outcome,
                        author: i,
                    }
                })
            })
            .collect();
        for h in handles {
            // A worker killed by a `panic`-action failpoint is simply
            // dropped; its clone of the solver dies with it.
            if let Ok(r) = h.join() {
                returns.push(r);
            }
        }
    });
}

fn to_returns(solvers: Vec<Solver>) -> Vec<WorkerReturn> {
    solvers
        .into_iter()
        .map(|solver| WorkerReturn {
            solver,
            won: false,
            outcome: SolveOutcome::Unknown {
                conflicts: 0,
                reason: Reason::Cancelled,
            },
            author: 0,
        })
        .collect()
}

/// Copies the winning worker back into the caller's solver (restoring
/// the caller's configuration), folds every loser's flow counters and
/// LBD samples in, so the exported totals account for all work done.
fn adopt(
    base: &mut Solver,
    mut winner: Solver,
    losers: Vec<WorkerReturn>,
    before: Stats,
    original_config: SearchConfig,
    original_threads: usize,
) {
    let mut deltas = Vec::with_capacity(losers.len());
    let mut lbd = rsn_obs::Histogram::new();
    for mut r in losers {
        deltas.push(r.solver.flow_delta_since(before));
        lbd.merge(&r.solver.take_lbd_hist());
    }
    winner.set_search_config(original_config);
    winner.set_threads(original_threads);
    winner.merge_lbd_hist(&lbd);
    *base = winner;
    for d in deltas {
        base.add_flow_stats(d);
    }
}

/// Unknown outcome: adopt the most-informed worker (keeping its learnt
/// clauses for a future re-solve) and report the aggregate conflict
/// count, mirroring the serial Unknown contract.
fn adopt_unknown(
    base: &mut Solver,
    mut returns: Vec<WorkerReturn>,
    before: Stats,
    original_config: SearchConfig,
    original_threads: usize,
) {
    if returns.is_empty() {
        return;
    }
    let best = returns
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.solver.stats().conflicts)
        .map(|(i, _)| i)
        .expect("non-empty");
    let winner = returns.swap_remove(best);
    adopt(
        base,
        winner.solver,
        returns,
        before,
        original_config,
        original_threads,
    );
}

/// Aggregate conflicts spent by every returned worker, for the Unknown
/// outcome's `conflicts` field.
fn unknown_outcome(
    base: &Solver,
    returns: &mut [WorkerReturn],
    before: Stats,
    reason: Reason,
) -> SolveOutcome {
    let _ = base;
    let total: u64 = returns
        .iter()
        .map(|r| r.solver.flow_delta_since(before).conflicts)
        .sum();
    SolveOutcome::Unknown {
        conflicts: total,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::{Lit, Var};
    use std::sync::Mutex;

    /// `rsn-fail` failpoints are process-global; every test arming one
    /// takes this lock and clears the registry before releasing it.
    static CHAOS: Mutex<()> = Mutex::new(());

    fn lp(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn ln(v: Var) -> Lit {
        Lit::neg(v)
    }

    /// n pigeons into n-1 holes: hard enough to exercise conflicts.
    fn pigeonhole(n: usize) -> Solver {
        let holes = n - 1;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| lp(v)));
        }
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                for (&a, &b) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause([ln(a), ln(b)]);
                }
            }
        }
        s
    }

    #[test]
    fn portfolio_proves_unsat() {
        // php(8) needs ~4.8k serial conflicts: past the phase-0 burst,
        // so diversified workers genuinely race for this verdict.
        let mut s = pigeonhole(8);
        let out = s.solve_portfolio_under(&Budget::unlimited(), 4);
        assert_eq!(out, SolveOutcome::Unsat);
        // The verdict is latched: a plain re-solve is immediate.
        assert!(!s.solve());
    }

    #[test]
    fn portfolio_finds_models() {
        // A satisfiable xor ladder; every worker can find some model.
        let mut s = Solver::new();
        let x: Vec<Var> = (0..30).map(|_| s.new_var()).collect();
        for w in x.windows(2) {
            s.add_clause([lp(w[0]), lp(w[1])]);
            s.add_clause([ln(w[0]), ln(w[1])]);
        }
        let out = s.solve_portfolio_under(&Budget::unlimited(), 4);
        assert_eq!(out, SolveOutcome::Sat);
        for w in x.windows(2) {
            let a = s.value(w[0]).expect("assigned");
            let b = s.value(w[1]).expect("assigned");
            assert!(a ^ b, "model violates the xor chain");
        }
    }

    #[test]
    fn portfolio_core_is_valid() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        s.add_clause([ln(vars[1]), ln(vars[2])]);
        let assumptions: Vec<Lit> = vars.iter().map(|&v| lp(v)).collect();
        let out = s.solve_portfolio_with_under(&assumptions, &Budget::unlimited(), 4);
        assert_eq!(out, SolveOutcome::Unsat);
        let core = s.core().to_vec();
        assert!(!core.is_empty());
        assert!(core.iter().all(|l| assumptions.contains(l)));
        // Re-solving with only the core stays unsatisfiable (serially).
        assert!(!s.solve_with(&core));
    }

    #[test]
    fn one_thread_portfolio_is_bit_identical_to_serial() {
        let mut a = pigeonhole(5);
        let mut b = a.clone();
        let out_a = a.solve_under(&Budget::unlimited());
        let out_b = b.solve_portfolio_under(&Budget::unlimited(), 1);
        assert_eq!(out_a, out_b);
        assert_eq!(a.stats(), b.stats(), "threads==1 must take the serial loop");
    }

    #[test]
    fn set_threads_routes_plain_solves_through_the_portfolio() {
        let mut s = pigeonhole(6);
        s.set_threads(3);
        assert_eq!(s.threads(), 3);
        assert!(!s.solve());
        // Assumption queries and cores keep working through the dispatch.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a), lp(b)]);
        s.set_threads(3);
        assert!(s.solve_with(&[ln(a)]));
        assert_eq!(s.value(b), Some(true));
        let core = s.solve_with_core(&[ln(a), ln(b)]).expect("unsat");
        assert!(!core.is_empty());
    }

    #[test]
    fn exhausted_budget_yields_unknown() {
        let mut s = pigeonhole(7);
        let out = s.solve_portfolio_under(&Budget::unlimited().with_work_limit(0), 4);
        assert!(out.is_unknown());
        // Still usable afterwards.
        assert_eq!(
            s.solve_portfolio_under(&Budget::unlimited(), 4),
            SolveOutcome::Unsat
        );
    }

    #[test]
    fn cancel_token_tears_down_the_portfolio() {
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let mut s = pigeonhole(7);
        let out = s.solve_portfolio_under(&budget, 4);
        assert_eq!(
            out,
            SolveOutcome::Unknown {
                conflicts: 0,
                reason: Reason::Cancelled
            }
        );
    }

    #[test]
    fn cube_and_conquer_refutes_quota_survivors() {
        // Tiny quotas pin the escalation path: the burst trips after a
        // handful of conflicts, every worker hits the phase-1 quota, and
        // the verdict must come from the cube partition (all cubes
        // unsat). php(7) is far from decided within 50 conflicts.
        let mut s = pigeonhole(7);
        let pool = ClausePool::new(POOL_CAPACITY);
        let run = run_portfolio(&mut s, &[], &Budget::unlimited(), 2, &pool, 10, 50, false);
        assert_eq!(run.outcome, SolveOutcome::Unsat);
        assert_eq!(run.winner, Some("cube"));
        assert!(
            run.cubes >= 4,
            "expected 2*threads cubes, got {}",
            run.cubes
        );
        // The verdict is latched on the caller's solver.
        assert!(!s.solve());
    }

    #[test]
    fn cube_and_conquer_finds_models() {
        // Same forced escalation on a satisfiable formula: some cube is
        // sat and its model must be adopted. Random 3-SAT at ratio ~4.0
        // over 50 vars is almost surely satisfiable but needs more than
        // the pinned quotas to decide.
        let mut rng = 0xabcd_ef01_2345_6789u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..50).map(|_| s.new_var()).collect();
        for _ in 0..200 {
            let mut picks = [0usize; 3];
            for p in &mut picks {
                *p = (next() % 50) as usize;
            }
            if picks[0] == picks[1] || picks[1] == picks[2] || picks[0] == picks[2] {
                continue;
            }
            s.add_clause(picks.map(|i| Lit::with_polarity(vars[i], next() & 1 == 1)));
        }
        let mut serial = s.clone();
        let expected = serial.solve();
        let pool = ClausePool::new(POOL_CAPACITY);
        let run = run_portfolio(&mut s, &[], &Budget::unlimited(), 2, &pool, 1, 2, false);
        match expected {
            true => assert_eq!(run.outcome, SolveOutcome::Sat),
            false => assert_eq!(run.outcome, SolveOutcome::Unsat),
        }
    }

    /// Random 3-SAT instance over `n` vars with the given seed; returns
    /// the solver and the clause list for independent model checking.
    fn random_3sat(n: usize, m: usize, mut rng: u64) -> (Solver, Vec<Vec<Lit>>) {
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        let mut clauses = Vec::new();
        for _ in 0..m {
            let mut picks = [0usize; 3];
            for p in &mut picks {
                *p = (next() % n as u64) as usize;
            }
            if picks[0] == picks[1] || picks[1] == picks[2] || picks[0] == picks[2] {
                continue;
            }
            let c: Vec<Lit> = picks
                .iter()
                .map(|&i| Lit::with_polarity(vars[i], next() & 1 == 1))
                .collect();
            s.add_clause(c.iter().copied());
            clauses.push(c);
        }
        (s, clauses)
    }

    #[test]
    fn elimination_agrees_with_serial_and_models_validate() {
        // Pinned tiny quotas force escalation straight into the
        // elimination step; verdicts must match the serial solver and a
        // Sat model (reconstructed over eliminated variables) must
        // satisfy every original clause.
        for seed in 0..12u64 {
            let (mut s, clauses) = random_3sat(40, 160, 0x5eed_0000 + seed * 7919);
            let mut serial = s.clone();
            let expected = serial.solve();
            let pool = ClausePool::new(POOL_CAPACITY);
            let run = run_portfolio(&mut s, &[], &Budget::unlimited(), 2, &pool, 1, 2, true);
            assert_eq!(
                run.outcome,
                if expected {
                    SolveOutcome::Sat
                } else {
                    SolveOutcome::Unsat
                },
                "seed {seed}"
            );
            if expected {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_value_model(l) == Some(true)),
                        "seed {seed}: model violates {c:?}"
                    );
                }
            } else {
                // The verdict is latched on the caller's solver.
                assert!(!s.solve(), "seed {seed}");
            }
        }
    }

    #[test]
    fn elimination_collapses_tseitin_chains() {
        // A long buffer chain with frozen endpoints plus a pigeonhole
        // core: elimination must resolve out the chain variables and the
        // reduced ladder must still refute the core.
        let mut s = pigeonhole(7);
        let head = s.new_var();
        let mut prev = head;
        for _ in 0..64 {
            let next = s.new_var();
            s.add_clause([lp(prev), ln(next)]);
            s.add_clause([ln(prev), lp(next)]);
            prev = next;
        }
        s.add_clause([lp(head)]);
        let pool = ClausePool::new(POOL_CAPACITY);
        let run = run_portfolio(&mut s, &[], &Budget::unlimited(), 2, &pool, 10, 50, true);
        assert_eq!(run.outcome, SolveOutcome::Unsat);
        assert_eq!(run.winner, Some("eliminate"));
        assert!(
            run.eliminated >= 32,
            "chain variables should be resolved out, got {}",
            run.eliminated
        );
        assert!(!s.solve());
    }

    #[test]
    fn elimination_keeps_assumption_cores_valid() {
        // Assumption variables are frozen, so the core of the reduced
        // solve must be a valid core of the original query.
        let (mut s, _) = random_3sat(30, 90, 0xc0de_cafe);
        let vars: Vec<Var> = (0..30).map(|v| Var(v as u32)).collect();
        // Force a contradiction among assumption literals via a chain of
        // implications: a -> b, with assumptions a and ¬b.
        s.add_clause([ln(vars[0]), lp(vars[1])]);
        let assumptions = [lp(vars[0]), ln(vars[1])];
        let mut serial = s.clone();
        assert!(!serial.solve_with(&assumptions));
        let pool = ClausePool::new(POOL_CAPACITY);
        let run = run_portfolio(
            &mut s,
            &assumptions,
            &Budget::unlimited(),
            2,
            &pool,
            1,
            2,
            true,
        );
        assert_eq!(run.outcome, SolveOutcome::Unsat);
        let core = s.core().to_vec();
        assert!(!core.is_empty());
        assert!(core.iter().all(|l| assumptions.contains(l)));
        assert!(!s.solve_with(&core));
        // The caller's solver is NOT latched unsat: the formula itself
        // stays satisfiable without the assumptions.
        assert!(s.solve());
    }

    #[test]
    fn worker_failpoint_panic_degrades_to_serial_fallback() {
        let _guard = CHAOS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        rsn_fail::clear();
        // Every worker dies at birth: the portfolio must still produce
        // the correct verdict via the in-thread serial fallback.
        rsn_fail::configure("sat.worker", rsn_fail::Action::Panic, 1.0, Some(3));
        // php(8) outlives the phase-0 burst, so workers really spawn
        // (and all die at the failpoint).
        let mut s = pigeonhole(8);
        let out = s.solve_portfolio_under(&Budget::unlimited(), 4);
        rsn_fail::clear();
        assert_eq!(out, SolveOutcome::Unsat);
    }

    #[test]
    fn worker_failpoint_partial_losses_keep_the_verdict() {
        let _guard = CHAOS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        rsn_fail::clear();
        rsn_fail::configure("sat.worker", rsn_fail::Action::Panic, 0.5, Some(11));
        let mut sat_case = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| sat_case.new_var()).collect();
        for w in vars.windows(2) {
            sat_case.add_clause([lp(w[0]), lp(w[1])]);
        }
        let out = sat_case.solve_portfolio_under(&Budget::unlimited(), 4);
        let mut unsat_case = pigeonhole(8);
        let out2 = unsat_case.solve_portfolio_under(&Budget::unlimited(), 4);
        rsn_fail::clear();
        assert_eq!(out, SolveOutcome::Sat);
        assert_eq!(out2, SolveOutcome::Unsat);
    }
}
