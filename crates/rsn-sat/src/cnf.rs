//! Circuit-to-CNF construction (Tseitin encoding) on top of a [`Solver`].
//!
//! The bounded-model-checking engine builds the RSN transition relation as
//! a circuit; this module provides the gates.

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A Tseitin encoder that owns a [`Solver`] and allocates gate outputs as
/// fresh variables.
///
/// # Example
///
/// ```
/// use rsn_sat::{CnfBuilder, Lit};
///
/// let mut cnf = CnfBuilder::new();
/// let a = cnf.new_lit();
/// let b = cnf.new_lit();
/// let and = cnf.and([a, b]);
/// cnf.assert_lit(and);
/// assert!(cnf.solver_mut().solve());
/// assert_eq!(cnf.solver_mut().lit_value_model(a), Some(true));
/// assert_eq!(cnf.solver_mut().lit_value_model(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct CnfBuilder {
    solver: Solver,
    /// Literal fixed to true (lazily created) for encoding constants.
    true_lit: Option<Lit>,
    /// When enabled, every emitted clause is recorded (flat, no
    /// per-clause allocation) together with the current provenance tag.
    recording: bool,
    tag: u32,
    rec_lits: Vec<Lit>,
    rec_ends: Vec<u32>,
    rec_tags: Vec<u32>,
}

impl CnfBuilder {
    /// Creates a builder with an empty solver.
    pub fn new() -> Self {
        CnfBuilder {
            solver: Solver::new(),
            true_lit: None,
            recording: false,
            tag: 0,
            rec_lits: Vec::new(),
            rec_ends: Vec::new(),
            rec_tags: Vec::new(),
        }
    }

    /// Turns on clause recording: from now on every clause added through
    /// the builder is remembered verbatim (before solver-side
    /// simplification) together with the provenance tag current at the
    /// time of emission (see [`CnfBuilder::set_tag`]). Off by default —
    /// recording costs one flat `Vec` push per clause.
    pub fn record_provenance(&mut self) {
        self.recording = true;
    }

    /// Sets the provenance tag attached to subsequently emitted clauses.
    /// The tag is an opaque index the caller maps to structural origins
    /// in a side table.
    pub fn set_tag(&mut self, tag: u32) {
        self.tag = tag;
    }

    /// Number of recorded clauses.
    pub fn recorded_len(&self) -> usize {
        self.rec_tags.len()
    }

    /// Iterates over the recorded clauses as `(literals, tag)` pairs, in
    /// emission order.
    pub fn recorded(&self) -> impl Iterator<Item = (&[Lit], u32)> + '_ {
        (0..self.rec_tags.len()).map(move |i| {
            let start = if i == 0 {
                0
            } else {
                self.rec_ends[i - 1] as usize
            };
            let end = self.rec_ends[i] as usize;
            (&self.rec_lits[start..end], self.rec_tags[i])
        })
    }

    /// Single funnel for clause emission: records (when enabled) and
    /// forwards to the solver.
    fn emit(&mut self, lits: &[Lit]) {
        if self.recording {
            self.rec_lits.extend_from_slice(lits);
            self.rec_ends.push(self.rec_lits.len() as u32);
            self.rec_tags.push(self.tag);
        }
        self.solver.add_clause(lits.iter().copied());
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// A literal constrained to be `true`.
    pub fn lit_true(&mut self) -> Lit {
        match self.true_lit {
            Some(l) => l,
            None => {
                let l = self.new_lit();
                self.emit(&[l]);
                self.true_lit = Some(l);
                l
            }
        }
    }

    /// A literal constrained to be `false`.
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }

    /// Encodes a constant.
    pub fn constant(&mut self, value: bool) -> Lit {
        if value {
            self.lit_true()
        } else {
            self.lit_false()
        }
    }

    /// Asserts that a literal must hold.
    pub fn assert_lit(&mut self, l: Lit) {
        self.emit(&[l]);
    }

    /// Adds a raw clause.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let c: Vec<Lit> = lits.into_iter().collect();
        self.emit(&c);
    }

    /// Gate `out = AND(inputs)`. Empty input yields constant true.
    pub fn and(&mut self, inputs: impl IntoIterator<Item = Lit>) -> Lit {
        let ins: Vec<Lit> = inputs.into_iter().collect();
        match ins.len() {
            0 => self.lit_true(),
            1 => ins[0],
            _ => {
                let out = self.new_lit();
                // out -> i  for each input
                for &i in &ins {
                    self.emit(&[!out, i]);
                }
                // (AND ins) -> out
                let mut clause: Vec<Lit> = ins.iter().map(|&i| !i).collect();
                clause.push(out);
                self.emit(&clause);
                out
            }
        }
    }

    /// Gate `out = OR(inputs)`. Empty input yields constant false.
    pub fn or(&mut self, inputs: impl IntoIterator<Item = Lit>) -> Lit {
        let ins: Vec<Lit> = inputs.into_iter().collect();
        match ins.len() {
            0 => self.lit_false(),
            1 => ins[0],
            _ => {
                let out = self.new_lit();
                for &i in &ins {
                    self.emit(&[out, !i]);
                }
                let mut clause = ins;
                clause.push(!out);
                self.emit(&clause);
                out
            }
        }
    }

    /// Gate `out = a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.new_lit();
        self.emit(&[!out, a, b]);
        self.emit(&[!out, !a, !b]);
        self.emit(&[out, !a, b]);
        self.emit(&[out, a, !b]);
        out
    }

    /// Gate `out = if cond { then_ } else { else_ }` (multiplexer).
    pub fn ite(&mut self, cond: Lit, then_: Lit, else_: Lit) -> Lit {
        let out = self.new_lit();
        self.emit(&[!cond, !then_, out]);
        self.emit(&[!cond, then_, !out]);
        self.emit(&[cond, !else_, out]);
        self.emit(&[cond, else_, !out]);
        out
    }

    /// Gate `out = (a == b)` (XNOR).
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.xor(a, b);
        !x
    }

    /// Asserts `a == b`.
    pub fn assert_eq(&mut self, a: Lit, b: Lit) {
        self.emit(&[!a, b]);
        self.emit(&[a, !b]);
    }

    /// Asserts `cond -> (a == b)`.
    pub fn assert_eq_if(&mut self, cond: Lit, a: Lit, b: Lit) {
        self.emit(&[!cond, !a, b]);
        self.emit(&[!cond, a, !b]);
    }

    /// Asserts that at most one of the literals holds (pairwise encoding).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.emit(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Asserts that exactly one of the literals holds.
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        let c: Vec<Lit> = lits.to_vec();
        self.emit(&c);
        self.at_most_one(lits);
    }

    /// Access the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Read-only access to the underlying solver. A pristine (never
    /// solved) builder can be kept immutable and shared; callers clone
    /// the solver to get private search state (`Solver` is `Clone`).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Consumes the builder and returns the solver.
    pub fn into_solver(self) -> Solver {
        self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cnf: &mut CnfBuilder, l: Lit) -> bool {
        cnf.solver_mut().lit_value_model(l).expect("assigned")
    }

    #[test]
    fn and_gate_truth_table() {
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut cnf = CnfBuilder::new();
            let a = cnf.new_lit();
            let b = cnf.new_lit();
            let out = cnf.and([a, b]);
            cnf.assert_lit(if va { a } else { !a });
            cnf.assert_lit(if vb { b } else { !b });
            assert!(cnf.solver_mut().solve());
            assert_eq!(model(&mut cnf, out), va && vb);
        }
    }

    #[test]
    fn or_gate_truth_table() {
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut cnf = CnfBuilder::new();
            let a = cnf.new_lit();
            let b = cnf.new_lit();
            let out = cnf.or([a, b]);
            cnf.assert_lit(if va { a } else { !a });
            cnf.assert_lit(if vb { b } else { !b });
            assert!(cnf.solver_mut().solve());
            assert_eq!(model(&mut cnf, out), va || vb);
        }
    }

    #[test]
    fn xor_and_ite_truth_tables() {
        for m in 0..8u8 {
            let (va, vb, vc) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            let mut cnf = CnfBuilder::new();
            let a = cnf.new_lit();
            let b = cnf.new_lit();
            let c = cnf.new_lit();
            let x = cnf.xor(a, b);
            let i = cnf.ite(c, a, b);
            let e = cnf.iff(a, b);
            cnf.assert_lit(if va { a } else { !a });
            cnf.assert_lit(if vb { b } else { !b });
            cnf.assert_lit(if vc { c } else { !c });
            assert!(cnf.solver_mut().solve());
            assert_eq!(model(&mut cnf, x), va ^ vb);
            assert_eq!(model(&mut cnf, i), if vc { va } else { vb });
            assert_eq!(model(&mut cnf, e), va == vb);
        }
    }

    #[test]
    fn empty_gates_are_constants() {
        let mut cnf = CnfBuilder::new();
        let t = cnf.and(std::iter::empty());
        let f = cnf.or(std::iter::empty());
        assert!(cnf.solver_mut().solve());
        assert!(model(&mut cnf, t));
        assert!(!model(&mut cnf, f));
    }

    #[test]
    fn exactly_one_enforces_cardinality() {
        let mut cnf = CnfBuilder::new();
        let lits: Vec<Lit> = (0..4).map(|_| cnf.new_lit()).collect();
        cnf.exactly_one(&lits);
        assert!(cnf.solver_mut().solve());
        let count = lits
            .iter()
            .filter(|&&l| cnf.solver.lit_value_model(l) == Some(true))
            .count();
        assert_eq!(count, 1);
        // Forcing two to be true is unsatisfiable.
        assert!(!cnf.solver.solve_with(&[lits[0], lits[1]]));
    }

    #[test]
    fn assert_eq_if_respects_condition() {
        let mut cnf = CnfBuilder::new();
        let c = cnf.new_lit();
        let a = cnf.new_lit();
        let b = cnf.new_lit();
        cnf.assert_eq_if(c, a, b);
        // With c true, a != b is unsat.
        assert!(!cnf.solver.solve_with(&[c, a, !b]));
        // With c false, a != b is fine.
        assert!(cnf.solver.solve_with(&[!c, a, !b]));
    }
}
