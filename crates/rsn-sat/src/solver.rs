//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the MiniSat architecture: two-watched-literal
//! propagation, first-UIP conflict analysis, VSIDS variable activities with
//! a lazily-updated binary heap, phase saving, Luby restarts, and
//! activity-based reduction of the learnt-clause database.

#![allow(clippy::needless_range_loop)]
use crate::lit::{Lit, Var};
use rsn_budget::{Budget, Reason};

/// Undefined/true/false assignment value.
const UNDEF: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    /// Literal block distance ("glue") at learning time: the number of
    /// distinct decision levels in the clause. 0 for problem clauses.
    /// Low-LBD clauses connect few decision levels and empirically stay
    /// useful, so `reduce_db` prefers them over raw activity.
    lbd: u32,
}

type ClauseRef = usize;

/// Maximum-activity variable order (binary heap with position index).
#[derive(Debug, Clone, Default)]
struct VarOrder {
    heap: Vec<Var>,
    pos: Vec<usize>, // usize::MAX if not in heap
}

impl VarOrder {
    fn contains(&self, v: Var) -> bool {
        v.index() < self.pos.len() && self.pos[v.index()] != usize::MAX
    }

    fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, usize::MAX);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bump(&mut self, v: Var, act: &[f64]) {
        if let Some(&i) = self.pos.get(v.index()) {
            if i != usize::MAX {
                self.sift_up(i, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}

/// Restart scheduling policy for the CDCL loop.
///
/// The serial default is `Luby { base: 100 }` — the i-th restart fires
/// after `base * luby(i)` conflicts. Portfolio workers diversify over
/// this schedule (and over [`SearchConfig::var_decay`] / phase seeds) so
/// each worker explores a different part of the search space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RestartSchedule {
    /// Luby sequence (1,1,2,1,1,2,4,…) scaled by `base` conflicts.
    Luby {
        /// Conflicts per Luby unit.
        base: u64,
    },
    /// Geometric: first restart after `base` conflicts, each subsequent
    /// interval multiplied by `factor`.
    Geometric {
        /// Conflicts before the first restart.
        base: u64,
        /// Interval growth per restart (> 1.0).
        factor: f64,
    },
}

impl RestartSchedule {
    /// Conflict budget of the `i`-th restart interval (0-based).
    fn interval(self, i: u32) -> u64 {
        match self {
            RestartSchedule::Luby { base } => base * luby(i),
            RestartSchedule::Geometric { base, factor } => {
                (base as f64 * factor.powi(i as i32)).min(1e18) as u64
            }
        }
    }
}

/// Tunable search heuristics. [`SearchConfig::default`] reproduces the
/// historical serial behaviour exactly (Luby-100 restarts, VSIDS decay
/// 0.95, saved phases untouched), so a default-configured solve is
/// bit-identical to the pre-configurable solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Restart schedule.
    pub restart: RestartSchedule,
    /// VSIDS activity decay per conflict (`var_inc /= var_decay`).
    pub var_decay: f64,
    /// When set, initial phase polarities are scrambled from this
    /// splitmix64 seed before the search starts (portfolio
    /// diversification); `None` keeps the saved phases as-is.
    pub phase_seed: Option<u64>,
    /// Chronological-backtracking threshold (Nadel & Ryvchin, SAT'18).
    /// When a conflict's computed backjump would unwind more than this
    /// many levels, the solver backtracks a single level instead and
    /// asserts the learnt clause there — the clause is unit at every
    /// level between the backjump target and the conflict level, so
    /// this is sound, and it keeps deep, expensively propagated trail
    /// prefixes intact. `None` (the default) always backjumps — the
    /// historical behaviour the `threads == 1` bit-identical contract
    /// freezes. Opt-in: on the miter workloads the saved re-propagation
    /// is outweighed by the conflict-count explosion from asserting
    /// learnt clauses at inflated levels, so no built-in strategy
    /// enables it; it remains a diversification axis for callers whose
    /// instances reward it.
    pub chrono: Option<u32>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            restart: RestartSchedule::Luby { base: 100 },
            var_decay: 0.95,
            phase_seed: None,
            chrono: None,
        }
    }
}

/// Solver statistics, reset by [`Solver::new`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
}

/// Tri-state result of a budgeted solve ([`Solver::solve_under`]).
///
/// `Unknown` means the budget ran out before the solver reached a
/// verdict — the formula may be either satisfiable or unsatisfiable. The
/// solver itself stays consistent (trail unwound to level 0, learnt
/// clauses kept) and may be re-solved with a fresh budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Satisfiable; the model is available through [`Solver::value`].
    Sat,
    /// Proven unsatisfiable (under the given assumptions).
    Unsat,
    /// Budget exhausted before a verdict.
    Unknown {
        /// Conflicts spent in this call before giving up.
        conflicts: u64,
        /// Which budget limit tripped.
        reason: Reason,
    },
}

impl SolveOutcome {
    /// `true` only for a proven [`SolveOutcome::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveOutcome::Sat
    }

    /// `true` only for a proven [`SolveOutcome::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveOutcome::Unsat
    }

    /// `true` if the budget ran out before a verdict.
    pub fn is_unknown(self) -> bool {
        matches!(self, SolveOutcome::Unknown { .. })
    }
}

/// A CDCL SAT solver.
///
/// # Example
///
/// ```
/// use rsn_sat::{Lit, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b): forces a = b = true.
/// s.add_clause([Lit::pos(a), Lit::pos(b)]);
/// s.add_clause([Lit::neg(a), Lit::pos(b)]);
/// s.add_clause([Lit::pos(a), Lit::neg(b)]);
/// assert!(s.solve());
/// assert_eq!(s.value(a), Some(true));
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clauses currently watching the
    /// literal (visited when the literal becomes false).
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    unsat: bool,
    stats: Stats,
    max_learnts: f64,
    /// Temporary buffer for conflict analysis.
    seen: Vec<bool>,
    /// Failed-assumption core of the last unsatisfiable solve.
    core: Vec<Lit>,
    /// Search heuristics (restart schedule, VSIDS decay, phase seed).
    config: SearchConfig,
    /// Worker count for budgeted solves; 1 = the exact serial loop,
    /// > 1 dispatches through the portfolio (see [`crate::portfolio`]).
    threads: usize,
    /// LBD samples of clauses learnt since the last drain; exported to
    /// the `sat.learnt_lbd` histogram once per solve (merging beats
    /// taking the global metrics lock on every conflict).
    lbd_acc: rsn_obs::Histogram,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarOrder::default(),
            phase: Vec::new(),
            unsat: false,
            stats: Stats::default(),
            max_learnts: 1000.0,
            seen: Vec::new(),
            core: Vec::new(),
            config: SearchConfig::default(),
            threads: 1,
            lbd_acc: rsn_obs::Histogram::new(),
        }
    }

    /// Replaces the search heuristics (restart schedule, VSIDS decay,
    /// phase scrambling seed). The default reproduces the serial solver
    /// exactly; portfolio workers diversify over this.
    pub fn set_search_config(&mut self, config: SearchConfig) {
        self.config = config;
    }

    /// Current search heuristics.
    pub fn search_config(&self) -> SearchConfig {
        self.config
    }

    /// Sets the worker count used by budgeted solves. `1` (the default)
    /// keeps the exact serial CDCL loop — bit-identical verdicts and
    /// stats; `n > 1` routes [`Solver::solve_with_under`] (and therefore
    /// `solve_with`, `solve`, `solve_with_core`, `shrink_core_under`)
    /// through an `n`-worker portfolio with shared learnt clauses.
    /// Values are clamped to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Worker count used by budgeted solves.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (including learnt, excluding deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Solver statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    fn lit_value(&self, l: Lit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNDEF {
            UNDEF
        } else {
            (a != 0) as u8 ^ (l.is_neg() as u8)
        }
    }

    fn lit_is_true(&self, l: Lit) -> bool {
        self.lit_value(l) == 1
    }

    fn lit_is_false(&self, l: Lit) -> bool {
        self.lit_value(l) == 0
    }

    /// Unwinds the trail to the root level, retracting any assumptions
    /// left in place by a satisfiable solve so new clauses may be added.
    /// Invalidates the current model.
    pub fn retract(&mut self) {
        self.backtrack(0);
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause after simplification).
    ///
    /// Clauses may only be added at decision level 0 (i.e. between `solve`
    /// calls); literals already falsified at level 0 are removed and
    /// satisfied clauses dropped.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if self.unsat {
            return false;
        }
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "unallocated variable {}",
                l.var()
            );
        }
        c.sort_unstable();
        c.dedup();
        // Tautology or satisfied?
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true; // l and ¬l
            }
        }
        c.retain(|&l| !self.lit_is_false(l));
        if c.iter().any(|&l| self.lit_is_true(l)) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(cref);
        self.watches[(!lits[1]).code()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        });
        if learnt {
            self.stats.learnts += 1;
        }
        cref
    }

    /// Literal block distance of a clause under the current assignment:
    /// the number of distinct non-zero decision levels among its
    /// literals. Must be called before backtracking discards the levels.
    fn clause_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index()])
            .filter(|&lv| lv > 0)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        (levels.len() as u32).max(1)
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.lit_value(l) == UNDEF);
        let v = l.var();
        self.assign[v.index()] = l.polarity() as u8;
        self.level[v.index()] = self.trail_lim.len() as u32;
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.polarity();
        self.trail.push(l);
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation; returns the conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be inspected: p became true, so
            // their watch on ¬p is falsified. Our watch lists are indexed
            // by the falsified literal: watches[l] holds clauses that have
            // ¬l among their first two literals... We store: a clause with
            // watched literals w0, w1 appears in watches[(!w0).code()] and
            // watches[(!w1).code()], so when w becomes false (¬w = p true)
            // we look at watches[p.code()].
            let mut i = 0;
            'next_clause: while i < self.watches[p.code()].len() {
                let cref = self.watches[p.code()][i];
                if self.clauses[cref].deleted {
                    self.watches[p.code()].swap_remove(i);
                    continue;
                }
                // The falsified literal is ¬p.
                let false_lit = !p;
                // Normalize so that lits[1] is the falsified watch.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if self.lit_is_true(first) {
                    i += 1;
                    continue;
                }
                // Search a new watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let l = self.clauses[cref].lits[k];
                    if !self.lit_is_false(l) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!l).code()].push(cref);
                        self.watches[p.code()].swap_remove(i);
                        continue 'next_clause;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_is_false(first) {
                    self.prop_head = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v, &self.activity);
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e100 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for UIP
        let mut counter = 0usize;
        // Variable of the literal whose reason is currently being expanded
        // (skip it: the reason clause contains the propagated literal).
        let mut p_var: Option<Var> = None;
        let mut p_lit: Option<Lit>;
        let mut cref = conflict;
        let mut trail_idx = self.trail.len();
        let cur_level = self.current_level();

        loop {
            self.bump_clause(cref);
            let lits = self.clauses[cref].lits.clone();
            for &q in lits.iter() {
                if Some(q.var()) == p_var {
                    continue;
                }
                let v = q.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == cur_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select next literal to expand: last seen on the trail.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().index()] {
                    p_lit = Some(!l);
                    p_var = Some(l.var());
                    break;
                }
            }
            let pv = p_var.expect("set above");
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p_lit.expect("set above");
                break;
            }
            cref = self.reason[pv.index()].expect("non-decision at current level has a reason");
        }

        // Clear seen flags of remaining literals.
        for l in learnt.iter().skip(1) {
            self.seen[l.var().index()] = false;
        }

        // Backtrack level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, to_level: u32) {
        if self.current_level() <= to_level {
            return;
        }
        let lim = self.trail_lim[to_level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = UNDEF;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(to_level as usize);
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == UNDEF {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let phase = self.phase[v.index()];
                self.enqueue(Lit::with_polarity(v, phase), None);
                return true;
            }
        }
        false
    }

    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_reason(i)
            })
            .collect();
        // Worst first: highest LBD, ties broken by lowest activity. Glue
        // clauses (LBD ≤ 2) sort last and in practice always survive.
        learnt_refs.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = learnt_refs.len() / 2;
        for &cref in learnt_refs.iter().take(to_delete) {
            self.clauses[cref].deleted = true;
            self.stats.learnts = self.stats.learnts.saturating_sub(1);
        }
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        // A clause is locked if it is the reason of its first literal.
        let c = &self.clauses[cref];
        if c.lits.is_empty() {
            return false;
        }
        let v = c.lits[0].var();
        self.reason[v.index()] == Some(cref) && self.assign[v.index()] != UNDEF
    }

    /// Solves the formula without assumptions. Returns `true` if
    /// satisfiable; the model is then available through [`Solver::value`].
    pub fn solve(&mut self) -> bool {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions. Returns `true` if satisfiable
    /// with all assumption literals forced true.
    ///
    /// The solver remains usable afterwards (assumptions are retracted), so
    /// incremental querying is supported.
    ///
    /// Each call exports its [`Stats`] delta into the global `rsn-obs`
    /// registry under `sat.conflicts`, `sat.decisions`,
    /// `sat.propagations`, `sat.restarts` plus `sat.solves` and a
    /// `sat.sat` / `sat.unsat` outcome counter.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> bool {
        match self.solve_with_under(assumptions, &Budget::unlimited()) {
            SolveOutcome::Sat => true,
            SolveOutcome::Unsat => false,
            SolveOutcome::Unknown { .. } => unreachable!("unlimited budget cannot exhaust"),
        }
    }

    /// Solves the formula under a [`Budget`], without assumptions.
    pub fn solve_under(&mut self, budget: &Budget) -> SolveOutcome {
        self.solve_with_under(&[], budget)
    }

    /// Solves under assumptions and a [`Budget`].
    ///
    /// One work unit is spent on entry (so a zero budget deterministically
    /// yields `Unknown`) and one per conflict, so a work-unit limit
    /// bounds the number of conflicts and a deadline is honoured within
    /// one clock stride of conflicts. On exhaustion the trail is unwound to
    /// level 0 and [`SolveOutcome::Unknown`] is returned; the solver
    /// stays usable (learnt clauses are kept), and an exhausted budget
    /// makes every later call return `Unknown` immediately.
    ///
    /// Unknown outcomes count into `sat.unknown` and `budget.exhausted`,
    /// and record a [`rsn_obs::record_budget_trip`] backtrace. Each call
    /// also samples the `sat.solve_ns` / `sat.solve_conflicts` histograms
    /// and attributes its budget work (conflicts + the entry unit) to
    /// `budget.spent{engine=sat}`.
    pub fn solve_with_under(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        // Chaos failpoint: `panic`/`delay` fire inside `eval`; an
        // injected error or budget exhaustion cancels the caller's
        // budget, so this call (and the rest of its request) degrades
        // through the normal `Unknown` path instead of dying.
        if rsn_fail::eval("sat.solve").is_some() {
            budget.cancel();
        }
        if self.threads > 1 {
            return crate::portfolio::solve_portfolio(self, assumptions, budget, self.threads);
        }
        self.solve_serial_instrumented(assumptions, budget)
    }

    /// Portfolio solve without assumptions: `threads` diversified CDCL
    /// workers race on clones of this solver, sharing short learnt
    /// clauses; instances surviving the conflict quota escalate to
    /// cube-and-conquer. `threads == 1` takes the exact serial loop —
    /// same verdict, same [`Stats`] as [`Solver::solve_under`].
    pub fn solve_portfolio_under(&mut self, budget: &Budget, threads: usize) -> SolveOutcome {
        self.solve_portfolio_with_under(&[], budget, threads)
    }

    /// Portfolio solve under assumptions; see
    /// [`Solver::solve_portfolio_under`]. On `Unsat` the winner's
    /// failed-assumption core is available through [`Solver::core`],
    /// on `Sat` the winner's model through [`Solver::value`] — exactly
    /// as after a serial solve.
    pub fn solve_portfolio_with_under(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
        threads: usize,
    ) -> SolveOutcome {
        if rsn_fail::eval("sat.solve").is_some() {
            budget.cancel();
        }
        if threads <= 1 {
            return self.solve_serial_instrumented(assumptions, budget);
        }
        crate::portfolio::solve_portfolio(self, assumptions, budget, threads)
    }

    fn solve_serial_instrumented(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        let _trace = rsn_obs::TraceGuard::new("sat_solve");
        let start = std::time::Instant::now();
        let before = self.stats;
        let result = self.solve_with_inner(assumptions, budget);
        let after = self.stats;
        let conflicts = after.conflicts - before.conflicts;
        rsn_obs::counter_add("sat.solves", 1);
        rsn_obs::counter_add("sat.conflicts", conflicts);
        rsn_obs::counter_add("sat.decisions", after.decisions - before.decisions);
        rsn_obs::counter_add("sat.propagations", after.propagations - before.propagations);
        rsn_obs::counter_add("sat.restarts", after.restarts - before.restarts);
        rsn_obs::hist_record("sat.solve_ns", start.elapsed().as_nanos() as u64);
        rsn_obs::hist_record("sat.solve_conflicts", conflicts);
        // One budget unit is spent on entry, one per conflict (see above).
        rsn_obs::counter_add("budget.spent{engine=sat}", conflicts + 1);
        if !self.lbd_acc.is_empty() {
            let lbd = std::mem::replace(&mut self.lbd_acc, rsn_obs::Histogram::new());
            rsn_obs::hist_merge("sat.learnt_lbd", &lbd);
        }
        match result {
            SolveOutcome::Sat => rsn_obs::counter_add("sat.sat", 1),
            SolveOutcome::Unsat => rsn_obs::counter_add("sat.unsat", 1),
            SolveOutcome::Unknown { reason, .. } => {
                rsn_obs::counter_add("sat.unknown", 1);
                rsn_obs::counter_add("budget.exhausted", 1);
                rsn_obs::record_budget_trip("sat", reason.as_str());
            }
        }
        result
    }

    fn solve_with_inner(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.solve_inner_para(assumptions, budget, None)
    }

    /// The CDCL loop. `para` is `None` for the serial path and carries
    /// the portfolio context (sibling stop flag, shared clause pool,
    /// conflict quota) for portfolio workers; every `para` hook is
    /// behind an `if`, so the serial path is the exact historical loop.
    pub(crate) fn solve_inner_para(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
        para: Option<&crate::portfolio::ParaCtx>,
    ) -> SolveOutcome {
        // The core describes the *last* unsatisfiable answer only; an
        // empty core on Unsat means the formula needs no assumptions.
        self.core.clear();
        if self.unsat {
            return SolveOutcome::Unsat;
        }
        let conflicts_at_entry = self.stats.conflicts;
        // An already-exhausted (or zero) budget admits no search at all.
        if let Err(e) = budget.check() {
            return SolveOutcome::Unknown {
                conflicts: 0,
                reason: e.reason,
            };
        }
        if let Some(ctx) = para {
            if let Some(seed) = self.config.phase_seed {
                self.scramble_phases(seed ^ ctx.author as u64);
            }
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveOutcome::Unsat;
        }

        let mut restart_index = 0u32;
        let mut conflicts_until_restart = self.config.restart.interval(restart_index);
        let mut conflict_count_local = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflict_count_local += 1;
                if self.current_level() as usize <= assumptions.len() {
                    // Conflict among assumptions/root: unsat under
                    // assumptions (formula itself unsat only without them).
                    if assumptions.is_empty() {
                        self.unsat = true;
                    } else {
                        let seeds = self.clauses[conflict].lits.clone();
                        self.core = self.analyze_final(&seeds, assumptions);
                    }
                    self.backtrack(0);
                    return SolveOutcome::Unsat;
                }
                if let Err(e) = budget.check() {
                    self.backtrack(0);
                    return SolveOutcome::Unknown {
                        conflicts: self.stats.conflicts - conflicts_at_entry,
                        reason: e.reason,
                    };
                }
                if let Some(ctx) = para {
                    // A sibling proved the verdict — this worker's result
                    // is discarded, so Unknown/Cancelled is accurate.
                    if ctx.stopped() {
                        self.backtrack(0);
                        return SolveOutcome::Unknown {
                            conflicts: self.stats.conflicts - conflicts_at_entry,
                            reason: Reason::Cancelled,
                        };
                    }
                    // Quota exceeded: hand the instance to cube-and-conquer.
                    if ctx
                        .quota
                        .is_some_and(|q| self.stats.conflicts - conflicts_at_entry >= q)
                    {
                        self.backtrack(0);
                        return SolveOutcome::Unknown {
                            conflicts: self.stats.conflicts - conflicts_at_entry,
                            reason: Reason::WorkLimit,
                        };
                    }
                }
                let (learnt, bt_level) = self.analyze(conflict);
                let lbd = self.clause_lbd(&learnt);
                self.lbd_acc.record(lbd as u64);
                if let Some(ctx) = para {
                    if let Some(pool) = ctx.pool {
                        pool.publish(&learnt, lbd, ctx.author);
                    }
                }
                // Never backtrack past the assumption levels.
                let bt = bt_level
                    .max(assumptions.len() as u32)
                    .min(self.current_level() - 1);
                // Chronological backtracking: a learnt clause with ≥ 2
                // literals is unit at every level in `bt..current`, so
                // when the jump would discard more than the configured
                // number of levels, retreat one level instead and assert
                // it there. Unit learnts always take the full jump — they
                // belong at the root (or the assumption prefix), and
                // asserting them higher with no reason clause would
                // masquerade as a decision during conflict analysis.
                let bt = match self.config.chrono {
                    Some(t) if learnt.len() >= 2 && self.current_level() - 1 - bt > t => {
                        self.current_level() - 1
                    }
                    _ => bt,
                };
                self.backtrack(bt);
                if learnt.len() == 1 && bt == 0 {
                    if self.lit_value(learnt[0]) == UNDEF {
                        self.enqueue(learnt[0], None);
                    } else if self.lit_is_false(learnt[0]) {
                        if assumptions.is_empty() {
                            self.unsat = true;
                        }
                        self.backtrack(0);
                        return SolveOutcome::Unsat;
                    }
                } else if learnt.len() == 1 {
                    // Asserting unit but we could not go to level 0 due to
                    // assumptions; enqueue if possible.
                    if self.lit_value(learnt[0]) == UNDEF {
                        self.enqueue(learnt[0], None);
                    } else if self.lit_is_false(learnt[0]) {
                        if !assumptions.is_empty() {
                            self.core = self.analyze_final(&learnt, assumptions);
                        }
                        self.backtrack(0);
                        return SolveOutcome::Unsat;
                    }
                } else {
                    let cref = self.attach_clause(learnt.clone(), true, lbd);
                    if self.lit_value(learnt[0]) == UNDEF {
                        self.enqueue(learnt[0], Some(cref));
                    } else if self.lit_is_false(learnt[0]) {
                        if !assumptions.is_empty() {
                            self.core = self.analyze_final(&learnt, assumptions);
                        }
                        self.backtrack(0);
                        if assumptions.is_empty() {
                            self.unsat = true;
                        }
                        return SolveOutcome::Unsat;
                    }
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= 0.999;
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
            } else {
                // Restart?
                if conflict_count_local >= conflicts_until_restart {
                    conflict_count_local = 0;
                    restart_index += 1;
                    conflicts_until_restart = self.config.restart.interval(restart_index);
                    self.stats.restarts += 1;
                    if para.is_some_and(|ctx| ctx.pool.is_some()) {
                        // Clause import happens at level 0 so imported
                        // units live below the assumption pseudo-decisions
                        // (keeping `analyze_final` cores valid); the
                        // assumptions are re-placed by the loop below.
                        self.backtrack(0);
                        let ctx = para.expect("checked above");
                        if !self.import_pool(ctx) {
                            // An imported clause (all F-implied) closed the
                            // proof: unsat regardless of assumptions.
                            self.core.clear();
                            self.unsat = true;
                            return SolveOutcome::Unsat;
                        }
                    } else {
                        self.backtrack(assumptions.len() as u32);
                    }
                    // Restart boundary: re-read the wall clock even if no
                    // conflict crossed a stride since the last check.
                    if let Some(reason) = budget.poll() {
                        self.backtrack(0);
                        return SolveOutcome::Unknown {
                            conflicts: self.stats.conflicts - conflicts_at_entry,
                            reason,
                        };
                    }
                }
                if para.is_some_and(|ctx| ctx.stopped()) {
                    self.backtrack(0);
                    return SolveOutcome::Unknown {
                        conflicts: self.stats.conflicts - conflicts_at_entry,
                        reason: Reason::Cancelled,
                    };
                }
                // Place assumptions as pseudo-decisions.
                if (self.current_level() as usize) < assumptions.len() {
                    let a = assumptions[self.current_level() as usize];
                    if self.lit_is_true(a) {
                        // Already satisfied; open an empty decision level to
                        // keep level bookkeeping aligned.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    if self.lit_is_false(a) {
                        // ¬a is implied by earlier assumptions (or at the
                        // root); the refutation is that implication plus
                        // the assumption `a` itself.
                        let mut core = self.analyze_final(&[a], assumptions);
                        if !core.contains(&a) {
                            core.push(a);
                        }
                        self.core = core;
                        self.backtrack(0);
                        return SolveOutcome::Unsat;
                    }
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, None);
                    continue;
                }
                if !self.decide() {
                    return SolveOutcome::Sat; // full assignment
                }
            }
        }
    }

    /// MiniSat-style final-conflict analysis. `seeds` are literals that
    /// are falsified (or whose falsification is being explained) under
    /// the assumption pseudo-decisions; the implication trail is walked
    /// backwards from them, expanding reasons, and the assumption
    /// literals reached as decisions form the failed-assumption core.
    ///
    /// Must run *before* backtracking. If a non-assumption decision is
    /// ever reached (which the solve loop's backtrack clamping should
    /// rule out), the full assumption list is returned instead — still a
    /// valid core, merely untight.
    fn analyze_final(&mut self, seeds: &[Lit], assumptions: &[Lit]) -> Vec<Lit> {
        let mut core = Vec::new();
        if assumptions.is_empty() || self.trail_lim.is_empty() {
            return core;
        }
        let mut marked = 0usize;
        for &l in seeds {
            let v = l.var();
            if self.assign[v.index()] != UNDEF && self.level[v.index()] > 0 && !self.seen[v.index()]
            {
                self.seen[v.index()] = true;
                marked += 1;
            }
        }
        let mut clean = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            if marked == 0 {
                break;
            }
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            self.seen[v.index()] = false;
            marked -= 1;
            match self.reason[v.index()] {
                None => {
                    // A decision. Levels 1..=assumptions.len() hold the
                    // assumption pseudo-decisions; the enqueued literal is
                    // the assumption itself.
                    if self.level[v.index()] as usize <= assumptions.len() {
                        core.push(l);
                    } else {
                        debug_assert!(false, "non-assumption decision in final conflict");
                        clean = false;
                    }
                }
                Some(cref) => {
                    let lits = self.clauses[cref].lits.clone();
                    for &q in &lits {
                        let qv = q.var();
                        if qv != v && self.level[qv.index()] > 0 && !self.seen[qv.index()] {
                            self.seen[qv.index()] = true;
                            marked += 1;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(marked, 0, "every marked var lies on the trail");
        if marked > 0 {
            // Unreachable by construction; keep `seen` pristine anyway.
            for i in start..self.trail.len() {
                self.seen[self.trail[i].var().index()] = false;
            }
        }
        if clean {
            core
        } else {
            assumptions.to_vec()
        }
    }

    /// Failed-assumption core of the most recent unsatisfiable solve: a
    /// subset of the assumption literals whose conjunction with the
    /// formula is already unsatisfiable. Empty when the formula is
    /// unsatisfiable without any assumptions. Overwritten by every solve
    /// call (and cleared on `Sat`/`Unknown` outcomes), so read it right
    /// after the `Unsat` verdict.
    pub fn core(&self) -> &[Lit] {
        &self.core
    }

    /// Solves under assumptions; on an unsatisfiable outcome returns the
    /// failed-assumption core (see [`Solver::core`]), `None` when
    /// satisfiable. The returned core is a valid but not necessarily
    /// minimal subset — pass it to [`Solver::shrink_core_under`] for
    /// deletion-based minimization.
    pub fn solve_with_core(&mut self, assumptions: &[Lit]) -> Option<Vec<Lit>> {
        if self.solve_with(assumptions) {
            None
        } else {
            Some(self.core.clone())
        }
    }

    /// Budget-aware deletion-based minimization of a failed-assumption
    /// core: each member is dropped in turn and the remainder re-solved;
    /// `Unsat` answers also *refine* the working core to the solver's
    /// newly extracted (possibly smaller) one. Returns the shrunk core
    /// and a flag that is `true` iff the pass completed, i.e. every
    /// surviving member was proven necessary (dropping it alone makes
    /// the query satisfiable) — a minimal unsatisfiable subset.
    ///
    /// On budget exhaustion the current (still valid, unminimized) core
    /// is returned with `false`; the routine never hangs.
    pub fn shrink_core_under(&mut self, core: &[Lit], budget: &Budget) -> (Vec<Lit>, bool) {
        let mut cur: Vec<Lit> = core.to_vec();
        // Every literal is tested exactly once; refinement may delete
        // queued literals early, in which case they are skipped.
        let mut queue: Vec<Lit> = cur.clone();
        while let Some(cand) = queue.pop() {
            if !cur.contains(&cand) {
                continue; // dropped by an earlier refinement
            }
            if budget.check().is_err() {
                return (cur, false);
            }
            let trial: Vec<Lit> = cur.iter().copied().filter(|&l| l != cand).collect();
            match self.solve_with_under(&trial, budget) {
                SolveOutcome::Unsat => {
                    // cand is redundant; adopt the refined core (a subset
                    // of `trial`, so necessity of already-kept members is
                    // preserved by monotonicity).
                    cur = self.core.clone();
                }
                SolveOutcome::Sat => {} // cand is necessary, keep it
                SolveOutcome::Unknown { .. } => return (cur, false),
            }
        }
        (cur, true)
    }

    /// Model value of a variable after a satisfiable [`Solver::solve`] call,
    /// `None` if unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            UNDEF => None,
            x => Some(x != 0),
        }
    }

    /// Model value of a literal after a satisfiable solve call.
    pub fn lit_value_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.polarity())
    }

    /// Imports clauses published by sibling portfolio workers since this
    /// worker's last import. Must run at decision level 0 — imported
    /// units are enqueued as root facts (below the assumption
    /// pseudo-decisions, keeping [`Solver::analyze_final`] cores valid).
    /// Returns `false` when an import proves unsatisfiability outright;
    /// every shared clause is implied by the formula alone, so that
    /// verdict holds for any assumptions.
    fn import_pool(&mut self, ctx: &crate::portfolio::ParaCtx) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "imports only at level 0");
        let pool = ctx.pool.expect("import_pool requires a pool");
        let mut batch = Vec::new();
        let seen = ctx.last_seen.get();
        ctx.last_seen
            .set(pool.collect_since(seen, ctx.author, &mut batch));
        'clauses: for (mut lits, lbd) in batch {
            // At level 0 every assigned literal is a root fact: a true
            // literal satisfies the clause forever, a false one can be
            // stripped without changing the clause's models.
            let mut w = 0;
            for i in 0..lits.len() {
                match self.lit_value(lits[i]) {
                    1 => continue 'clauses,
                    0 => {}
                    _ => {
                        lits[w] = lits[i];
                        w += 1;
                    }
                }
            }
            lits.truncate(w);
            match lits.len() {
                0 => return false,
                1 => {
                    // Propagate immediately so later clauses in the batch
                    // are filtered against the strengthened root.
                    self.enqueue(lits[0], None);
                    if self.propagate().is_some() {
                        return false;
                    }
                }
                _ => {
                    self.attach_clause(lits, true, lbd);
                }
            }
        }
        true
    }

    /// Reinitializes every saved phase from a splitmix64 stream
    /// (portfolio diversification).
    pub(crate) fn scramble_phases(&mut self, seed: u64) {
        let mut state = seed;
        for p in &mut self.phase {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *p = z & 1 == 1;
        }
    }

    /// Drains the locally accumulated LBD samples (see `lbd_acc`).
    pub(crate) fn take_lbd_hist(&mut self) -> rsn_obs::Histogram {
        std::mem::replace(&mut self.lbd_acc, rsn_obs::Histogram::new())
    }

    /// Folds a losing worker's LBD samples into this solver's local
    /// accumulator so one `sat.learnt_lbd` merge covers the whole
    /// portfolio.
    pub(crate) fn merge_lbd_hist(&mut self, h: &rsn_obs::Histogram) {
        self.lbd_acc.merge(h);
    }

    /// Overwrites the failed-assumption core (cube-and-conquer unions
    /// per-cube cores into a whole-query core).
    pub(crate) fn set_core_direct(&mut self, core: Vec<Lit>) {
        self.core = core;
    }

    /// Latches the formula as unsatisfiable (set when a cube partition
    /// refutes every branch of an assumption-free query).
    pub(crate) fn mark_unsat(&mut self) {
        self.unsat = true;
    }

    /// Folds a losing worker's flow counters into these stats so the
    /// portfolio's exported totals account for all work performed.
    pub(crate) fn add_flow_stats(&mut self, delta: Stats) {
        self.stats.conflicts += delta.conflicts;
        self.stats.decisions += delta.decisions;
        self.stats.propagations += delta.propagations;
        self.stats.restarts += delta.restarts;
    }

    /// Flow-counter delta (conflicts/decisions/propagations/restarts)
    /// accumulated since `before`; `learnts` is a level, not a flow, and
    /// stays 0.
    pub(crate) fn flow_delta_since(&self, before: Stats) -> Stats {
        Stats {
            conflicts: self.stats.conflicts - before.conflicts,
            decisions: self.stats.decisions - before.decisions,
            propagations: self.stats.propagations - before.propagations,
            restarts: self.stats.restarts - before.restarts,
            learnts: 0,
        }
    }

    /// The `k` unassigned variables with the highest VSIDS activity,
    /// excluding `exclude` (assumption variables) — the cube-and-conquer
    /// split variables. Call at decision level 0.
    pub(crate) fn top_active_vars(&self, k: usize, exclude: &[Var]) -> Vec<Var> {
        let mut vars: Vec<Var> = (0..self.num_vars() as u32)
            .map(Var)
            .filter(|v| self.assign[v.index()] == UNDEF && !exclude.contains(v))
            .collect();
        vars.sort_by(|a, b| {
            self.activity[b.index()]
                .partial_cmp(&self.activity[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        vars.truncate(k);
        vars
    }

    /// Root-level failed-literal probing over the `max_vars` most active
    /// unassigned variables. Each candidate `v` is propagated in both
    /// polarities at a throwaway decision level: a branch that conflicts
    /// forces the opposite literal at the root, and a literal implied by
    /// *both* branches is forced too. Discovered units are enqueued at
    /// level 0 and propagated immediately, so later probes see their
    /// consequences. Returns the number of root literals fixed; the
    /// formula may be latched unsatisfiable as a side effect (check
    /// `is_unsat` / the next solve).
    ///
    /// Must be called at decision level 0 with no assumptions in place —
    /// every unit found is then implied by the formula alone, so failed
    /// -assumption cores of later solves stay valid. Probing perturbs
    /// saved phases and is therefore only used on the parallel escalation
    /// path, never under the `threads == 1` bit-identical contract.
    pub(crate) fn probe_roots(&mut self, max_vars: usize, budget: &Budget) -> u64 {
        debug_assert!(self.trail_lim.is_empty(), "probe_roots requires level 0");
        if self.unsat {
            return 0;
        }
        if self.propagate().is_some() {
            self.mark_unsat();
            return 0;
        }
        let candidates = self.top_active_vars(max_vars, &[]);
        let mut mark = vec![false; 2 * self.num_vars()];
        let mut fixed = 0u64;
        for v in candidates {
            if self.assign[v.index()] != UNDEF {
                continue; // fixed by an earlier probe's propagation
            }
            if budget.poll().is_some() {
                break;
            }
            let pos = Lit::pos(v);
            let pos_implied = self.probe_branch(pos);
            let neg_implied = self.probe_branch(!pos);
            match (pos_implied, neg_implied) {
                (None, None) => {
                    self.mark_unsat();
                    return fixed;
                }
                (None, Some(_)) => {
                    // Positive branch failed: ¬v is forced at the root.
                    fixed += 1;
                    self.enqueue(!pos, None);
                    if self.propagate().is_some() {
                        self.mark_unsat();
                        return fixed;
                    }
                }
                (Some(_), None) => {
                    // Negative branch failed: v is forced at the root.
                    fixed += 1;
                    self.enqueue(pos, None);
                    if self.propagate().is_some() {
                        self.mark_unsat();
                        return fixed;
                    }
                }
                (Some(ref p), Some(ref n)) => {
                    // Literals implied under both polarities are implied
                    // outright (skip the probed decisions themselves —
                    // their codes never coincide across branches).
                    for &l in p {
                        mark[l.code()] = true;
                    }
                    for &l in n {
                        if !mark[l.code()] || self.lit_value(l) != UNDEF {
                            continue;
                        }
                        fixed += 1;
                        self.enqueue(l, None);
                        if self.propagate().is_some() {
                            for &pl in p {
                                mark[pl.code()] = false;
                            }
                            self.mark_unsat();
                            return fixed;
                        }
                    }
                    for &l in p {
                        mark[l.code()] = false;
                    }
                }
            }
        }
        fixed
    }

    /// Propagates `l` at a throwaway decision level and unwinds. Returns
    /// the implied trail slice (including `l`), or `None` on conflict.
    fn probe_branch(&mut self, l: Lit) -> Option<Vec<Lit>> {
        if self.lit_value(l) != UNDEF {
            // Fixed since candidate selection; treat a false literal as a
            // failed branch and a true one as implying nothing new.
            return if self.lit_is_false(l) {
                None
            } else {
                Some(Vec::new())
            };
        }
        let lim = self.trail.len();
        self.trail_lim.push(lim);
        self.enqueue(l, None);
        let confl = self.propagate();
        let implied = if confl.is_none() {
            Some(self.trail[lim..].to_vec())
        } else {
            None
        };
        self.backtrack(0);
        implied
    }

    /// `true` once the formula has been latched unsatisfiable (empty
    /// clause, root conflict or a refuted assumption-free solve).
    pub(crate) fn unsat_latched(&self) -> bool {
        self.unsat
    }

    /// Snapshot of the clause database simplified against the root
    /// assignment: satisfied clauses are dropped and root-false literals
    /// stripped. With `learnts == false` the irredundant clauses are
    /// returned, prefixed by one unit clause per root fact (so the
    /// snapshot is self-contained); `learnts == true` returns the learnt
    /// clauses only. Input for the escalation-path variable elimination
    /// (see [`crate::eliminate`]). Call at decision level 0.
    pub(crate) fn root_clauses(&self, learnts: bool) -> Vec<Vec<Lit>> {
        debug_assert!(self.trail_lim.is_empty(), "snapshot requires level 0");
        let mut out = Vec::new();
        if !learnts {
            for &l in &self.trail {
                out.push(vec![l]);
            }
        }
        'clauses: for c in &self.clauses {
            if c.deleted || c.learnt != learnts {
                continue;
            }
            let mut lits = Vec::with_capacity(c.lits.len());
            for &l in &c.lits {
                if self.lit_is_true(l) {
                    continue 'clauses;
                }
                if !self.lit_is_false(l) {
                    lits.push(l);
                }
            }
            out.push(lits);
        }
        out
    }

    /// `true` if the full assignment satisfies every live clause —
    /// validation for models reconstructed after variable elimination.
    pub(crate) fn check_model(&self, model: &[bool]) -> bool {
        self.clauses
            .iter()
            .filter(|c| !c.deleted)
            .all(|c| c.lits.iter().any(|l| model[l.var().index()] != l.is_neg()))
    }

    /// Replays an externally produced full assignment as a sequence of
    /// decisions, leaving the solver in the same state as a satisfiable
    /// solve that happened to make those decisions (so [`Solver::value`],
    /// `retract` and incremental re-solving all behave normally).
    /// Propagation runs after every decision; a conflict — impossible
    /// for a genuine model — aborts the replay and returns `false` with
    /// the trail unwound, and a propagation-forced value disagreeing
    /// with `model` does the same. Call at decision level 0.
    pub(crate) fn adopt_model(&mut self, model: &[bool]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "replay requires level 0");
        debug_assert_eq!(model.len(), self.num_vars());
        if self.unsat || self.propagate().is_some() {
            return false;
        }
        for vi in 0..self.num_vars() {
            match self.assign[vi] {
                UNDEF => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(Lit::with_polarity(Var(vi as u32), model[vi]), None);
                    if self.propagate().is_some() {
                        self.backtrack(0);
                        return false;
                    }
                }
                a if (a != 0) != model[vi] => {
                    self.backtrack(0);
                    return false;
                }
                _ => {}
            }
        }
        true
    }
}

/// The Luby sequence (1,1,2,1,1,2,4,...), used for restart scheduling.
/// `i` is 0-based.
fn luby(i: u32) -> u64 {
    // 1-based recurrence: luby(n) = 2^(k-1) if n = 2^k - 1,
    // else luby(n - 2^(k-1) + 1) for 2^(k-1) <= n < 2^k - 1.
    let mut n = (i + 1) as u64;
    loop {
        if (n + 1).is_power_of_two() {
            return n.div_ceil(2);
        }
        let k = 63 - (n + 1).leading_zeros() as u64; // floor(log2(n+1))
        n -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn ln(v: Var) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve());
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a)]);
        s.add_clause([ln(a), lp(b)]);
        assert!(s.solve());
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([lp(a)]);
        assert!(!s.add_clause([ln(a)]));
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole.
        let mut s = Solver::new();
        let p = [s.new_var(), s.new_var()];
        s.add_clause([lp(p[0])]);
        s.add_clause([lp(p[1])]);
        s.add_clause([ln(p[0]), ln(p[1])]);
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // p[i][j]: pigeon i in hole j. 4 pigeons, 3 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for i in 0..4 {
            for j in 0..3 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..4 {
            s.add_clause((0..3).map(|j| lp(p[i][j])));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([ln(p[i1][j]), ln(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_is_sat_with_consistent_parity() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 0  (consistent)
        let mut s = Solver::new();
        let x: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let xor = |s: &mut Solver, a: Var, b: Var, val: bool| {
            if val {
                s.add_clause([lp(a), lp(b)]);
                s.add_clause([ln(a), ln(b)]);
            } else {
                s.add_clause([lp(a), ln(b)]);
                s.add_clause([ln(a), lp(b)]);
            }
        };
        xor(&mut s, x[0], x[1], true);
        xor(&mut s, x[1], x[2], true);
        xor(&mut s, x[0], x[2], false);
        assert!(s.solve());
        let v0 = s.value(x[0]).expect("assigned");
        let v1 = s.value(x[1]).expect("assigned");
        let v2 = s.value(x[2]).expect("assigned");
        assert!(v0 ^ v1);
        assert!(v1 ^ v2);
        assert!(!(v0 ^ v2));
    }

    #[test]
    fn xor_cycle_odd_is_unsat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 1 (odd cycle, unsat)
        let mut s = Solver::new();
        let x: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            s.add_clause([lp(x[a]), lp(x[b])]);
            s.add_clause([ln(x[a]), ln(x[b])]);
        }
        assert!(!s.solve());
    }

    #[test]
    fn assumptions_are_retractable() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a), lp(b)]);
        assert!(s.solve_with(&[ln(a)]));
        assert_eq!(s.value(b), Some(true));
        assert!(s.solve_with(&[ln(b)]));
        assert_eq!(s.value(a), Some(true));
        // Contradictory assumptions: unsat under assumptions...
        assert!(!s.solve_with(&[ln(a), ln(b)]));
        // ...but the formula itself is still satisfiable.
        assert!(s.solve());
    }

    #[test]
    fn assumption_conflicting_with_unit_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([lp(a)]);
        assert!(!s.solve_with(&[ln(a)]));
        assert!(s.solve());
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([lp(a), ln(a)]));
        assert!(s.solve());
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause([lp(a), lp(a), lp(b)]));
        s.add_clause([ln(a)]);
        assert!(s.solve());
        assert_eq!(s.value(b), Some(true));
    }

    /// 4 pigeons / 3 holes: small but guaranteed to conflict.
    fn pigeonhole_4_3() -> Solver {
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for i in 0..4 {
            for j in 0..3 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..4 {
            s.add_clause((0..3).map(|j| lp(p[i][j])));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([ln(p[i1][j]), ln(p[i2][j])]);
                }
            }
        }
        s
    }

    #[test]
    fn zero_budget_returns_unknown() {
        use rsn_budget::Budget;
        let mut s = pigeonhole_4_3();
        let out = s.solve_under(&Budget::unlimited().with_work_limit(0));
        match out {
            SolveOutcome::Unknown { conflicts, reason } => {
                assert_eq!(conflicts, 0);
                assert_eq!(reason, Reason::WorkLimit);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Solver is still usable: an unconstrained solve proves unsat.
        assert!(!s.solve());
    }

    #[test]
    fn zero_deadline_returns_unknown() {
        use rsn_budget::Budget;
        use std::time::Duration;
        let mut s = pigeonhole_4_3();
        let out = s.solve_under(&Budget::unlimited().with_deadline(Duration::ZERO));
        assert_eq!(
            out,
            SolveOutcome::Unknown {
                conflicts: 0,
                reason: Reason::Deadline
            }
        );
    }

    #[test]
    fn conflict_budget_bounds_search_and_preserves_solver() {
        use rsn_budget::Budget;
        let mut s = pigeonhole_4_3();
        // 1 entry unit + conflict units; the conflict whose check trips
        // is already counted, so at most `limit` conflicts happen.
        let out = s.solve_under(&Budget::unlimited().with_work_limit(3));
        match out {
            SolveOutcome::Unknown { conflicts, reason } => {
                assert!(conflicts <= 3, "overran conflict budget: {conflicts}");
                assert_eq!(reason, Reason::WorkLimit);
            }
            // A 12-var pigeonhole needs more than 2 conflicts.
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Re-solving with a fresh, bigger budget finishes the proof.
        let out = s.solve_under(&Budget::unlimited().with_work_limit(1_000_000));
        assert_eq!(out, SolveOutcome::Unsat);
    }

    #[test]
    fn exhausted_budget_is_latched_across_solves() {
        use rsn_budget::Budget;
        let budget = Budget::unlimited().with_work_limit(0);
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([lp(a)]);
        assert!(s.solve_under(&budget).is_unknown());
        // Same budget again: still Unknown, even for a trivial formula.
        assert!(s.solve_under(&budget).is_unknown());
        // A fresh budget resolves it.
        assert!(s.solve_under(&Budget::unlimited()).is_sat());
    }

    #[test]
    fn cancel_token_aborts_solve() {
        use rsn_budget::Budget;
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let mut s = pigeonhole_4_3();
        assert_eq!(
            s.solve_under(&budget),
            SolveOutcome::Unknown {
                conflicts: 0,
                reason: Reason::Cancelled
            }
        );
    }

    #[test]
    fn budgeted_outcomes_match_unbudgeted_verdicts() {
        use rsn_budget::Budget;
        let generous = Budget::unlimited().with_work_limit(10_000_000);
        let mut s = pigeonhole_4_3();
        assert_eq!(s.solve_under(&generous), SolveOutcome::Unsat);

        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a), lp(b)]);
        s.add_clause([ln(a), lp(b)]);
        assert_eq!(
            s.solve_with_under(&[lp(a)], &Budget::unlimited()),
            SolveOutcome::Sat
        );
        assert_eq!(s.value(b), Some(true));
    }

    /// Brute-force evaluation for cross-checking.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        for m in 0u32..(1 << num_vars) {
            let val = |l: Lit| {
                let bit = (m >> l.var().0) & 1 == 1;
                bit == l.polarity()
            };
            if clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _round in 0..200 {
            let nv = 4 + (next() % 5) as usize; // 4..8 vars
            let nc = 5 + (next() % 25) as usize;
            let clauses: Vec<Vec<Lit>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = Var(next() % nv as u32);
                            if next() % 2 == 0 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            let mut trivially_unsat = false;
            for c in &clauses {
                if !s.add_clause(c.iter().copied()) {
                    trivially_unsat = true;
                }
            }
            let expected = brute_force_sat(nv, &clauses);
            let got = if trivially_unsat { false } else { s.solve() };
            assert_eq!(got, expected, "clauses: {clauses:?}");
            if got {
                // Verify the model.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_value_model(l) == Some(true)),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }
}
