//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the MiniSat architecture: two-watched-literal
//! propagation, first-UIP conflict analysis, VSIDS variable activities with
//! a lazily-updated binary heap, phase saving, Luby restarts, and
//! activity-based reduction of the learnt-clause database.

#![allow(clippy::needless_range_loop)]
use crate::lit::{Lit, Var};
use rsn_budget::{Budget, Reason};

/// Undefined/true/false assignment value.
const UNDEF: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

type ClauseRef = usize;

/// Maximum-activity variable order (binary heap with position index).
#[derive(Debug, Clone, Default)]
struct VarOrder {
    heap: Vec<Var>,
    pos: Vec<usize>, // usize::MAX if not in heap
}

impl VarOrder {
    fn contains(&self, v: Var) -> bool {
        v.index() < self.pos.len() && self.pos[v.index()] != usize::MAX
    }

    fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, usize::MAX);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bump(&mut self, v: Var, act: &[f64]) {
        if let Some(&i) = self.pos.get(v.index()) {
            if i != usize::MAX {
                self.sift_up(i, act);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}

/// Solver statistics, reset by [`Solver::new`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
}

/// Tri-state result of a budgeted solve ([`Solver::solve_under`]).
///
/// `Unknown` means the budget ran out before the solver reached a
/// verdict — the formula may be either satisfiable or unsatisfiable. The
/// solver itself stays consistent (trail unwound to level 0, learnt
/// clauses kept) and may be re-solved with a fresh budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Satisfiable; the model is available through [`Solver::value`].
    Sat,
    /// Proven unsatisfiable (under the given assumptions).
    Unsat,
    /// Budget exhausted before a verdict.
    Unknown {
        /// Conflicts spent in this call before giving up.
        conflicts: u64,
        /// Which budget limit tripped.
        reason: Reason,
    },
}

impl SolveOutcome {
    /// `true` only for a proven [`SolveOutcome::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveOutcome::Sat
    }

    /// `true` only for a proven [`SolveOutcome::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveOutcome::Unsat
    }

    /// `true` if the budget ran out before a verdict.
    pub fn is_unknown(self) -> bool {
        matches!(self, SolveOutcome::Unknown { .. })
    }
}

/// A CDCL SAT solver.
///
/// # Example
///
/// ```
/// use rsn_sat::{Lit, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b): forces a = b = true.
/// s.add_clause([Lit::pos(a), Lit::pos(b)]);
/// s.add_clause([Lit::neg(a), Lit::pos(b)]);
/// s.add_clause([Lit::pos(a), Lit::neg(b)]);
/// assert!(s.solve());
/// assert_eq!(s.value(a), Some(true));
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clauses currently watching the
    /// literal (visited when the literal becomes false).
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    unsat: bool,
    stats: Stats,
    max_learnts: f64,
    /// Temporary buffer for conflict analysis.
    seen: Vec<bool>,
    /// Failed-assumption core of the last unsatisfiable solve.
    core: Vec<Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarOrder::default(),
            phase: Vec::new(),
            unsat: false,
            stats: Stats::default(),
            max_learnts: 1000.0,
            seen: Vec::new(),
            core: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (including learnt, excluding deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Solver statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    fn lit_value(&self, l: Lit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNDEF {
            UNDEF
        } else {
            (a != 0) as u8 ^ (l.is_neg() as u8)
        }
    }

    fn lit_is_true(&self, l: Lit) -> bool {
        self.lit_value(l) == 1
    }

    fn lit_is_false(&self, l: Lit) -> bool {
        self.lit_value(l) == 0
    }

    /// Unwinds the trail to the root level, retracting any assumptions
    /// left in place by a satisfiable solve so new clauses may be added.
    /// Invalidates the current model.
    pub fn retract(&mut self) {
        self.backtrack(0);
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause after simplification).
    ///
    /// Clauses may only be added at decision level 0 (i.e. between `solve`
    /// calls); literals already falsified at level 0 are removed and
    /// satisfied clauses dropped.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if self.unsat {
            return false;
        }
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "unallocated variable {}",
                l.var()
            );
        }
        c.sort_unstable();
        c.dedup();
        // Tautology or satisfied?
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true; // l and ¬l
            }
        }
        c.retain(|&l| !self.lit_is_false(l));
        if c.iter().any(|&l| self.lit_is_true(l)) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(cref);
        self.watches[(!lits[1]).code()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.stats.learnts += 1;
        }
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.lit_value(l) == UNDEF);
        let v = l.var();
        self.assign[v.index()] = l.polarity() as u8;
        self.level[v.index()] = self.trail_lim.len() as u32;
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.polarity();
        self.trail.push(l);
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation; returns the conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be inspected: p became true, so
            // their watch on ¬p is falsified. Our watch lists are indexed
            // by the falsified literal: watches[l] holds clauses that have
            // ¬l among their first two literals... We store: a clause with
            // watched literals w0, w1 appears in watches[(!w0).code()] and
            // watches[(!w1).code()], so when w becomes false (¬w = p true)
            // we look at watches[p.code()].
            let mut i = 0;
            'next_clause: while i < self.watches[p.code()].len() {
                let cref = self.watches[p.code()][i];
                if self.clauses[cref].deleted {
                    self.watches[p.code()].swap_remove(i);
                    continue;
                }
                // The falsified literal is ¬p.
                let false_lit = !p;
                // Normalize so that lits[1] is the falsified watch.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if self.lit_is_true(first) {
                    i += 1;
                    continue;
                }
                // Search a new watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let l = self.clauses[cref].lits[k];
                    if !self.lit_is_false(l) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!l).code()].push(cref);
                        self.watches[p.code()].swap_remove(i);
                        continue 'next_clause;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_is_false(first) {
                    self.prop_head = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v, &self.activity);
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e100 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for UIP
        let mut counter = 0usize;
        // Variable of the literal whose reason is currently being expanded
        // (skip it: the reason clause contains the propagated literal).
        let mut p_var: Option<Var> = None;
        let mut p_lit: Option<Lit>;
        let mut cref = conflict;
        let mut trail_idx = self.trail.len();
        let cur_level = self.current_level();

        loop {
            self.bump_clause(cref);
            let lits = self.clauses[cref].lits.clone();
            for &q in lits.iter() {
                if Some(q.var()) == p_var {
                    continue;
                }
                let v = q.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == cur_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select next literal to expand: last seen on the trail.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().index()] {
                    p_lit = Some(!l);
                    p_var = Some(l.var());
                    break;
                }
            }
            let pv = p_var.expect("set above");
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p_lit.expect("set above");
                break;
            }
            cref = self.reason[pv.index()].expect("non-decision at current level has a reason");
        }

        // Clear seen flags of remaining literals.
        for l in learnt.iter().skip(1) {
            self.seen[l.var().index()] = false;
        }

        // Backtrack level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, to_level: u32) {
        if self.current_level() <= to_level {
            return;
        }
        let lim = self.trail_lim[to_level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = UNDEF;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(to_level as usize);
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == UNDEF {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let phase = self.phase[v.index()];
                self.enqueue(Lit::with_polarity(v, phase), None);
                return true;
            }
        }
        false
    }

    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_reason(i)
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let to_delete = learnt_refs.len() / 2;
        for &cref in learnt_refs.iter().take(to_delete) {
            self.clauses[cref].deleted = true;
            self.stats.learnts = self.stats.learnts.saturating_sub(1);
        }
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        // A clause is locked if it is the reason of its first literal.
        let c = &self.clauses[cref];
        if c.lits.is_empty() {
            return false;
        }
        let v = c.lits[0].var();
        self.reason[v.index()] == Some(cref) && self.assign[v.index()] != UNDEF
    }

    /// Solves the formula without assumptions. Returns `true` if
    /// satisfiable; the model is then available through [`Solver::value`].
    pub fn solve(&mut self) -> bool {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions. Returns `true` if satisfiable
    /// with all assumption literals forced true.
    ///
    /// The solver remains usable afterwards (assumptions are retracted), so
    /// incremental querying is supported.
    ///
    /// Each call exports its [`Stats`] delta into the global `rsn-obs`
    /// registry under `sat.conflicts`, `sat.decisions`,
    /// `sat.propagations`, `sat.restarts` plus `sat.solves` and a
    /// `sat.sat` / `sat.unsat` outcome counter.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> bool {
        match self.solve_with_under(assumptions, &Budget::unlimited()) {
            SolveOutcome::Sat => true,
            SolveOutcome::Unsat => false,
            SolveOutcome::Unknown { .. } => unreachable!("unlimited budget cannot exhaust"),
        }
    }

    /// Solves the formula under a [`Budget`], without assumptions.
    pub fn solve_under(&mut self, budget: &Budget) -> SolveOutcome {
        self.solve_with_under(&[], budget)
    }

    /// Solves under assumptions and a [`Budget`].
    ///
    /// One work unit is spent on entry (so a zero budget deterministically
    /// yields `Unknown`) and one per conflict, so a work-unit limit
    /// bounds the number of conflicts and a deadline is honoured within
    /// one clock stride of conflicts. On exhaustion the trail is unwound to
    /// level 0 and [`SolveOutcome::Unknown`] is returned; the solver
    /// stays usable (learnt clauses are kept), and an exhausted budget
    /// makes every later call return `Unknown` immediately.
    ///
    /// Unknown outcomes count into `sat.unknown` and `budget.exhausted`,
    /// and record a [`rsn_obs::record_budget_trip`] backtrace. Each call
    /// also samples the `sat.solve_ns` / `sat.solve_conflicts` histograms
    /// and attributes its budget work (conflicts + the entry unit) to
    /// `budget.spent{engine=sat}`.
    pub fn solve_with_under(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        // Chaos failpoint: `panic`/`delay` fire inside `eval`; an
        // injected error or budget exhaustion cancels the caller's
        // budget, so this call (and the rest of its request) degrades
        // through the normal `Unknown` path instead of dying.
        if rsn_fail::eval("sat.solve").is_some() {
            budget.cancel();
        }
        let _trace = rsn_obs::TraceGuard::new("sat_solve");
        let start = std::time::Instant::now();
        let before = self.stats;
        let result = self.solve_with_inner(assumptions, budget);
        let after = self.stats;
        let conflicts = after.conflicts - before.conflicts;
        rsn_obs::counter_add("sat.solves", 1);
        rsn_obs::counter_add("sat.conflicts", conflicts);
        rsn_obs::counter_add("sat.decisions", after.decisions - before.decisions);
        rsn_obs::counter_add("sat.propagations", after.propagations - before.propagations);
        rsn_obs::counter_add("sat.restarts", after.restarts - before.restarts);
        rsn_obs::hist_record("sat.solve_ns", start.elapsed().as_nanos() as u64);
        rsn_obs::hist_record("sat.solve_conflicts", conflicts);
        // One budget unit is spent on entry, one per conflict (see above).
        rsn_obs::counter_add("budget.spent{engine=sat}", conflicts + 1);
        match result {
            SolveOutcome::Sat => rsn_obs::counter_add("sat.sat", 1),
            SolveOutcome::Unsat => rsn_obs::counter_add("sat.unsat", 1),
            SolveOutcome::Unknown { reason, .. } => {
                rsn_obs::counter_add("sat.unknown", 1);
                rsn_obs::counter_add("budget.exhausted", 1);
                rsn_obs::record_budget_trip("sat", reason.as_str());
            }
        }
        result
    }

    fn solve_with_inner(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        // The core describes the *last* unsatisfiable answer only; an
        // empty core on Unsat means the formula needs no assumptions.
        self.core.clear();
        if self.unsat {
            return SolveOutcome::Unsat;
        }
        let conflicts_at_entry = self.stats.conflicts;
        // An already-exhausted (or zero) budget admits no search at all.
        if let Err(e) = budget.check() {
            return SolveOutcome::Unknown {
                conflicts: 0,
                reason: e.reason,
            };
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveOutcome::Unsat;
        }

        let mut luby_index = 0u32;
        let mut conflicts_until_restart = 100 * luby(luby_index);
        let mut conflict_count_local = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflict_count_local += 1;
                if self.current_level() as usize <= assumptions.len() {
                    // Conflict among assumptions/root: unsat under
                    // assumptions (formula itself unsat only without them).
                    if assumptions.is_empty() {
                        self.unsat = true;
                    } else {
                        let seeds = self.clauses[conflict].lits.clone();
                        self.core = self.analyze_final(&seeds, assumptions);
                    }
                    self.backtrack(0);
                    return SolveOutcome::Unsat;
                }
                if let Err(e) = budget.check() {
                    self.backtrack(0);
                    return SolveOutcome::Unknown {
                        conflicts: self.stats.conflicts - conflicts_at_entry,
                        reason: e.reason,
                    };
                }
                let (learnt, bt_level) = self.analyze(conflict);
                // Never backtrack past the assumption levels.
                let bt = bt_level
                    .max(assumptions.len() as u32)
                    .min(self.current_level() - 1);
                self.backtrack(bt);
                if learnt.len() == 1 && bt == 0 {
                    if self.lit_value(learnt[0]) == UNDEF {
                        self.enqueue(learnt[0], None);
                    } else if self.lit_is_false(learnt[0]) {
                        if assumptions.is_empty() {
                            self.unsat = true;
                        }
                        self.backtrack(0);
                        return SolveOutcome::Unsat;
                    }
                } else if learnt.len() == 1 {
                    // Asserting unit but we could not go to level 0 due to
                    // assumptions; enqueue if possible.
                    if self.lit_value(learnt[0]) == UNDEF {
                        self.enqueue(learnt[0], None);
                    } else if self.lit_is_false(learnt[0]) {
                        if !assumptions.is_empty() {
                            self.core = self.analyze_final(&learnt, assumptions);
                        }
                        self.backtrack(0);
                        return SolveOutcome::Unsat;
                    }
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    if self.lit_value(learnt[0]) == UNDEF {
                        self.enqueue(learnt[0], Some(cref));
                    } else if self.lit_is_false(learnt[0]) {
                        if !assumptions.is_empty() {
                            self.core = self.analyze_final(&learnt, assumptions);
                        }
                        self.backtrack(0);
                        if assumptions.is_empty() {
                            self.unsat = true;
                        }
                        return SolveOutcome::Unsat;
                    }
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
            } else {
                // Restart?
                if conflict_count_local >= conflicts_until_restart {
                    conflict_count_local = 0;
                    luby_index += 1;
                    conflicts_until_restart = 100 * luby(luby_index);
                    self.stats.restarts += 1;
                    self.backtrack(assumptions.len() as u32);
                    // Restart boundary: re-read the wall clock even if no
                    // conflict crossed a stride since the last check.
                    if let Some(reason) = budget.poll() {
                        self.backtrack(0);
                        return SolveOutcome::Unknown {
                            conflicts: self.stats.conflicts - conflicts_at_entry,
                            reason,
                        };
                    }
                }
                // Place assumptions as pseudo-decisions.
                if (self.current_level() as usize) < assumptions.len() {
                    let a = assumptions[self.current_level() as usize];
                    if self.lit_is_true(a) {
                        // Already satisfied; open an empty decision level to
                        // keep level bookkeeping aligned.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    if self.lit_is_false(a) {
                        // ¬a is implied by earlier assumptions (or at the
                        // root); the refutation is that implication plus
                        // the assumption `a` itself.
                        let mut core = self.analyze_final(&[a], assumptions);
                        if !core.contains(&a) {
                            core.push(a);
                        }
                        self.core = core;
                        self.backtrack(0);
                        return SolveOutcome::Unsat;
                    }
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, None);
                    continue;
                }
                if !self.decide() {
                    return SolveOutcome::Sat; // full assignment
                }
            }
        }
    }

    /// MiniSat-style final-conflict analysis. `seeds` are literals that
    /// are falsified (or whose falsification is being explained) under
    /// the assumption pseudo-decisions; the implication trail is walked
    /// backwards from them, expanding reasons, and the assumption
    /// literals reached as decisions form the failed-assumption core.
    ///
    /// Must run *before* backtracking. If a non-assumption decision is
    /// ever reached (which the solve loop's backtrack clamping should
    /// rule out), the full assumption list is returned instead — still a
    /// valid core, merely untight.
    fn analyze_final(&mut self, seeds: &[Lit], assumptions: &[Lit]) -> Vec<Lit> {
        let mut core = Vec::new();
        if assumptions.is_empty() || self.trail_lim.is_empty() {
            return core;
        }
        let mut marked = 0usize;
        for &l in seeds {
            let v = l.var();
            if self.assign[v.index()] != UNDEF && self.level[v.index()] > 0 && !self.seen[v.index()]
            {
                self.seen[v.index()] = true;
                marked += 1;
            }
        }
        let mut clean = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            if marked == 0 {
                break;
            }
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            self.seen[v.index()] = false;
            marked -= 1;
            match self.reason[v.index()] {
                None => {
                    // A decision. Levels 1..=assumptions.len() hold the
                    // assumption pseudo-decisions; the enqueued literal is
                    // the assumption itself.
                    if self.level[v.index()] as usize <= assumptions.len() {
                        core.push(l);
                    } else {
                        debug_assert!(false, "non-assumption decision in final conflict");
                        clean = false;
                    }
                }
                Some(cref) => {
                    let lits = self.clauses[cref].lits.clone();
                    for &q in &lits {
                        let qv = q.var();
                        if qv != v && self.level[qv.index()] > 0 && !self.seen[qv.index()] {
                            self.seen[qv.index()] = true;
                            marked += 1;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(marked, 0, "every marked var lies on the trail");
        if marked > 0 {
            // Unreachable by construction; keep `seen` pristine anyway.
            for i in start..self.trail.len() {
                self.seen[self.trail[i].var().index()] = false;
            }
        }
        if clean {
            core
        } else {
            assumptions.to_vec()
        }
    }

    /// Failed-assumption core of the most recent unsatisfiable solve: a
    /// subset of the assumption literals whose conjunction with the
    /// formula is already unsatisfiable. Empty when the formula is
    /// unsatisfiable without any assumptions. Overwritten by every solve
    /// call (and cleared on `Sat`/`Unknown` outcomes), so read it right
    /// after the `Unsat` verdict.
    pub fn core(&self) -> &[Lit] {
        &self.core
    }

    /// Solves under assumptions; on an unsatisfiable outcome returns the
    /// failed-assumption core (see [`Solver::core`]), `None` when
    /// satisfiable. The returned core is a valid but not necessarily
    /// minimal subset — pass it to [`Solver::shrink_core_under`] for
    /// deletion-based minimization.
    pub fn solve_with_core(&mut self, assumptions: &[Lit]) -> Option<Vec<Lit>> {
        if self.solve_with(assumptions) {
            None
        } else {
            Some(self.core.clone())
        }
    }

    /// Budget-aware deletion-based minimization of a failed-assumption
    /// core: each member is dropped in turn and the remainder re-solved;
    /// `Unsat` answers also *refine* the working core to the solver's
    /// newly extracted (possibly smaller) one. Returns the shrunk core
    /// and a flag that is `true` iff the pass completed, i.e. every
    /// surviving member was proven necessary (dropping it alone makes
    /// the query satisfiable) — a minimal unsatisfiable subset.
    ///
    /// On budget exhaustion the current (still valid, unminimized) core
    /// is returned with `false`; the routine never hangs.
    pub fn shrink_core_under(&mut self, core: &[Lit], budget: &Budget) -> (Vec<Lit>, bool) {
        let mut cur: Vec<Lit> = core.to_vec();
        // Every literal is tested exactly once; refinement may delete
        // queued literals early, in which case they are skipped.
        let mut queue: Vec<Lit> = cur.clone();
        while let Some(cand) = queue.pop() {
            if !cur.contains(&cand) {
                continue; // dropped by an earlier refinement
            }
            if budget.check().is_err() {
                return (cur, false);
            }
            let trial: Vec<Lit> = cur.iter().copied().filter(|&l| l != cand).collect();
            match self.solve_with_under(&trial, budget) {
                SolveOutcome::Unsat => {
                    // cand is redundant; adopt the refined core (a subset
                    // of `trial`, so necessity of already-kept members is
                    // preserved by monotonicity).
                    cur = self.core.clone();
                }
                SolveOutcome::Sat => {} // cand is necessary, keep it
                SolveOutcome::Unknown { .. } => return (cur, false),
            }
        }
        (cur, true)
    }

    /// Model value of a variable after a satisfiable [`Solver::solve`] call,
    /// `None` if unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            UNDEF => None,
            x => Some(x != 0),
        }
    }

    /// Model value of a literal after a satisfiable solve call.
    pub fn lit_value_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.polarity())
    }
}

/// The Luby sequence (1,1,2,1,1,2,4,...), used for restart scheduling.
/// `i` is 0-based.
fn luby(i: u32) -> u64 {
    // 1-based recurrence: luby(n) = 2^(k-1) if n = 2^k - 1,
    // else luby(n - 2^(k-1) + 1) for 2^(k-1) <= n < 2^k - 1.
    let mut n = (i + 1) as u64;
    loop {
        if (n + 1).is_power_of_two() {
            return n.div_ceil(2);
        }
        let k = 63 - (n + 1).leading_zeros() as u64; // floor(log2(n+1))
        n -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn ln(v: Var) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve());
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a)]);
        s.add_clause([ln(a), lp(b)]);
        assert!(s.solve());
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([lp(a)]);
        assert!(!s.add_clause([ln(a)]));
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole.
        let mut s = Solver::new();
        let p = [s.new_var(), s.new_var()];
        s.add_clause([lp(p[0])]);
        s.add_clause([lp(p[1])]);
        s.add_clause([ln(p[0]), ln(p[1])]);
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // p[i][j]: pigeon i in hole j. 4 pigeons, 3 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for i in 0..4 {
            for j in 0..3 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..4 {
            s.add_clause((0..3).map(|j| lp(p[i][j])));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([ln(p[i1][j]), ln(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_is_sat_with_consistent_parity() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 0  (consistent)
        let mut s = Solver::new();
        let x: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let xor = |s: &mut Solver, a: Var, b: Var, val: bool| {
            if val {
                s.add_clause([lp(a), lp(b)]);
                s.add_clause([ln(a), ln(b)]);
            } else {
                s.add_clause([lp(a), ln(b)]);
                s.add_clause([ln(a), lp(b)]);
            }
        };
        xor(&mut s, x[0], x[1], true);
        xor(&mut s, x[1], x[2], true);
        xor(&mut s, x[0], x[2], false);
        assert!(s.solve());
        let v0 = s.value(x[0]).expect("assigned");
        let v1 = s.value(x[1]).expect("assigned");
        let v2 = s.value(x[2]).expect("assigned");
        assert!(v0 ^ v1);
        assert!(v1 ^ v2);
        assert!(!(v0 ^ v2));
    }

    #[test]
    fn xor_cycle_odd_is_unsat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 1 (odd cycle, unsat)
        let mut s = Solver::new();
        let x: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            s.add_clause([lp(x[a]), lp(x[b])]);
            s.add_clause([ln(x[a]), ln(x[b])]);
        }
        assert!(!s.solve());
    }

    #[test]
    fn assumptions_are_retractable() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a), lp(b)]);
        assert!(s.solve_with(&[ln(a)]));
        assert_eq!(s.value(b), Some(true));
        assert!(s.solve_with(&[ln(b)]));
        assert_eq!(s.value(a), Some(true));
        // Contradictory assumptions: unsat under assumptions...
        assert!(!s.solve_with(&[ln(a), ln(b)]));
        // ...but the formula itself is still satisfiable.
        assert!(s.solve());
    }

    #[test]
    fn assumption_conflicting_with_unit_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([lp(a)]);
        assert!(!s.solve_with(&[ln(a)]));
        assert!(s.solve());
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([lp(a), ln(a)]));
        assert!(s.solve());
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause([lp(a), lp(a), lp(b)]));
        s.add_clause([ln(a)]);
        assert!(s.solve());
        assert_eq!(s.value(b), Some(true));
    }

    /// 4 pigeons / 3 holes: small but guaranteed to conflict.
    fn pigeonhole_4_3() -> Solver {
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for i in 0..4 {
            for j in 0..3 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..4 {
            s.add_clause((0..3).map(|j| lp(p[i][j])));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([ln(p[i1][j]), ln(p[i2][j])]);
                }
            }
        }
        s
    }

    #[test]
    fn zero_budget_returns_unknown() {
        use rsn_budget::Budget;
        let mut s = pigeonhole_4_3();
        let out = s.solve_under(&Budget::unlimited().with_work_limit(0));
        match out {
            SolveOutcome::Unknown { conflicts, reason } => {
                assert_eq!(conflicts, 0);
                assert_eq!(reason, Reason::WorkLimit);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Solver is still usable: an unconstrained solve proves unsat.
        assert!(!s.solve());
    }

    #[test]
    fn zero_deadline_returns_unknown() {
        use rsn_budget::Budget;
        use std::time::Duration;
        let mut s = pigeonhole_4_3();
        let out = s.solve_under(&Budget::unlimited().with_deadline(Duration::ZERO));
        assert_eq!(
            out,
            SolveOutcome::Unknown {
                conflicts: 0,
                reason: Reason::Deadline
            }
        );
    }

    #[test]
    fn conflict_budget_bounds_search_and_preserves_solver() {
        use rsn_budget::Budget;
        let mut s = pigeonhole_4_3();
        // 1 entry unit + conflict units; the conflict whose check trips
        // is already counted, so at most `limit` conflicts happen.
        let out = s.solve_under(&Budget::unlimited().with_work_limit(3));
        match out {
            SolveOutcome::Unknown { conflicts, reason } => {
                assert!(conflicts <= 3, "overran conflict budget: {conflicts}");
                assert_eq!(reason, Reason::WorkLimit);
            }
            // A 12-var pigeonhole needs more than 2 conflicts.
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Re-solving with a fresh, bigger budget finishes the proof.
        let out = s.solve_under(&Budget::unlimited().with_work_limit(1_000_000));
        assert_eq!(out, SolveOutcome::Unsat);
    }

    #[test]
    fn exhausted_budget_is_latched_across_solves() {
        use rsn_budget::Budget;
        let budget = Budget::unlimited().with_work_limit(0);
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([lp(a)]);
        assert!(s.solve_under(&budget).is_unknown());
        // Same budget again: still Unknown, even for a trivial formula.
        assert!(s.solve_under(&budget).is_unknown());
        // A fresh budget resolves it.
        assert!(s.solve_under(&Budget::unlimited()).is_sat());
    }

    #[test]
    fn cancel_token_aborts_solve() {
        use rsn_budget::Budget;
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let mut s = pigeonhole_4_3();
        assert_eq!(
            s.solve_under(&budget),
            SolveOutcome::Unknown {
                conflicts: 0,
                reason: Reason::Cancelled
            }
        );
    }

    #[test]
    fn budgeted_outcomes_match_unbudgeted_verdicts() {
        use rsn_budget::Budget;
        let generous = Budget::unlimited().with_work_limit(10_000_000);
        let mut s = pigeonhole_4_3();
        assert_eq!(s.solve_under(&generous), SolveOutcome::Unsat);

        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([lp(a), lp(b)]);
        s.add_clause([ln(a), lp(b)]);
        assert_eq!(
            s.solve_with_under(&[lp(a)], &Budget::unlimited()),
            SolveOutcome::Sat
        );
        assert_eq!(s.value(b), Some(true));
    }

    /// Brute-force evaluation for cross-checking.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        for m in 0u32..(1 << num_vars) {
            let val = |l: Lit| {
                let bit = (m >> l.var().0) & 1 == 1;
                bit == l.polarity()
            };
            if clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _round in 0..200 {
            let nv = 4 + (next() % 5) as usize; // 4..8 vars
            let nc = 5 + (next() % 25) as usize;
            let clauses: Vec<Vec<Lit>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = Var(next() % nv as u32);
                            if next() % 2 == 0 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            let mut trivially_unsat = false;
            for c in &clauses {
                if !s.add_clause(c.iter().copied()) {
                    trivially_unsat = true;
                }
            }
            let expected = brute_force_sat(nv, &clauses);
            let got = if trivially_unsat { false } else { s.solve() };
            assert_eq!(got, expected, "clauses: {clauses:?}");
            if got {
                // Verify the model.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_value_model(l) == Some(true)),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }
}
