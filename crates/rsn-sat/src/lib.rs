//! A CDCL SAT solver with CNF construction utilities.
//!
//! This crate is the decision-procedure substrate for the bounded model
//! checking of RSN accessibility (paper Sec. II-B / III-A). It provides:
//!
//! * [`Solver`] — conflict-driven clause learning with two-watched-literal
//!   propagation, first-UIP learning, VSIDS branching, phase saving, Luby
//!   restarts and activity-based learnt-clause reduction ([`solver`]).
//! * [`Lit`] / [`Var`] — literal and variable handles ([`lit`]).
//! * [`CnfBuilder`] — Tseitin encoding of circuits (AND/OR/NOT/XOR/ITE,
//!   equality, at-most-one) on top of a solver ([`cnf`]).
//! * DIMACS parsing and emission ([`dimacs`]).
//! * Parallel solving — a diversified CDCL portfolio with a shared
//!   learnt-clause ring and cube-and-conquer escalation
//!   ([`portfolio`], [`pool`]); see
//!   [`Solver::solve_portfolio_under`] and [`Solver::set_threads`].
//!
//! # Example
//!
//! ```
//! use rsn_sat::{Solver, Lit};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause([Lit::neg(a)]);
//! assert!(solver.solve());
//! assert_eq!(solver.value(b), Some(true));
//! ```

pub mod cnf;
pub mod dimacs;
mod eliminate;
pub mod lit;
pub mod pool;
pub mod portfolio;
pub mod solver;

pub use cnf::CnfBuilder;
pub use lit::{Lit, Var};
pub use pool::ClausePool;
pub use solver::{RestartSchedule, SearchConfig, SolveOutcome, Solver};
