//! A CDCL SAT solver with CNF construction utilities.
//!
//! This crate is the decision-procedure substrate for the bounded model
//! checking of RSN accessibility (paper Sec. II-B / III-A). It provides:
//!
//! * [`Solver`] — conflict-driven clause learning with two-watched-literal
//!   propagation, first-UIP learning, VSIDS branching, phase saving, Luby
//!   restarts and activity-based learnt-clause reduction ([`solver`]).
//! * [`Lit`] / [`Var`] — literal and variable handles ([`lit`]).
//! * [`CnfBuilder`] — Tseitin encoding of circuits (AND/OR/NOT/XOR/ITE,
//!   equality, at-most-one) on top of a solver ([`cnf`]).
//! * DIMACS parsing and emission ([`dimacs`]).
//!
//! # Example
//!
//! ```
//! use rsn_sat::{Solver, Lit};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause([Lit::neg(a)]);
//! assert!(solver.solve());
//! assert_eq!(solver.value(b), Some(true));
//! ```

pub mod cnf;
pub mod dimacs;
pub mod lit;
pub mod solver;

pub use cnf::CnfBuilder;
pub use lit::{Lit, Var};
pub use solver::{SolveOutcome, Solver};
