//! Additional BMC coverage: incremental querying, deeper hierarchies,
//! forced-subtree semantics, and agreement with the fault-free planner.

use rsn_bmc::{bmc_accessibility, BmcChecker};
use rsn_core::examples::{chain, fig2, sib_tree};
use rsn_fault::{effect_of, fault_universe, FaultEffect, FaultSite, HardeningProfile};
use rsn_itc02::parse_soc;
use rsn_sib::generate;

#[test]
fn incremental_queries_reuse_one_checker() {
    let rsn = sib_tree(1, 3, 2);
    let mut checker = BmcChecker::new(&rsn, 2);
    // Query every segment twice; verdicts must be stable.
    let first: Vec<bool> = rsn.segments().map(|s| checker.accessible(s)).collect();
    let second: Vec<bool> = rsn.segments().map(|s| checker.accessible(s)).collect();
    assert_eq!(first, second);
    assert!(first.iter().all(|&b| b), "fault-free: all accessible");
}

#[test]
fn bmc_matches_greedy_planner_depths() {
    // For every segment of a depth-3 tree, the minimal BMC depth at which
    // it becomes accessible equals the greedy plan's CSU count.
    let rsn = sib_tree(3, 1, 2);
    for seg in rsn.segments() {
        let plan = rsn.plan_access(seg, &rsn.reset_config()).expect("plan");
        let needed = plan.csu_count();
        if needed > 0 {
            let mut shallow = BmcChecker::new(&rsn, needed - 1);
            assert!(
                !shallow.accessible(seg),
                "{} accessible below plan depth {needed}",
                rsn.node(seg).name()
            );
        }
        let mut exact = BmcChecker::new(&rsn, needed);
        assert!(exact.accessible(seg), "{}", rsn.node(seg).name());
    }
}

#[test]
fn forced_open_subtree_keeps_everything_accessible() {
    // SIB shadow stuck-at-1: the subtree is forced onto the path; all
    // segments stay accessible (longer paths, no corruption).
    let soc = parse_soc("SocName t\n1 0 0 0 2 : 2 2\n2 0 0 0 1 : 2\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    let sib = rsn.find("m1.sib").expect("sib");
    let fault = rsn_fault::Fault {
        site: FaultSite::SegmentShadow(sib),
        value: true,
        weight: 1,
    };
    let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
    for (seg, ok) in bmc_accessibility(&rsn, &effect, 3) {
        assert!(ok, "{} must stay accessible", rsn.node(seg).name());
    }
}

#[test]
fn scan_out_fault_kills_everything_in_bmc() {
    let rsn = fig2();
    let fault = rsn_fault::Fault {
        site: FaultSite::ScanOutPort(rsn.scan_out()),
        value: false,
        weight: 1,
    };
    let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
    for (_, ok) in bmc_accessibility(&rsn, &effect, 2) {
        assert!(!ok);
    }
}

#[test]
fn chain_cross_validation_with_all_faults_and_more_steps() {
    // More unrolling steps never change chain verdicts (saturation).
    let rsn = chain(3, 2);
    for fault in fault_universe(&rsn) {
        let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
        let at_1: Vec<bool> = bmc_accessibility(&rsn, &effect, 1)
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        let at_3: Vec<bool> = bmc_accessibility(&rsn, &effect, 3)
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        assert_eq!(at_1, at_3, "fault {fault}");
    }
}

#[test]
fn local_loss_only_affects_the_lost_segment() {
    let rsn = sib_tree(1, 2, 3);
    let leaf = rsn.find("t00.seg").expect("leaf");
    let mut effect = FaultEffect::benign();
    effect.local_loss.push(leaf);
    for (seg, ok) in bmc_accessibility(&rsn, &effect, 2) {
        assert_eq!(ok, seg != leaf, "{}", rsn.node(seg).name());
    }
}

#[test]
fn mux_input_edge_fault_verdicts_match_engine() {
    let soc = parse_soc("SocName t\n1 0 0 0 1 : 3\n").expect("parse");
    let rsn = generate(&soc).expect("generate");
    for fault in fault_universe(&rsn) {
        if !matches!(fault.site, FaultSite::MuxInput(..)) {
            continue;
        }
        let effect = effect_of(&rsn, &fault, HardeningProfile::unhardened());
        let structural = rsn_fault::accessibility(&rsn, &effect);
        for (seg, bmc_ok) in bmc_accessibility(&rsn, &effect, 3) {
            assert_eq!(
                structural.accessible[seg.index()],
                bmc_ok,
                "fault {fault} segment {}",
                rsn.node(seg).name()
            );
        }
    }
}
