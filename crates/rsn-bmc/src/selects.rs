//! SAT-based verification of select-signal consistency.
//!
//! A configuration is *valid* when every segment's select predicate agrees
//! with its active-scan-path membership (exactly one active scan path).
//! For generated networks this holds by construction; for hand-written
//! networks or materialized synthesized selects it is worth proving. This
//! module encodes the question `∃ configuration c, segment s:
//! Select(c, s) ≠ onpath(c, s)` as one SAT query — feasible for networks
//! far beyond exhaustive configuration enumeration.

use rsn_core::{Config, ControlExpr, NodeId, NodeKind, Rsn};
use rsn_sat::{CnfBuilder, Lit};

/// A witness of select/path disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectMismatch {
    /// The disagreeing segment.
    pub segment: NodeId,
    /// A configuration exhibiting the disagreement.
    pub config: Config,
}

/// Proves select/path consistency over *all* configurations, or returns a
/// counterexample.
///
/// # Example
///
/// ```
/// use rsn_bmc::verify_select_consistency;
/// use rsn_core::examples::{fig2, sib_tree};
///
/// assert!(verify_select_consistency(&fig2()).is_none());
/// assert!(verify_select_consistency(&sib_tree(2, 2, 4)).is_none());
/// ```
pub fn verify_select_consistency(rsn: &Rsn) -> Option<SelectMismatch> {
    let mut cnf = CnfBuilder::new();
    let n_bits = rsn.shadow_bits() as usize;
    let bits: Vec<Lit> = (0..n_bits).map(|_| cnf.new_lit()).collect();
    let inputs: Vec<Lit> = (0..rsn.num_inputs()).map(|_| cnf.new_lit()).collect();

    let encode = |cnf: &mut CnfBuilder, e: &ControlExpr| -> Lit {
        fn go(
            cnf: &mut CnfBuilder,
            rsn: &Rsn,
            bits: &[Lit],
            inputs: &[Lit],
            e: &ControlExpr,
        ) -> Lit {
            match e {
                ControlExpr::Const(b) => cnf.constant(*b),
                ControlExpr::Reg(node, bit) => {
                    let off = rsn.shadow_offset(*node).expect("validated reference");
                    bits[(off + *bit) as usize]
                }
                ControlExpr::Input(i) => inputs[i.0 as usize],
                ControlExpr::Not(inner) => !go(cnf, rsn, bits, inputs, inner),
                ControlExpr::And(es) => {
                    let lits: Vec<Lit> = es.iter().map(|x| go(cnf, rsn, bits, inputs, x)).collect();
                    cnf.and(lits)
                }
                ControlExpr::Or(es) => {
                    let lits: Vec<Lit> = es.iter().map(|x| go(cnf, rsn, bits, inputs, x)).collect();
                    cnf.or(lits)
                }
            }
        }
        go(cnf, rsn, &bits, &inputs, e)
    };

    // Mux input conditions.
    let mut cond: std::collections::HashMap<(NodeId, usize), Lit> =
        std::collections::HashMap::new();
    for m in rsn.muxes() {
        let mux = rsn.node(m).as_mux().expect("mux");
        for k in 0..mux.inputs.len() {
            let mut conj = Vec::new();
            for (i, e) in mux.addr_bits.iter().enumerate() {
                let b = encode(&mut cnf, e);
                conj.push(if (k >> i) & 1 == 1 { b } else { !b });
            }
            let lit = cnf.and(conj);
            cond.insert((m, k), lit);
        }
    }

    // onpath literals in reverse topological order.
    let n = rsn.node_count();
    let mut onpath = vec![cnf.lit_false(); n];
    for &v in rsn.topo_order().iter().rev() {
        let l = match rsn.node(v).kind() {
            NodeKind::ScanOut if v == rsn.scan_out() => cnf.lit_true(),
            NodeKind::ScanOut => cnf.lit_false(),
            _ => {
                let mut alts = Vec::new();
                for &w in rsn.successors(v) {
                    match rsn.node(w).kind() {
                        NodeKind::Mux(mux) => {
                            for (k, &inp) in mux.inputs.iter().enumerate() {
                                if inp == v {
                                    let c = cond[&(w, k)];
                                    let a = cnf.and([onpath[w.index()], c]);
                                    alts.push(a);
                                }
                            }
                        }
                        _ => alts.push(onpath[w.index()]),
                    }
                }
                cnf.or(alts)
            }
        };
        onpath[v.index()] = l;
    }

    // Mismatch detector: OR over segments of select XOR onpath.
    let mut mismatch_lits = Vec::new();
    let segs: Vec<NodeId> = rsn.segments().collect();
    for &s in &segs {
        let sel = encode(&mut cnf, &rsn.node(s).as_segment().expect("segment").select);
        let x = cnf.xor(sel, onpath[s.index()]);
        mismatch_lits.push((s, x));
    }
    let any = cnf.or(mismatch_lits.iter().map(|&(_, l)| l));
    cnf.assert_lit(any);

    let solver = cnf.solver_mut();
    if !solver.solve() {
        return None; // consistent for every configuration
    }
    // Extract the witness.
    let mut config = Config::zeroed(n_bits, rsn.num_inputs());
    for (i, &l) in bits.iter().enumerate() {
        if solver.lit_value_model(l) == Some(true) {
            config.set_bit(i, true);
        }
    }
    for (i, &l) in inputs.iter().enumerate() {
        if solver.lit_value_model(l) == Some(true) {
            config.set_input(rsn_core::InputId(i as u32), true);
        }
    }
    let segment = mismatch_lits
        .iter()
        .find(|&&(_, l)| solver.lit_value_model(l) == Some(true))
        .map(|&(s, _)| s)
        .expect("some mismatch literal is true");
    Some(SelectMismatch { segment, config })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2, sib_tree};
    use rsn_core::{ControlExpr, RsnBuilder};

    #[test]
    fn generated_networks_are_consistent() {
        for rsn in [fig2(), chain(5, 3), sib_tree(2, 2, 4)] {
            assert!(
                verify_select_consistency(&rsn).is_none(),
                "{} must be select-consistent",
                rsn.name()
            );
        }
    }

    #[test]
    fn broken_select_is_caught_with_witness() {
        // Segment C selected by the WRONG polarity.
        let mut b = RsnBuilder::new("broken");
        let a = b.add_segment("A", 1);
        b.set_select(a, ControlExpr::TRUE);
        b.connect(b.scan_in(), a);
        let c1 = b.add_segment("B", 1);
        let c2 = b.add_segment("C", 1);
        b.connect(a, c1);
        b.connect(a, c2);
        let m = b.add_mux("M", vec![c1, c2], vec![ControlExpr::reg(a, 0)]);
        b.connect(m, b.scan_out());
        b.set_select(c1, !ControlExpr::reg(a, 0));
        b.set_select(c2, !ControlExpr::reg(a, 0)); // wrong: should be reg(a,0)
        let rsn = b.finish().expect("structurally valid");
        let mismatch = verify_select_consistency(&rsn).expect("inconsistent");
        // The witness must actually exhibit the mismatch.
        let path = rsn.trace_path(&mismatch.config).expect("traceable");
        let selected = rsn
            .select(mismatch.segment, &mismatch.config)
            .expect("eval");
        assert_ne!(selected, path.contains(mismatch.segment));
    }

    #[test]
    fn suite_scale_consistency_check() {
        // A mid-size generated benchmark verifies in one SAT call.
        let soc = rsn_itc02::by_name("q12710").expect("embedded");
        let rsn = rsn_sib::generate(&soc).expect("generate");
        assert!(verify_select_consistency(&rsn).is_none());
    }

    #[test]
    fn materialized_ft_selects_verify() {
        use rsn_synth::{synthesize, SelectMode, SynthesisOptions};
        let rsn = fig2();
        let mut opts = SynthesisOptions::new();
        opts.select_mode = SelectMode::Always;
        opts.secondary_ports = false;
        let ft = synthesize(&rsn, &opts).expect("synthesize");
        assert!(
            verify_select_consistency(&ft.rsn).is_none(),
            "synthesized selects must match path membership everywhere"
        );
    }
}
