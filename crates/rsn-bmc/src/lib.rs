//! Bounded model checking of RSN accessibility (paper Sec. II-B, III-A).
//!
//! This crate encodes the paper's formal RSN model
//! `M = {S, H, I, V, C, c₀, Select, Updis, Capdis, Active}` into
//! propositional logic and decides scan-segment accessibility by unrolling
//! the transition relation `T` (eq. 1) for `n + 1` CSU operations:
//!
//! * one SAT variable per shadow-register bit per time step,
//! * a structural *on-path* predicate per node per step (the backward
//!   trace from the scan-out port through configured multiplexers),
//! * configuration validity (`Select(c, s) ⇔ s on the active path`,
//!   i.e. exactly one active scan path),
//! * the transition relation: a shadow register may only change if its
//!   segment is active and update is not disabled,
//! * the three fault extensions of Sec. III-A: stuck-at constraints on
//!   registers and signals, an adapted transition relation (a fault on the
//!   active path propagates its stuck value into subsequent updatable
//!   registers — encoded via per-node *taint* literals), and access
//!   conditions that require a clean final path through the target.
//!
//! The BMC engine is the reference semantics used to cross-validate the
//! fast structural engine of `rsn-fault` on small networks; it is
//! deliberately general and makes no assumption about network shape
//! (except that secondary scan ports are not modeled — validation runs on
//! networks before port duplication).
//!
//! # Example
//!
//! ```
//! use rsn_bmc::BmcChecker;
//! use rsn_core::examples::fig2;
//!
//! let rsn = fig2();
//! let mut checker = BmcChecker::new(&rsn, 2);
//! let c = rsn.find("C").expect("segment C");
//! assert!(checker.accessible(c));
//! ```

pub mod selects;

pub use selects::{verify_select_consistency, SelectMismatch};

use std::collections::HashMap;

use rsn_budget::Budget;
use rsn_core::{ControlExpr, NodeId, NodeKind, Rsn};
use rsn_fault::FaultEffect;
use rsn_sat::{CnfBuilder, Lit, SolveOutcome};

/// Tri-state accessibility verdict from a budgeted BMC query
/// ([`BmcChecker::accessible_under`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A valid CSU sequence reaching the target with a clean path exists.
    Accessible,
    /// Proven unreachable within the unroll depth.
    Inaccessible,
    /// The budget ran out before the SAT query concluded.
    Unknown {
        /// The unroll depth (CSU steps) the undecided query was posed at.
        bound_reached: usize,
    },
}

impl Verdict {
    /// `true` only for a proven [`Verdict::Accessible`].
    pub fn is_accessible(self) -> bool {
        self == Verdict::Accessible
    }

    /// `true` if the budget ran out before a verdict.
    pub fn is_unknown(self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }
}

/// A bounded model checker for one network and one (optional) fault,
/// reusable across target segments through incremental solving.
#[derive(Debug)]
pub struct BmcChecker {
    cnf: CnfBuilder,
    /// `onpath[t][node]` literals.
    onpath: Vec<Vec<Lit>>,
    /// `taint[t][node]` literals (all-false encoding when fault-free).
    taint: Vec<Vec<Lit>>,
    /// Segments that lose instrument access (from the fault effect).
    local_loss: Vec<NodeId>,
    /// Index of the scan-out node.
    scan_out: NodeId,
    /// Number of CSU steps (the final configuration is step `steps`).
    steps: usize,
    /// Solvable at all (false if the encoding derived a contradiction).
    feasible: bool,
}

impl BmcChecker {
    /// Builds the fault-free model with `steps` CSU operations.
    ///
    /// # Panics
    ///
    /// Panics if the network has secondary scan ports (not modeled).
    pub fn new(rsn: &Rsn, steps: usize) -> Self {
        Self::with_fault(rsn, steps, &FaultEffect::benign())
    }

    /// Builds the model of the faulty network with `steps` CSU operations.
    ///
    /// # Panics
    ///
    /// Panics if the network has secondary scan ports (not modeled).
    pub fn with_fault(rsn: &Rsn, steps: usize, effect: &FaultEffect) -> Self {
        assert!(
            rsn.secondary_scan_in().is_none() && rsn.secondary_scan_out().is_none(),
            "BMC models networks without secondary scan ports"
        );
        let mut cnf = CnfBuilder::new();
        // Primary-input literals per step (inputs are freely drivable each
        // CSU but must be consistent within a step).
        let inputs: Vec<Vec<Lit>> = (0..=steps)
            .map(|_| (0..rsn.num_inputs()).map(|_| cnf.new_lit()).collect())
            .collect();
        let u = encode_unrolling(&mut cnf, rsn, steps, effect, &inputs, None);

        let mut checker = BmcChecker {
            cnf,
            onpath: u.onpath,
            taint: u.taint,
            local_loss: effect.local_loss.clone(),
            scan_out: rsn.scan_out(),
            steps,
            feasible: true,
        };
        // Encoding size telemetry, keyed by unroll depth.
        rsn_obs::counter_add("bmc.builds", 1);
        let solver = checker.cnf.solver_mut();
        rsn_obs::gauge_set(
            &format!("bmc.unroll.{steps}.vars"),
            solver.num_vars() as f64,
        );
        rsn_obs::gauge_set(
            &format!("bmc.unroll.{steps}.clauses"),
            solver.num_clauses() as f64,
        );
        checker
    }
}

/// The literal matrices of one `steps`-deep unrolling of the (possibly
/// faulty) transition relation, as written into a caller-supplied
/// builder by [`encode_unrolling`].
struct Unrolling {
    /// `onpath[t][node]` literals.
    onpath: Vec<Vec<Lit>>,
    /// `taint[t][node]` literals.
    taint: Vec<Vec<Lit>>,
}

/// Encodes one copy of the faulty network model into `cnf`.
///
/// `inputs[t]` are the per-step primary-input literals, supplied by the
/// caller so several copies can share one stimulus (the miter of
/// [`FaultDistinguisher`]). `data`, when present, supplies per-step
/// shared *shift datum* literals: a clean active write latches
/// `data[t][bit]`, which pins the whole trajectory to a function of
/// `(inputs, data)` — two copies fed the same stimulus can then only
/// diverge through their fault effects. `None` leaves clean writes
/// unconstrained, the classic accessibility semantics where the tester
/// may shift in anything.
fn encode_unrolling(
    cnf: &mut CnfBuilder,
    rsn: &Rsn,
    steps: usize,
    effect: &FaultEffect,
    inputs: &[Vec<Lit>],
    data: Option<&[Vec<Lit>]>,
) -> Unrolling {
    let n_bits = rsn.shadow_bits() as usize;
    let n_nodes = rsn.node_count();

    // Shadow-register bit literals per step.
    let bits: Vec<Vec<Lit>> = (0..=steps)
        .map(|_| (0..n_bits).map(|_| cnf.new_lit()).collect())
        .collect();

    // Forced control bits (stuck shadow cells): constant at all steps.
    for (&(node, bit), &value) in &effect.forced_bits {
        if let Some(off) = rsn.shadow_offset(node) {
            for step_bits in &bits {
                let l = step_bits[(off + bit) as usize];
                cnf.assert_lit(if value { l } else { !l });
            }
        }
    }

    // Initial configuration = reset.
    let reset = rsn.reset_config();
    for (i, &l) in bits[0].iter().enumerate() {
        // Skip bits pinned by the fault (already asserted; pinning wins
        // over reset, as a stuck cell never held the reset value).
        let pinned = effect.forced_bits.iter().any(|(&(node, bit), _)| {
            rsn.shadow_offset(node).map(|off| (off + bit) as usize) == Some(i)
        });
        if pinned {
            continue;
        }
        let l = if reset.bit(i) { l } else { !l };
        cnf.assert_lit(l);
    }

    // Corruption lookup.
    let mut corrupt_node = vec![false; n_nodes];
    for &c in &effect.corrupt_nodes {
        corrupt_node[c.index()] = true;
    }
    let corrupt_edge: HashMap<(NodeId, usize), ()> =
        effect.corrupt_mux_inputs.iter().map(|&e| (e, ())).collect();

    let mut onpath: Vec<Vec<Lit>> = Vec::with_capacity(steps + 1);
    let mut taint: Vec<Vec<Lit>> = Vec::with_capacity(steps + 1);

    for t in 0..=steps {
        let step_bits = &bits[t];
        // Encode a ControlExpr at this step.
        let ctx = ExprCtx {
            rsn,
            bits: step_bits,
            inputs: &inputs[t],
        };

        // Mux selected-input condition literals: cond[mux][k].
        let mut cond: HashMap<(NodeId, usize), Lit> = HashMap::new();
        for m in rsn.muxes() {
            let mux = rsn.node(m).as_mux().expect("mux");
            // Address-forced mux (stuck address net).
            let forced = effect.forced_mux.get(&m).copied();
            for k in 0..mux.inputs.len() {
                let lit = match forced {
                    Some(fk) => cnf.constant(fk == k),
                    None => {
                        let mut conj = Vec::new();
                        for (i, e) in mux.addr_bits.iter().enumerate() {
                            let b = ctx.encode(&mut *cnf, e);
                            conj.push(if (k >> i) & 1 == 1 { b } else { !b });
                        }
                        cnf.and(conj)
                    }
                };
                cond.insert((m, k), lit);
            }
        }

        // onpath literals, defined in reverse topological order so each
        // node's successors are already defined.
        let mut op = vec![cnf.lit_false(); n_nodes];
        let order: Vec<NodeId> = rsn.topo_order().iter().rev().copied().collect();
        for &v in &order {
            let l = match rsn.node(v).kind() {
                NodeKind::ScanOut if v == rsn.scan_out() => cnf.lit_true(),
                NodeKind::ScanOut => cnf.lit_false(),
                _ => {
                    // v is on the path iff some successor w is on the
                    // path and w's feed is v.
                    let mut alts = Vec::new();
                    for &w in rsn.successors(v) {
                        match rsn.node(w).kind() {
                            NodeKind::Mux(mux) => {
                                for (k, &inp) in mux.inputs.iter().enumerate() {
                                    if inp == v {
                                        let c = cond[&(w, k)];
                                        let a = cnf.and([op[w.index()], c]);
                                        alts.push(a);
                                    }
                                }
                            }
                            _ => alts.push(op[w.index()]),
                        }
                    }
                    cnf.or(alts)
                }
            };
            op[v.index()] = l;
        }

        // Validity. Fault-free: every segment's select must equal its
        // path membership (exactly one active scan path). Under a
        // fault, the fault itself may force mismatches: a *deselected*
        // segment on the path does not shift and corrupts the stream
        // (modeled as taint below); a *selected* segment off the path
        // shifts idly and is benign for routing.
        let mut select_lits = vec![cnf.lit_true(); n_nodes];
        for s in rsn.segments() {
            let sel = ctx.encode(
                &mut *cnf,
                &rsn.node(s).as_segment().expect("segment").select,
            );
            select_lits[s.index()] = sel;
            if effect.is_benign() {
                cnf.assert_eq(sel, op[s.index()]);
            }
        }

        // taint literals in forward topological order.
        let mut tn = vec![cnf.lit_false(); n_nodes];
        for &v in rsn.topo_order() {
            let mut own = cnf.constant(corrupt_node[v.index()]);
            if !effect.is_benign() {
                if let NodeKind::Segment(_) = rsn.node(v).kind() {
                    // On-path-but-deselected segments do not shift.
                    own = cnf.or([own, !select_lits[v.index()]]);
                }
            }
            let incoming = match rsn.node(v).kind() {
                NodeKind::ScanIn => cnf.lit_false(),
                NodeKind::Mux(mux) => {
                    let mut alts = Vec::new();
                    for (k, &inp) in mux.inputs.iter().enumerate() {
                        let c = cond[&(v, k)];
                        let dirty_edge = cnf.constant(corrupt_edge.contains_key(&(v, k)));
                        let up = cnf.or([tn[inp.index()], dirty_edge]);
                        alts.push(cnf.and([c, up]));
                    }
                    cnf.or(alts)
                }
                _ => match rsn.node(v).source() {
                    Some(u) => tn[u.index()],
                    None => cnf.lit_false(),
                },
            };
            let dirt = cnf.or([own, incoming]);
            tn[v.index()] = cnf.and([op[v.index()], dirt]);
        }

        onpath.push(op);
        taint.push(tn);
    }

    // Transition relation between consecutive steps (eq. 1 with the
    // adapted fault semantics).
    for t in 0..steps {
        for s in rsn.segments() {
            let seg = rsn.node(s).as_segment().expect("segment");
            if !seg.has_shadow {
                continue;
            }
            let off = rsn.shadow_offset(s).expect("has shadow");
            let ctx = ExprCtx {
                rsn,
                bits: &bits[t],
                inputs: &inputs[t],
            };
            let updis = ctx.encode(&mut *cnf, &seg.update_disable);
            let active = onpath[t][s.index()];
            // frozen := ¬active ∨ updis  → registers keep their value.
            let frozen = cnf.or([!active, updis]);
            let tainted = taint[t][s.index()];
            for b in 0..seg.length {
                let cur = bits[t][(off + b) as usize];
                let next = bits[t + 1][(off + b) as usize];
                cnf.assert_eq_if(frozen, cur, next);
                // Adapted transition: a tainted active write forces the
                // stuck value into the register.
                if let Some(stuck) = stuck_value(effect) {
                    let writing = cnf.and([active, !updis, tainted]);
                    let stuck_lit = cnf.constant(stuck);
                    cnf.assert_eq_if(writing, next, stuck_lit);
                }
                // Shared-stimulus mode: a clean active write latches
                // the shared shift datum, so the trajectory is a
                // function of (inputs, data) alone.
                if let Some(data) = data {
                    let clean_write = cnf.and([active, !updis, !tainted]);
                    cnf.assert_eq_if(clean_write, next, data[t][(off + b) as usize]);
                }
            }
        }
    }

    Unrolling { onpath, taint }
}

impl BmcChecker {
    /// Routes this checker's SAT queries through the portfolio solver
    /// with `threads` workers. `1` (the default) keeps queries on the
    /// bit-reproducible serial loop; see
    /// [`rsn_sat::Solver::set_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.cnf.solver_mut().set_threads(threads);
    }

    /// Decides accessibility of `target`: is there a sequence of `steps`
    /// valid CSU transitions after which the target lies on the active
    /// scan path and the path is clean end to end?
    pub fn accessible(&mut self, target: NodeId) -> bool {
        match self.accessible_under(target, &Budget::unlimited()) {
            Verdict::Accessible => true,
            Verdict::Inaccessible => false,
            Verdict::Unknown { .. } => unreachable!("unlimited budget cannot exhaust"),
        }
    }

    /// Like [`BmcChecker::accessible`], bounded by a [`Budget`] threaded
    /// into the underlying SAT solve (one work unit per conflict).
    ///
    /// Exhaustion yields [`Verdict::Unknown`] carrying the unroll bound
    /// at which the query was left undecided; the checker stays usable
    /// and the query can be retried with a fresh budget. Structural
    /// short-circuits (infeasible encodings, local instrument loss) are
    /// decided without consulting the budget.
    pub fn accessible_under(&mut self, target: NodeId, budget: &Budget) -> Verdict {
        if !self.feasible || self.local_loss.contains(&target) {
            return Verdict::Inaccessible;
        }
        let on = self.onpath[self.steps][target.index()];
        let clean = !self.taint[self.steps][self.scan_out.index()];
        let _span = rsn_obs::Span::enter("bmc_solve");
        let start = std::time::Instant::now();
        let outcome = self.cnf.solver_mut().solve_with_under(&[on, clean], budget);
        let query_ns = start.elapsed().as_nanos() as u64;
        rsn_obs::counter_add("bmc.queries", 1);
        rsn_obs::counter_add(&format!("bmc.unroll.{}.solve_ns", self.steps), query_ns);
        rsn_obs::hist_record("bmc.query_ns", query_ns);
        match outcome {
            SolveOutcome::Sat => Verdict::Accessible,
            SolveOutcome::Unsat => Verdict::Inaccessible,
            SolveOutcome::Unknown { reason, .. } => {
                rsn_obs::counter_add("bmc.unknown", 1);
                rsn_obs::record_budget_trip("bmc", reason.as_str());
                Verdict::Unknown {
                    bound_reached: self.steps,
                }
            }
        }
    }
}

/// Distinguishability verdict from a budgeted miter query
/// ([`FaultDistinguisher::distinguishable_under`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distinguishability {
    /// Some shared stimulus provokes observably different scan behavior
    /// from the two faulty machines.
    Distinguishable,
    /// No stimulus within the unroll depth separates the two faults —
    /// they are test-equivalent at this bound.
    Equivalent,
    /// The budget ran out before the SAT query concluded.
    Unknown {
        /// The unroll depth (CSU steps) the undecided query was posed at.
        bound_reached: usize,
    },
}

/// Decides whether two fault effects are *distinguishable*: is there a
/// `steps`-deep CSU stimulus (same primary inputs and the same shift
/// data each step) under which the two faulty machines differ in
/// observable scan behavior — a segment on the active path of one but
/// not the other, or a corrupted bitstream at the scan-out of exactly
/// one?
///
/// The miter unrolls the faulty transition relation twice into one CNF,
/// sharing the per-step primary-input and shift-datum literals (see
/// [`encode_unrolling`]); each machine's trajectory is then a function
/// of the stimulus and can only diverge through the fault effects
/// themselves. A `Sat` answer is a distinguishing test; `Unsat` proves
/// the pair equivalent within the bound — for two effects from the same
/// collapse class the solver must effectively re-derive the structural
/// equivalence argument, which makes these by far the hardest SAT
/// instances in the workload (and the benchmark family exercised by
/// `table1 --bench-sat`).
///
/// # Example
///
/// ```
/// use rsn_bmc::{Distinguishability, FaultDistinguisher};
/// use rsn_core::examples::fig2;
/// use rsn_fault::{effect_of, fault_universe, HardeningProfile};
///
/// let rsn = fig2();
/// let faults = fault_universe(&rsn);
/// let p = HardeningProfile::unhardened();
/// let a = effect_of(&rsn, &faults[0], p);
/// let same = effect_of(&rsn, &faults[0], p);
/// let mut miter = FaultDistinguisher::new(&rsn, 2, &a, &same);
/// assert!(!miter.distinguishable(), "a fault cannot be told from itself");
/// ```
#[derive(Debug)]
pub struct FaultDistinguisher {
    cnf: CnfBuilder,
    /// Asserted as an assumption: some observable divergence exists.
    diff: Lit,
    steps: usize,
    /// The local-loss sets differ, which is observable without search.
    structurally_distinct: bool,
}

impl FaultDistinguisher {
    /// Builds the two-copy miter with `steps` CSU operations per copy.
    ///
    /// # Panics
    ///
    /// Panics if the network has secondary scan ports (not modeled).
    pub fn new(rsn: &Rsn, steps: usize, a: &FaultEffect, b: &FaultEffect) -> Self {
        assert!(
            rsn.secondary_scan_in().is_none() && rsn.secondary_scan_out().is_none(),
            "BMC models networks without secondary scan ports"
        );
        let mut cnf = CnfBuilder::new();
        // The shared stimulus: primary inputs per step, plus the shift
        // datum each register would latch on a clean active write.
        let inputs: Vec<Vec<Lit>> = (0..=steps)
            .map(|_| (0..rsn.num_inputs()).map(|_| cnf.new_lit()).collect())
            .collect();
        let n_bits = rsn.shadow_bits() as usize;
        let data: Vec<Vec<Lit>> = (0..steps)
            .map(|_| (0..n_bits).map(|_| cnf.new_lit()).collect())
            .collect();
        let ua = encode_unrolling(&mut cnf, rsn, steps, a, &inputs, Some(&data));
        let ub = encode_unrolling(&mut cnf, rsn, steps, b, &inputs, Some(&data));

        // Observable divergence at any step: a segment on exactly one
        // active path (the streams differ in composition/length), or a
        // corrupted stream at exactly one scan-out.
        let so = rsn.scan_out().index();
        let mut diffs = Vec::new();
        for t in 0..=steps {
            for s in rsn.segments() {
                diffs.push(cnf.xor(ua.onpath[t][s.index()], ub.onpath[t][s.index()]));
            }
            diffs.push(cnf.xor(ua.taint[t][so], ub.taint[t][so]));
        }
        let diff = cnf.or(diffs);

        // Losing instrument access to different segment sets is directly
        // observable (one machine answers where the other is silent);
        // no search needed.
        let mut la: Vec<NodeId> = a.local_loss.clone();
        let mut lb: Vec<NodeId> = b.local_loss.clone();
        la.sort_unstable();
        lb.sort_unstable();
        let structurally_distinct = la != lb;

        rsn_obs::counter_add("bmc.miter.builds", 1);
        let solver = cnf.solver_mut();
        rsn_obs::gauge_set("bmc.miter.vars", solver.num_vars() as f64);
        rsn_obs::gauge_set("bmc.miter.clauses", solver.num_clauses() as f64);
        FaultDistinguisher {
            cnf,
            diff,
            steps,
            structurally_distinct,
        }
    }

    /// Routes the miter's SAT queries through the portfolio solver with
    /// `threads` workers; see [`rsn_sat::Solver::set_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.cnf.solver_mut().set_threads(threads);
    }

    /// The unroll depth of each miter copy.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Decides distinguishability under an unlimited budget.
    pub fn distinguishable(&mut self) -> bool {
        match self.distinguishable_under(&Budget::unlimited()) {
            Distinguishability::Distinguishable => true,
            Distinguishability::Equivalent => false,
            Distinguishability::Unknown { .. } => {
                unreachable!("unlimited budget cannot exhaust")
            }
        }
    }

    /// Like [`FaultDistinguisher::distinguishable`], bounded by a
    /// [`Budget`] threaded into the SAT solve. The miter stays usable
    /// after exhaustion and the query can be retried.
    pub fn distinguishable_under(&mut self, budget: &Budget) -> Distinguishability {
        if self.structurally_distinct {
            return Distinguishability::Distinguishable;
        }
        let _span = rsn_obs::Span::enter("bmc_miter_solve");
        let start = std::time::Instant::now();
        let diff = self.diff;
        let outcome = self.cnf.solver_mut().solve_with_under(&[diff], budget);
        rsn_obs::counter_add("bmc.miter.queries", 1);
        rsn_obs::hist_record("bmc.miter.query_ns", start.elapsed().as_nanos() as u64);
        match outcome {
            SolveOutcome::Sat => Distinguishability::Distinguishable,
            SolveOutcome::Unsat => Distinguishability::Equivalent,
            SolveOutcome::Unknown { reason, .. } => {
                rsn_obs::counter_add("bmc.miter.unknown", 1);
                rsn_obs::record_budget_trip("bmc", reason.as_str());
                Distinguishability::Unknown {
                    bound_reached: self.steps,
                }
            }
        }
    }
}

/// The stuck value a fault propagates into registers, if the effect
/// contains any data corruption.
fn stuck_value(effect: &FaultEffect) -> Option<bool> {
    // The propagated value equals the fault polarity, which the effect
    // records. Accessibility requires *clean* final paths anyway, so the
    // propagated value only constrains intermediate writes.
    if effect.is_benign() {
        None
    } else {
        Some(effect.stuck.unwrap_or(false))
    }
}

struct ExprCtx<'a> {
    rsn: &'a Rsn,
    bits: &'a [Lit],
    inputs: &'a [Lit],
}

impl ExprCtx<'_> {
    fn encode(&self, cnf: &mut CnfBuilder, expr: &ControlExpr) -> Lit {
        match expr {
            ControlExpr::Const(b) => cnf.constant(*b),
            ControlExpr::Reg(node, bit) => {
                let off = self
                    .rsn
                    .shadow_offset(*node)
                    .expect("validated control reference");
                self.bits[(off + bit) as usize]
            }
            // Primary inputs are free per step but consistent within it.
            ControlExpr::Input(i) => self.inputs[i.0 as usize],
            ControlExpr::Not(e) => {
                let l = self.encode(cnf, e);
                !l
            }
            ControlExpr::And(es) => {
                let lits: Vec<Lit> = es.iter().map(|e| self.encode(cnf, e)).collect();
                cnf.and(lits)
            }
            ControlExpr::Or(es) => {
                let lits: Vec<Lit> = es.iter().map(|e| self.encode(cnf, e)).collect();
                cnf.or(lits)
            }
        }
    }
}

/// Convenience: checks accessibility of every segment under a fault and
/// returns the per-segment verdicts, mirroring
/// [`rsn_fault::accessibility`] for cross-validation.
pub fn bmc_accessibility(rsn: &Rsn, effect: &FaultEffect, steps: usize) -> Vec<(NodeId, bool)> {
    let mut checker = BmcChecker::with_fault(rsn, steps, effect);
    rsn.segments().map(|s| (s, checker.accessible(s))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_core::examples::{chain, fig2, sib_tree};
    use rsn_fault::{effect_of, fault_universe, HardeningProfile};

    #[test]
    fn fault_free_fig2_all_accessible() {
        let rsn = fig2();
        let mut checker = BmcChecker::new(&rsn, 2);
        for s in rsn.segments() {
            assert!(checker.accessible(s), "{}", rsn.node(s).name());
        }
    }

    #[test]
    fn zero_steps_only_reset_path() {
        let rsn = fig2();
        let mut checker = BmcChecker::new(&rsn, 0);
        let b = rsn.find("B").expect("B");
        let c = rsn.find("C").expect("C");
        assert!(checker.accessible(b), "B is on the reset path");
        assert!(!checker.accessible(c), "C needs one CSU");
    }

    #[test]
    fn one_step_reaches_c() {
        let rsn = fig2();
        let mut checker = BmcChecker::new(&rsn, 1);
        let c = rsn.find("C").expect("C");
        assert!(checker.accessible(c));
    }

    #[test]
    fn sib_tree_needs_depth_steps() {
        let rsn = sib_tree(2, 2, 3);
        let leaf = rsn
            .segments()
            .find(|&s| rsn.node(s).name().ends_with(".seg"))
            .expect("leaf");
        let mut shallow = BmcChecker::new(&rsn, 1);
        assert!(!shallow.accessible(leaf), "needs 2 CSUs");
        let mut deep = BmcChecker::new(&rsn, 2);
        assert!(deep.accessible(leaf));
    }

    #[test]
    fn chain_with_data_fault_inaccessible() {
        let rsn = chain(3, 2);
        let s1 = rsn.find("S1").expect("S1");
        let faults = fault_universe(&rsn);
        let f = faults
            .iter()
            .find(|f| matches!(f.site, rsn_fault::FaultSite::SegmentData(n) if n == s1))
            .expect("exists");
        let effect = effect_of(&rsn, f, HardeningProfile::unhardened());
        let mut checker = BmcChecker::with_fault(&rsn, 2, &effect);
        for s in rsn.segments() {
            assert!(!checker.accessible(s), "single chain: all lost");
        }
    }

    #[test]
    fn fig2_fault_on_b_keeps_c_accessible() {
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let faults = fault_universe(&rsn);
        let f = faults
            .iter()
            .find(|f| matches!(f.site, rsn_fault::FaultSite::SegmentData(n) if n == b))
            .expect("exists");
        let effect = effect_of(&rsn, f, HardeningProfile::unhardened());
        let mut checker = BmcChecker::with_fault(&rsn, 2, &effect);
        assert!(!checker.accessible(b));
        for name in ["A", "C", "D"] {
            let id = rsn.find(name).expect("exists");
            assert!(checker.accessible(id), "{name}");
        }
    }

    #[test]
    fn bmc_agrees_with_structural_engine_on_fig2() {
        let rsn = fig2();
        let profile = HardeningProfile::unhardened();
        for fault in fault_universe(&rsn) {
            let effect = effect_of(&rsn, &fault, profile);
            let structural = rsn_fault::accessibility(&rsn, &effect);
            let bmc = bmc_accessibility(&rsn, &effect, 2);
            for (s, bmc_ok) in bmc {
                assert_eq!(
                    structural.accessible[s.index()],
                    bmc_ok,
                    "fault {fault} segment {}",
                    rsn.node(s).name()
                );
            }
        }
    }

    #[test]
    fn zero_budget_yields_unknown_with_bound() {
        let rsn = fig2();
        let mut checker = BmcChecker::new(&rsn, 2);
        let c = rsn.find("C").expect("C");
        let verdict = checker.accessible_under(c, &Budget::unlimited().with_work_limit(0));
        assert_eq!(verdict, Verdict::Unknown { bound_reached: 2 });
        assert!(verdict.is_unknown());
        // Checker survives exhaustion: a fresh budget decides the query.
        assert_eq!(
            checker.accessible_under(c, &Budget::unlimited()),
            Verdict::Accessible
        );
    }

    #[test]
    fn structural_short_circuits_ignore_the_budget() {
        // Local instrument loss is decided without a SAT query, so even a
        // dead budget gets a definitive Inaccessible.
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let mut effect = FaultEffect::benign();
        effect.local_loss.push(b);
        let mut checker = BmcChecker::with_fault(&rsn, 2, &effect);
        let dead = Budget::unlimited().with_work_limit(0);
        assert_eq!(checker.accessible_under(b, &dead), Verdict::Inaccessible);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_verdicts() {
        let rsn = fig2();
        let generous = Budget::unlimited().with_work_limit(1_000_000);
        let mut budgeted = BmcChecker::new(&rsn, 2);
        let mut plain = BmcChecker::new(&rsn, 2);
        for s in rsn.segments() {
            let expect = if plain.accessible(s) {
                Verdict::Accessible
            } else {
                Verdict::Inaccessible
            };
            assert_eq!(budgeted.accessible_under(s, &generous), expect);
        }
    }

    #[test]
    fn local_loss_is_respected() {
        let rsn = fig2();
        let b = rsn.find("B").expect("B");
        let mut effect = FaultEffect::benign();
        effect.local_loss.push(b);
        let mut checker = BmcChecker::with_fault(&rsn, 2, &effect);
        assert!(!checker.accessible(b));
        let a = rsn.find("A").expect("A");
        assert!(checker.accessible(a));
    }
}
