//! Max-flow (Dinic) and Menger-style vertex-independent path counting.
//!
//! The connectivity requirement of fault-tolerant RSNs (paper Sec. III-C)
//! asks for two *vertex-independent* paths from the primary scan-in to every
//! segment and from every segment to the primary scan-out. By Menger's
//! theorem the maximum number of internally vertex-disjoint `s→t` paths
//! equals the max-flow in the graph where every internal vertex is split
//! into an in-copy and an out-copy joined by a unit-capacity edge.

use crate::graph::DiGraph;

/// A flow network with integer capacities (adjacency + residual storage),
/// solved by Dinic's algorithm.
///
/// # Example
///
/// ```
/// use rsn_graph::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 2);
/// net.add_edge(0, 2, 1);
/// net.add_edge(1, 3, 1);
/// net.add_edge(2, 3, 2);
/// assert_eq!(net.max_flow(0, 3), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// to, capacity, index of reverse edge in `graph[to]`.
    graph: Vec<Vec<(usize, i64, usize)>>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge with the given capacity (and a zero-capacity
    /// reverse edge).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) {
        let ui = self.graph[u].len();
        let vi = self.graph[v].len();
        self.graph[u].push((v, cap, vi));
        self.graph[v].push((u, 0, ui));
    }

    /// Computes the maximum `s→t` flow (Dinic). The network is consumed
    /// into its residual state; call on a clone to preserve capacities.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        if s == t {
            return i64::MAX;
        }
        let n = self.len();
        let mut flow = 0i64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &(v, cap, _) in &self.graph[u] {
                    if cap > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow with iteration pointers.
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], it: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while it[u] < self.graph[u].len() {
            let (v, cap, rev) = self.graph[u][it[u]];
            if cap > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(cap), level, it);
                if pushed > 0 {
                    self.graph[u][it[u]].1 -= pushed;
                    self.graph[v][rev].1 += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

/// Maximum `s→t` flow in `g` with unit edge capacities.
pub fn max_flow(g: &DiGraph, s: usize, t: usize) -> i64 {
    let mut net = FlowNetwork::new(g.len());
    for (u, v) in g.edges() {
        net.add_edge(u, v, 1);
    }
    net.max_flow(s, t)
}

/// Number of internally vertex-disjoint `s→t` paths in `g` (Menger).
///
/// Vertices other than `s` and `t` are split into in/out copies joined by a
/// unit-capacity edge, so each internal vertex can carry at most one path.
/// Parallel edges each contribute capacity.
///
/// Returns `i64::MAX` if `s == t`.
pub fn vertex_independent_paths(g: &DiGraph, s: usize, t: usize) -> i64 {
    if s == t {
        return i64::MAX;
    }
    let n = g.len();
    // Vertex v -> in-copy v, out-copy n + v.
    let mut net = FlowNetwork::new(2 * n);
    for v in 0..n {
        let cap = if v == s || v == t { i64::MAX / 4 } else { 1 };
        net.add_edge(v, n + v, cap);
    }
    for (u, v) in g.edges() {
        net.add_edge(n + u, v, 1);
    }
    net.max_flow(n + s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_has_two_paths() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(vertex_independent_paths(&g, 0, 3), 2);
        assert_eq!(max_flow(&g, 0, 3), 2);
    }

    #[test]
    fn chain_has_one_path() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(vertex_independent_paths(&g, 0, 2), 1);
    }

    #[test]
    fn shared_vertex_limits_vertex_disjointness() {
        // Two edge-disjoint paths share vertex 1: only one vertex-disjoint
        // path exists.
        //   0 -> 1 -> 2 -> 4
        //   0 -> 3 -> 1 -> 4  (through 1 again)
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 1), (1, 4)]);
        assert_eq!(max_flow(&g, 0, 4), 2);
        assert_eq!(vertex_independent_paths(&g, 0, 4), 1);
    }

    #[test]
    fn unreachable_is_zero() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(vertex_independent_paths(&g, 0, 2), 0);
    }

    #[test]
    fn same_vertex_is_infinite() {
        let g = DiGraph::new(2);
        assert_eq!(vertex_independent_paths(&g, 1, 1), i64::MAX);
    }

    #[test]
    fn capacities_respected() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(max_flow(&g, 0, 1), 2);
    }

    #[test]
    fn wide_dag_many_paths() {
        // Root feeds k middles, all feeding sink: k vertex-disjoint paths.
        let k = 6;
        let mut g = DiGraph::new(k + 2);
        for i in 0..k {
            g.add_edge(0, 1 + i);
            g.add_edge(1 + i, k + 1);
        }
        assert_eq!(vertex_independent_paths(&g, 0, k + 1), k as i64);
    }
}
