//! Dominator computation for single-point-of-failure analysis.
//!
//! In the RSN dataflow graph, a vertex `d ≠ s` that lies on *every* path
//! from the primary scan-in to segment `s` (i.e. `d` dominates `s`) is a
//! single point of failure for accessing `s`: if the corresponding scan
//! element is faulty, `s` becomes inaccessible (paper Sec. III-C). Running
//! the same analysis on the reversed graph yields post-dominators, the
//! single points of failure between `s` and the scan-out port.

use crate::graph::DiGraph;

/// Computes the immediate dominator of every vertex reachable from `root`
/// using the iterative Cooper–Harvey–Kennedy algorithm.
///
/// Returns `idom[v]`, with `idom[root] == root` and `usize::MAX` for
/// vertices unreachable from `root`.
///
/// # Example
///
/// ```
/// use rsn_graph::{dominators, DiGraph};
///
/// // 0 -> 1 -> 3 and 0 -> 2 -> 3: node 3 is dominated only by 0.
/// let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let idom = dominators(&g, 0);
/// assert_eq!(idom[3], 0);
/// ```
pub fn dominators(g: &DiGraph, root: usize) -> Vec<usize> {
    let n = g.len();
    // Reverse-postorder of the subgraph reachable from root.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack = vec![(root, 0usize)];
    state[root] = 1;
    while let Some(&mut (u, ref mut i)) = stack.last_mut() {
        if *i < g.successors(u).len() {
            let v = g.successors(u)[*i];
            *i += 1;
            if state[v] == 0 {
                state[v] = 1;
                stack.push((v, 0));
            }
        } else {
            state[u] = 2;
            order.push(u);
            stack.pop();
        }
    }
    order.reverse(); // reverse postorder, root first

    let mut rpo_index = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rpo_index[v] = i;
    }

    let mut idom = vec![usize::MAX; n];
    idom[root] = root;
    let mut changed = true;
    while changed {
        changed = false;
        for &v in order.iter().skip(1) {
            let mut new_idom = usize::MAX;
            for &p in g.predecessors(v) {
                if idom[p] == usize::MAX {
                    continue; // predecessor not yet processed/unreachable
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_index, new_idom, p)
                };
            }
            if new_idom != usize::MAX && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Computes the immediate post-dominator of every vertex that can reach
/// `sink`: dominator analysis on the reversed graph rooted at the sink.
///
/// Returns `ipdom[v]`, with `ipdom[sink] == sink` and `usize::MAX` for
/// vertices that cannot reach `sink`.
pub fn postdominators(g: &DiGraph, sink: usize) -> Vec<usize> {
    dominators(&g.reversed(), sink)
}

fn intersect(idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo[a] > rpo[b] {
            a = idom[a];
        }
        while rpo[b] > rpo[a] {
            b = idom[b];
        }
    }
    a
}

/// All strict dominators of `v` given an immediate-dominator array
/// (excluding `v` itself, including the root).
pub fn dominator_set(idom: &[usize], root: usize, v: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if idom[v] == usize::MAX {
        return out;
    }
    let mut cur = v;
    while cur != root {
        cur = idom[cur];
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dominators() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let idom = dominators(&g, 0);
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 1);
        assert_eq!(idom[3], 2);
        assert_eq!(dominator_set(&idom, 0, 3), vec![2, 1, 0]);
    }

    #[test]
    fn diamond_merge_dominated_by_root() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idom = dominators(&g, 0);
        assert_eq!(idom[3], 0);
        assert_eq!(dominator_set(&idom, 0, 3), vec![0]);
    }

    #[test]
    fn unreachable_vertices_have_no_dominator() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let idom = dominators(&g, 0);
        assert_eq!(idom[2], usize::MAX);
        assert!(dominator_set(&idom, 0, 2).is_empty());
    }

    #[test]
    fn bottleneck_vertex_dominates_everything_behind_it() {
        //      0 -> 1 -> 2 -> {3, 4} -> 5
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)]);
        let idom = dominators(&g, 0);
        let doms5 = dominator_set(&idom, 0, 5);
        assert!(doms5.contains(&2), "2 is a bottleneck: {doms5:?}");
        assert!(doms5.contains(&1));
        assert!(!doms5.contains(&3));
        assert!(!doms5.contains(&4));
    }

    #[test]
    fn dominators_match_menger_on_diamond_family() {
        // For every vertex v: v has a strict dominator other than the root
        // iff vertex_independent_paths(root, v) < 2.
        use crate::flow::vertex_independent_paths;
        let g = DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let idom = dominators(&g, 0);
        for v in 1..7 {
            let doms = dominator_set(&idom, 0, v);
            let has_internal_dom = doms.iter().any(|&d| d != 0);
            let paths = vertex_independent_paths(&g, 0, v);
            // The equivalence only holds for vertices not adjacent to the
            // root: a direct edge is one path with no internal vertex.
            if !g.has_edge(0, v) {
                assert_eq!(
                    has_internal_dom,
                    paths < 2,
                    "vertex {v}: doms={doms:?}, paths={paths}"
                );
            } else {
                assert!(!has_internal_dom, "vertex {v} adjacent to root");
            }
        }
    }
}
