//! A compact directed graph with adjacency lists and the structural queries
//! needed by the synthesis flow.

use std::collections::VecDeque;

/// A directed graph over vertices `0..n` with parallel-edge support.
///
/// # Example
///
/// ```
/// use rsn_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.successors(1), &[2]);
/// assert_eq!(g.predecessors(1), &[0]);
/// assert!(g.topo_order().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiGraph {
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        self.succ.len() - 1
    }

    /// Adds a directed edge `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        self.succ[u].push(v);
        self.pred[v].push(u);
        self.edge_count += 1;
    }

    /// `true` if an edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ[u].contains(&v)
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.succ[u]
    }

    /// Predecessors of `u`.
    pub fn predecessors(&self, u: usize) -> &[usize] {
        &self.pred[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.succ[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.pred[u].len()
    }

    /// Iterator over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// The graph with every edge direction flipped. Post-dominator
    /// analysis is dominator analysis on the reversed graph.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            succ: self.pred.clone(),
            pred: self.succ.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Kahn topological order, or `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// `true` if the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Finds any directed cycle and returns its vertices in order, or
    /// `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // Iterative DFS with colors; on back-edge reconstruct the cycle.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.len();
        let mut color = vec![WHITE; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            // stack of (vertex, next successor index)
            let mut stack = vec![(start, 0usize)];
            color[start] = GRAY;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.succ[u].len() {
                    let v = self.succ[u][*i];
                    *i += 1;
                    match color[v] {
                        WHITE => {
                            color[v] = GRAY;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        GRAY => {
                            // Found a cycle v -> ... -> u -> v.
                            let mut cycle = vec![v];
                            let mut w = u;
                            while w != v {
                                cycle.push(w);
                                w = parent[w];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Topological levels: `level(v) = 0` for sources, otherwise `1 + max`
    /// over predecessors (longest-path layering, the `level(·)` of the
    /// paper's potential-edge definition).
    ///
    /// Returns `None` if the graph has a cycle.
    pub fn levels(&self) -> Option<Vec<usize>> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.len()];
        for &v in &order {
            for &p in &self.pred[v] {
                level[v] = level[v].max(level[p] + 1);
            }
        }
        Some(level)
    }

    /// Vertices reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.succ[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Vertices that can reach `target` (including `target`).
    pub fn reaching(&self, target: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![target];
        seen[target] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.pred[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Strongly connected components (iterative Tarjan), in reverse
    /// topological order of the condensation.
    ///
    /// Every vertex appears in exactly one component; trivial components
    /// (single vertex, no self-loop) are included. Use
    /// [`DiGraph::cyclic_components`] to keep only components that
    /// actually contain a cycle.
    pub fn strongly_connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();
        // DFS frames: (vertex, next successor position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (u, ref mut i)) = frames.last_mut() {
                if *i < self.succ[u].len() {
                    let v = self.succ[u][*i];
                    *i += 1;
                    if index[v] == UNSET {
                        index[v] = next_index;
                        lowlink[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        frames.push((v, 0));
                    } else if on_stack[v] {
                        lowlink[u] = lowlink[u].min(index[v]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        lowlink[p] = lowlink[p].min(lowlink[u]);
                    }
                    if lowlink[u] == index[u] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("root is on the stack");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == u {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        components.push(comp);
                    }
                }
            }
        }
        components
    }

    /// Strongly connected components that contain at least one cycle: all
    /// components of size ≥ 2 plus single vertices with a self-loop.
    pub fn cyclic_components(&self) -> Vec<Vec<usize>> {
        self.strongly_connected_components()
            .into_iter()
            .filter(|c| c.len() > 1 || self.has_edge(c[0], c[0]))
            .collect()
    }

    /// Shortest path (edge count) from `s` to `t`, as a vertex list, or
    /// `None` if unreachable.
    pub fn shortest_path(&self, s: usize, t: usize) -> Option<Vec<usize>> {
        let mut parent = vec![usize::MAX; self.len()];
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            if u == t {
                let mut path = vec![t];
                let mut w = t;
                while w != s {
                    w = parent[w];
                    path.push(w);
                }
                path.reverse();
                return Some(path);
            }
            for &v in &self.succ[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(3, 1));
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn topo_order_is_consistent() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let order = g.topo_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                pos[v] = i;
            }
            pos
        };
        for (u, v) in g.edges() {
            assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn cycle_is_detected_and_reported() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().expect("has cycle");
        assert!(cycle.len() >= 2);
        // Every consecutive pair must be an edge, and it must wrap around.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "{cycle:?}");
        }
        assert!(g.has_edge(*cycle.last().expect("nonempty"), cycle[0]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let cycle = g.find_cycle().expect("self loop");
        assert_eq!(cycle, vec![0]);
    }

    #[test]
    fn levels_are_longest_path_layering() {
        // 0 -> 1 -> 3, 0 -> 3: level(3) must be 2, not 1.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 3), (0, 3), (0, 2)]);
        let lv = g.levels().expect("acyclic");
        assert_eq!(lv, vec![0, 1, 1, 2]);
    }

    #[test]
    fn levels_none_on_cycle() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(g.levels(), None);
    }

    #[test]
    fn reachability_both_directions() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_eq!(g.reachable_from(0), vec![true, true, true, false]);
        assert_eq!(g.reaching(2), vec![true, true, true, false]);
        assert_eq!(g.reachable_from(3), vec![false, false, false, true]);
    }

    #[test]
    fn shortest_path_prefers_fewest_edges() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(g.shortest_path(0, 3), Some(vec![0, 3]));
        assert_eq!(g.shortest_path(3, 0), None);
    }

    #[test]
    fn scc_partitions_vertices() {
        // Two nontrivial components {1,2,3} and {4,5}, plus trivial 0, 6.
        let g = DiGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 1),
                (3, 4),
                (4, 5),
                (5, 4),
                (5, 6),
            ],
        );
        let mut sccs = g.strongly_connected_components();
        sccs.sort();
        assert_eq!(sccs, vec![vec![0], vec![1, 2, 3], vec![4, 5], vec![6]]);
        let mut cyclic = g.cyclic_components();
        cyclic.sort();
        assert_eq!(cyclic, vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn scc_reports_self_loops_as_cyclic() {
        let g = DiGraph::from_edges(3, &[(0, 0), (0, 1), (1, 2)]);
        assert_eq!(g.strongly_connected_components().len(), 3);
        assert_eq!(g.cyclic_components(), vec![vec![0]]);
    }

    #[test]
    fn scc_on_dag_is_all_singletons() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let sccs = g.strongly_connected_components();
        assert_eq!(sccs.len(), 5);
        assert!(g.cyclic_components().is_empty());
        // Reverse topological order of the condensation: each component is
        // emitted only after everything it reaches.
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (i, c) in sccs.iter().enumerate() {
                pos[c[0]] = i;
            }
            pos
        };
        for (u, v) in g.edges() {
            assert!(pos[v] < pos[u], "{sccs:?}");
        }
    }

    #[test]
    fn parallel_edges_are_counted() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = DiGraph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        g.add_edge(0, v);
        assert!(g.has_edge(0, 1));
    }
}
