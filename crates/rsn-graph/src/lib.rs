//! Directed-graph algorithms for RSN dataflow analysis.
//!
//! This crate provides the graph substrate used by the fault-tolerant RSN
//! synthesis (Sections III-B to III-D of the DATE'20 paper):
//!
//! * [`DiGraph`] — a compact directed graph with adjacency lists.
//! * Topological ordering and *levels* ([`DiGraph::topo_order`],
//!   [`DiGraph::levels`]) — the `level(·)` function that defines the
//!   potential-edge set of the augmentation ILP.
//! * Cycle detection ([`DiGraph::find_cycle`]).
//! * Max-flow ([`max_flow`], Dinic) with vertex splitting, giving
//!   Menger-style *vertex-independent path* counts
//!   ([`vertex_independent_paths`]) — the connectivity requirement of
//!   fault-tolerant RSNs (Sec. III-C).
//! * Dominators ([`dominators()`]) — single-point-of-failure analysis: a
//!   vertex dominating `s` on every root→s path is a single point of
//!   failure for accessing `s`.
//!
//! # Example
//!
//! ```
//! use rsn_graph::{DiGraph, vertex_independent_paths};
//!
//! // A diamond has two vertex-independent paths from 0 to 3.
//! let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! assert_eq!(vertex_independent_paths(&g, 0, 3), 2);
//! ```

pub mod dominators;
pub mod flow;
pub mod graph;

pub use dominators::{dominators, postdominators};
pub use flow::{max_flow, vertex_independent_paths, FlowNetwork};
pub use graph::DiGraph;
