//! Additional graph-algorithm coverage: randomized cross-checks between
//! max-flow, Menger counts, dominators and brute-force path enumeration.
//!
//! Previously written with proptest; now driven by a deterministic
//! generator so the workspace carries no external dependencies and every
//! run exercises the same cases.

use rsn_graph::dominators::dominator_set;
use rsn_graph::{dominators, max_flow, vertex_independent_paths, DiGraph};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random DAG on 7 vertices with edges oriented low → high.
fn small_dag(rng: &mut Rng) -> DiGraph {
    let mut g = DiGraph::new(7);
    let n_edges = 3 + rng.below(13);
    for _ in 0..n_edges {
        let a = rng.below(7) as usize;
        let b = rng.below(7) as usize;
        if a < b {
            g.add_edge(a, b);
        }
    }
    g
}

/// All simple paths from `s` to `t` (for small graphs only).
fn simple_paths(g: &DiGraph, s: usize, t: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack = vec![(vec![s], s)];
    while let Some((path, u)) = stack.pop() {
        if u == t {
            out.push(path);
            continue;
        }
        for &v in g.successors(u) {
            if !path.contains(&v) {
                let mut p = path.clone();
                p.push(v);
                stack.push((p, v));
            }
        }
    }
    out
}

/// Maximum set of pairwise internally-vertex-disjoint paths, brute force.
fn brute_vertex_disjoint(g: &DiGraph, s: usize, t: usize) -> usize {
    let paths = simple_paths(g, s, t);
    let n = paths.len();
    let mut best = 0;
    for mask in 0u32..(1 << n.min(12)) {
        let chosen: Vec<&Vec<usize>> = (0..n.min(12))
            .filter(|&i| (mask >> i) & 1 == 1)
            .map(|i| &paths[i])
            .collect();
        let mut ok = true;
        'outer: for (a, pa) in chosen.iter().enumerate() {
            for pb in chosen.iter().skip(a + 1) {
                for v in pa.iter().filter(|&&v| v != s && v != t) {
                    if pb.contains(v) {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        if ok {
            best = best.max(chosen.len());
        }
    }
    best
}

#[test]
fn menger_matches_brute_force() {
    let mut rng = Rng(0x6aa9_0001);
    let mut checked = 0;
    while checked < 64 {
        let g = small_dag(&mut rng);
        let paths = simple_paths(&g, 0, 6);
        // Keep the brute force tractable.
        if paths.len() > 12 {
            continue;
        }
        checked += 1;
        let menger = vertex_independent_paths(&g, 0, 6);
        let brute = brute_vertex_disjoint(&g, 0, 6) as i64;
        assert_eq!(menger, brute, "edges {:?}", g.edges().collect::<Vec<_>>());
    }
}

#[test]
fn max_flow_at_least_vertex_disjoint_count() {
    let mut rng = Rng(0x6aa9_0002);
    for _case in 0..64 {
        let g = small_dag(&mut rng);
        let edge_flow = max_flow(&g, 0, 6);
        let vertex_paths = vertex_independent_paths(&g, 0, 6);
        assert!(
            edge_flow >= vertex_paths,
            "edges {:?}",
            g.edges().collect::<Vec<_>>()
        );
    }
}

#[test]
fn dominators_lie_on_every_path() {
    let mut rng = Rng(0x6aa9_0003);
    let mut checked = 0;
    while checked < 64 {
        let g = small_dag(&mut rng);
        let paths = simple_paths(&g, 0, 6);
        if paths.is_empty() || paths.len() > 24 {
            continue;
        }
        checked += 1;
        let idom = dominators(&g, 0);
        for d in dominator_set(&idom, 0, 6) {
            for p in &paths {
                assert!(p.contains(&d), "dominator {d} missing from path {p:?}");
            }
        }
        // Conversely: any vertex on every path (except endpoints) must be
        // a dominator.
        for v in 1..6 {
            if paths.iter().all(|p| p.contains(&v)) {
                assert!(
                    dominator_set(&idom, 0, 6).contains(&v),
                    "common vertex {v} not reported as dominator"
                );
            }
        }
    }
}

#[test]
fn levels_bound_path_lengths() {
    let mut rng = Rng(0x6aa9_0004);
    for _case in 0..64 {
        let g = small_dag(&mut rng);
        if let Some(levels) = g.levels() {
            for (u, v) in g.edges() {
                assert!(levels[v] > levels[u]);
            }
            // Sources sit at level 0.
            for (v, &lv) in levels.iter().enumerate() {
                if g.in_degree(v) == 0 {
                    assert_eq!(lv, 0);
                }
            }
        }
    }
}

#[test]
fn menger_count_matches_removal_argument() {
    // Menger sanity: removing any single internal vertex cannot disconnect
    // s from t if there are >= 2 vertex-independent paths.
    let mut rng = Rng(0x6aa9_0005);
    for _case in 0..64 {
        let mut g = DiGraph::new(8);
        let n_edges = 4 + rng.below(20);
        for _ in 0..n_edges {
            let a = rng.below(8) as usize;
            let b = rng.below(8) as usize;
            if a < b {
                g.add_edge(a, b);
            }
        }
        let (s, t) = (0, 7);
        let k = vertex_independent_paths(&g, s, t);
        if k >= 2 {
            for removed in 1..7 {
                let mut h = DiGraph::new(8);
                for (a, b) in g.edges() {
                    if a != removed && b != removed {
                        h.add_edge(a, b);
                    }
                }
                assert!(h.reachable_from(s)[t], "vertex {removed} was a cut");
            }
        }
    }
}

#[test]
fn dinic_handles_layered_bottlenecks() {
    // 3 parallel 2-hop routes through a width-2 middle layer: flow 2.
    let mut g = DiGraph::new(8);
    for a in [1, 2, 3] {
        g.add_edge(0, a);
    }
    for a in [1, 2, 3] {
        for m in [4, 5] {
            g.add_edge(a, m);
        }
    }
    for m in [4, 5] {
        g.add_edge(m, 7);
    }
    assert_eq!(vertex_independent_paths(&g, 0, 7), 2);
    assert_eq!(max_flow(&g, 0, 7), 2);
}

#[test]
fn dominator_chain_on_long_path() {
    let n = 64;
    let mut g = DiGraph::new(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1);
    }
    let idom = dominators(&g, 0);
    let doms = dominator_set(&idom, 0, n - 1);
    assert_eq!(doms.len(), n - 1, "every predecessor dominates the tail");
}
