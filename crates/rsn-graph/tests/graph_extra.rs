//! Additional graph-algorithm coverage: randomized cross-checks between
//! max-flow, Menger counts, dominators and brute-force path enumeration.

use proptest::prelude::*;
use rsn_graph::{dominators, max_flow, vertex_independent_paths, DiGraph};
use rsn_graph::dominators::dominator_set;

/// All simple paths from `s` to `t` (for small graphs only).
fn simple_paths(g: &DiGraph, s: usize, t: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack = vec![(vec![s], s)];
    while let Some((path, u)) = stack.pop() {
        if u == t {
            out.push(path);
            continue;
        }
        for &v in g.successors(u) {
            if !path.contains(&v) {
                let mut p = path.clone();
                p.push(v);
                stack.push((p, v));
            }
        }
    }
    out
}

/// Maximum set of pairwise internally-vertex-disjoint paths, brute force.
fn brute_vertex_disjoint(g: &DiGraph, s: usize, t: usize) -> usize {
    let paths = simple_paths(g, s, t);
    let n = paths.len();
    let mut best = 0;
    for mask in 0u32..(1 << n.min(12)) {
        let chosen: Vec<&Vec<usize>> = (0..n.min(12))
            .filter(|&i| (mask >> i) & 1 == 1)
            .map(|i| &paths[i])
            .collect();
        let mut ok = true;
        'outer: for (a, pa) in chosen.iter().enumerate() {
            for pb in chosen.iter().skip(a + 1) {
                for v in pa.iter().filter(|&&v| v != s && v != t) {
                    if pb.contains(v) {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        if ok {
            best = best.max(chosen.len());
        }
    }
    best
}

fn small_dag() -> impl Strategy<Value = DiGraph> {
    proptest::collection::vec((0usize..7, 0usize..7), 3..16).prop_map(|edges| {
        let mut g = DiGraph::new(7);
        for (a, b) in edges {
            if a < b {
                g.add_edge(a, b);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn menger_matches_brute_force(g in small_dag()) {
        let paths = simple_paths(&g, 0, 6);
        // Keep the brute force tractable.
        prop_assume!(paths.len() <= 12);
        let menger = vertex_independent_paths(&g, 0, 6);
        let brute = brute_vertex_disjoint(&g, 0, 6) as i64;
        prop_assert_eq!(menger, brute);
    }

    #[test]
    fn max_flow_at_least_vertex_disjoint_count(g in small_dag()) {
        let edge_flow = max_flow(&g, 0, 6);
        let vertex_paths = vertex_independent_paths(&g, 0, 6);
        prop_assert!(edge_flow >= vertex_paths);
    }

    #[test]
    fn dominators_lie_on_every_path(g in small_dag()) {
        let paths = simple_paths(&g, 0, 6);
        prop_assume!(!paths.is_empty() && paths.len() <= 24);
        let idom = dominators(&g, 0);
        for d in dominator_set(&idom, 0, 6) {
            for p in &paths {
                prop_assert!(
                    p.contains(&d),
                    "dominator {d} missing from path {p:?}"
                );
            }
        }
        // Conversely: any vertex on every path (except endpoints) must be
        // a dominator.
        for v in 1..6 {
            if paths.iter().all(|p| p.contains(&v)) {
                prop_assert!(
                    dominator_set(&idom, 0, 6).contains(&v),
                    "common vertex {v} not reported as dominator"
                );
            }
        }
    }

    #[test]
    fn levels_bound_path_lengths(g in small_dag()) {
        if let Some(levels) = g.levels() {
            for (u, v) in g.edges() {
                prop_assert!(levels[v] > levels[u]);
            }
            // Sources sit at level 0.
            for (v, &lv) in levels.iter().enumerate() {
                if g.in_degree(v) == 0 {
                    prop_assert_eq!(lv, 0);
                }
            }
        }
    }
}

#[test]
fn dinic_handles_layered_bottlenecks() {
    // 3 parallel 2-hop routes through a width-2 middle layer: flow 2.
    let mut g = DiGraph::new(8);
    for a in [1, 2, 3] {
        g.add_edge(0, a);
    }
    for a in [1, 2, 3] {
        for m in [4, 5] {
            g.add_edge(a, m);
        }
    }
    for m in [4, 5] {
        g.add_edge(m, 7);
    }
    assert_eq!(vertex_independent_paths(&g, 0, 7), 2);
    assert_eq!(max_flow(&g, 0, 7), 2);
}

#[test]
fn dominator_chain_on_long_path() {
    let n = 64;
    let mut g = DiGraph::new(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1);
    }
    let idom = dominators(&g, 0);
    let doms = dominator_set(&idom, 0, n - 1);
    assert_eq!(doms.len(), n - 1, "every predecessor dominates the tail");
}
